//! `xpathsat` — XPath satisfiability in the presence of DTDs.
//!
//! This is the façade crate of the workspace reproducing Benedikt, Fan & Geerts,
//! *"XPath Satisfiability in the Presence of DTDs"* (PODS 2005 / JACM 2008).  It
//! re-exports the component crates under stable names and is the dependency used by the
//! examples, the workspace-level integration tests and downstream users.
//!
//! * [`automata`] — regular expressions, Glushkov NFAs, DFAs, coverage search;
//! * [`xml`] — document trees, serialisation, streaming tag encoding;
//! * [`dtd`] — DTDs: parsing, analysis, normalisation, validation, generation;
//! * [`xpath`] — the XPath class of the paper: AST, parser, fragments, evaluator,
//!   rewritings;
//! * [`logic`] — reference solvers for the lower-bound source problems;
//! * [`sat`] — the satisfiability engines, the solver façade, the containment analysis
//!   and the hardness-reduction generators;
//! * [`plan`] — the decision-program compiler: structural canonicalisation (cache keys
//!   shared across query spellings and tenants), lowering to a flat bytecode program,
//!   and the allocation-free replay VM (in `xpsat-plan`);
//! * [`service`] — the batched, cached satisfiability service: DTD-artifact caching
//!   with a persistent on-disk store, query interning, multi-threaded `decide_batch`
//!   with deadlines, and the JSON-lines protocol (in `xpsat-service`);
//! * [`server`] — the persistent multi-tenant network front-end: TCP/Unix-socket
//!   JSON-lines server with a hand-rolled worker pool, per-tenant workspaces,
//!   backpressure and the `xpathsat` CLI (in `xpsat-server`).
//!
//! # Quickstart
//!
//! ```
//! use xpathsat::prelude::*;
//!
//! let dtd = parse_dtd(
//!     "root store; store -> book*; book -> title, author+, price?;
//!      title -> #; author -> #; price -> #; @book: isbn;",
//! )
//! .unwrap();
//!
//! let query = parse_path("book[author and not(price)]").unwrap();
//! let solver = Solver::default();
//! let decision = solver.decide(&dtd, &query);
//! assert!(matches!(decision.result, Satisfiability::Satisfiable(_)));
//!
//! // Unsatisfiable queries are detected together with the engine that proved it.
//! let dead = parse_path("book[editor]").unwrap();
//! assert!(matches!(solver.decide(&dtd, &dead).result, Satisfiability::Unsatisfiable));
//! ```

pub use xpsat_automata as automata;
pub use xpsat_core as sat;
pub use xpsat_dtd as dtd;
pub use xpsat_logic as logic;
pub use xpsat_plan as plan;
pub use xpsat_server as server;
pub use xpsat_service as service;
pub use xpsat_xmltree as xml;
pub use xpsat_xpath as xpath;

/// The most common imports, bundled for examples and tests.
pub mod prelude {
    pub use xpsat_core::{
        containment::{boolean_containment, containment, Containment},
        sat::verify_witness,
        Decision, EngineKind, Satisfiability, Solver, SolverConfig,
    };
    pub use xpsat_dtd::{classify, parse_dtd, validate, Dtd, TreeGenerator};
    pub use xpsat_service::{ServedDecision, Session, StatsSnapshot, Workspace};
    pub use xpsat_xmltree::Document;
    pub use xpsat_xpath::{eval, parse_path, parse_qualifier, Features, Fragment, Path, Qualifier};
}
