//! Acceptance tests of the satisfiability service (`xpsat-service`), driven through
//! the `xpathsat` façade:
//!
//! 1. `decide_batch` over 100+ queries against one registered DTD agrees verdict-
//!    for-verdict (via `verdict_fingerprint`) with a sequential `Solver::decide`
//!    loop, across thread counts, on seeded random DTD/query corpora — the service
//!    may answer through the compiled-program VM, so the AST solver is the oracle
//!    for the verdict while every served witness is validated on its own terms;
//! 2. a repeated batch demonstrates cache reuse: the second run performs *no* DTD
//!    re-classification and is served entirely from the decision cache, asserted
//!    through the service's stats counters;
//! 3. the JSON-lines protocol agrees with the direct API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpathsat::prelude::*;
use xpathsat::service::{decision_fingerprint, verdict_fingerprint, Json, ProtocolServer, QueryId};

/// Random DTDs in the style of the engine-agreement suite: small alphabets, mixed
/// operators, always with a terminating root.
fn corpus_dtds() -> Vec<Dtd> {
    [
        "r -> a?, b?; a -> c?; b -> c?, d?; c -> #; d -> #;",
        "r -> a, b; a -> (c | d); b -> c?; c -> #; d -> #;",
        "r -> x1, x2; x1 -> t | f; x2 -> t | f; t -> #; f -> #;",
        "r -> (a | b)*, c?; a -> (d, d) | #; b -> d?; c -> #; d -> #;",
        "r -> book*; book -> title, author; title -> #; author -> #;",
    ]
    .iter()
    .map(|text| parse_dtd(text).unwrap())
    .collect()
}

/// A random query mixing labels, wildcards, descendant, sequence, union, qualifiers
/// and negation — wide enough to exercise several engines.
fn random_query(rng: &mut StdRng, labels: &[String], depth: usize) -> Path {
    let pick = |rng: &mut StdRng| labels[rng.gen_range(0..labels.len())].clone();
    if depth == 0 {
        return Path::label(pick(rng));
    }
    match rng.gen_range(0..7) {
        0 => Path::label(pick(rng)),
        1 => Path::Wildcard,
        2 => Path::DescendantOrSelf,
        3 => Path::seq(
            random_query(rng, labels, depth - 1),
            random_query(rng, labels, depth - 1),
        ),
        4 => Path::union(
            random_query(rng, labels, depth - 1),
            random_query(rng, labels, depth - 1),
        ),
        5 => random_query(rng, labels, depth - 1).filter(Qualifier::path(random_query(
            rng,
            labels,
            depth - 1,
        ))),
        _ => random_query(rng, labels, depth - 1).filter(Qualifier::not(Qualifier::path(
            random_query(rng, labels, depth - 1),
        ))),
    }
}

fn corpus_queries(rng: &mut StdRng, dtd: &Dtd, n: usize) -> Vec<String> {
    let labels: Vec<String> = dtd
        .element_names()
        .into_iter()
        .filter(|l| l != dtd.root())
        .collect();
    (0..n)
        .map(|_| random_query(rng, &labels, 3).to_string())
        .collect()
}

#[test]
fn batch_identical_to_sequential_solver_loop_over_100_queries() {
    let mut rng = StdRng::seed_from_u64(20050613);
    let solver = Solver::default();
    for dtd in corpus_dtds() {
        // 120 queries per DTD, with deliberate duplicates to exercise the memo cache.
        let mut queries = corpus_queries(&mut rng, &dtd, 100);
        for i in 0..20 {
            queries.push(queries[i * 3].clone());
        }
        assert!(queries.len() >= 100);

        // Sequential ground truth straight through the solver, no service.  The
        // service may serve any query through the compiled-program VM (a different
        // engine tag and an equally valid but possibly different witness), so the
        // oracle compares verdicts and verifies served witnesses independently.
        let expected: Vec<String> = queries
            .iter()
            .map(|text| verdict_fingerprint(&solver.decide(&dtd, &parse_path(text).unwrap())))
            .collect();

        for threads in [1, 4] {
            let mut session = Session::new();
            session.load_dtd(&dtd.to_string()).unwrap();
            let served = session.check_batch(&queries, threads).unwrap();
            assert_eq!(served.len(), queries.len());
            for ((text, one), want) in queries.iter().zip(&served).zip(&expected) {
                assert_eq!(
                    &verdict_fingerprint(&one.decision),
                    want,
                    "query {text} under\n{dtd} ({threads} threads)"
                );
                if let Satisfiability::Satisfiable(doc) = &one.decision.result {
                    verify_witness(doc, &dtd, &parse_path(text).unwrap()).unwrap();
                }
            }
        }
    }
}

#[test]
fn repeated_batch_reuses_all_cached_artifacts() {
    let mut rng = StdRng::seed_from_u64(77);
    let dtd = corpus_dtds().remove(3);
    let queries = corpus_queries(&mut rng, &dtd, 100);

    let mut session = Session::new();
    session.load_dtd(&dtd.to_string()).unwrap();
    let cold = session.check_batch(&queries, 4).unwrap();
    let stats_after_cold = session.workspace().stats();
    // Registration classified and normalised exactly once.
    assert_eq!(stats_after_cold.dtds_registered, 1);
    assert_eq!(stats_after_cold.classifications, 1);
    assert_eq!(stats_after_cold.normalizations, 1);

    let warm = session.check_batch(&queries, 4).unwrap();
    let stats_after_warm = session.workspace().stats();

    // The second run did no DTD re-classification and ran no solver engine at all:
    // every query was served from the decision cache.
    assert_eq!(
        stats_after_warm.classifications,
        stats_after_cold.classifications
    );
    assert_eq!(
        stats_after_warm.normalizations,
        stats_after_cold.normalizations
    );
    assert_eq!(
        stats_after_warm.automata_built,
        stats_after_cold.automata_built
    );
    assert_eq!(
        stats_after_warm.decisions_computed,
        stats_after_cold.decisions_computed
    );
    assert_eq!(
        stats_after_warm.decision_cache_hits,
        stats_after_cold.decision_cache_hits + queries.len() as u64
    );
    assert!(warm.iter().all(|one| one.cached));

    // And the warm decisions are identical to the cold ones, byte for byte.
    for (cold_one, warm_one) in cold.iter().zip(&warm) {
        assert_eq!(
            decision_fingerprint(&cold_one.decision),
            decision_fingerprint(&warm_one.decision)
        );
    }
}

#[test]
fn workspace_level_batch_is_order_preserving_and_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(99);
    let dtd = corpus_dtds().remove(0);
    let texts = corpus_queries(&mut rng, &dtd, 60);

    let mut baseline: Option<Vec<String>> = None;
    for threads in [1, 2, 4, 8] {
        let mut ws = Workspace::default();
        let d = ws.register_dtd(&dtd.to_string()).unwrap();
        let ids: Vec<QueryId> = texts.iter().map(|t| ws.intern(t).unwrap()).collect();
        let served = ws.decide_batch(d, &ids, threads).unwrap();
        let fingerprints: Vec<String> = served
            .iter()
            .map(|one| decision_fingerprint(&one.decision))
            .collect();
        match &baseline {
            None => baseline = Some(fingerprints),
            Some(expected) => assert_eq!(expected, &fingerprints, "threads = {threads}"),
        }
    }
}

#[test]
fn sharded_cache_agrees_with_per_query_decides_across_entry_points() {
    // The decision cache is striped across lock shards; whichever path warms a pair —
    // a batch worker or a single `decide` — every later read must see the identical
    // decision.  Mix the two entry points over several DTDs and orders.
    let mut rng = StdRng::seed_from_u64(1234);
    for dtd in corpus_dtds() {
        let texts = corpus_queries(&mut rng, &dtd, 50);
        // Reference: a dedicated workspace that only ever uses single decides.
        let mut singles = Workspace::default();
        let ds = singles.register_dtd(&dtd.to_string()).unwrap();
        let single_ids: Vec<QueryId> = texts.iter().map(|t| singles.intern(t).unwrap()).collect();
        let expected: Vec<String> = single_ids
            .iter()
            .map(|&q| decision_fingerprint(&singles.decide(ds, q).unwrap().decision))
            .collect();

        // Mixed workspace: first half warmed through decide(), then a threaded batch
        // over everything, then decide() reads for all (now fully cached).
        let mut mixed = Workspace::default();
        let dm = mixed.register_dtd(&dtd.to_string()).unwrap();
        let ids: Vec<QueryId> = texts.iter().map(|t| mixed.intern(t).unwrap()).collect();
        for &q in ids.iter().take(ids.len() / 2) {
            mixed.decide(dm, q).unwrap();
        }
        let batched = mixed.decide_batch(dm, &ids, 4).unwrap();
        for (one, want) in batched.iter().zip(&expected) {
            assert_eq!(&decision_fingerprint(&one.decision), want);
        }
        let stats_after_batch = mixed.stats();
        for (&q, want) in ids.iter().zip(&expected) {
            let served = mixed.decide(dm, q).unwrap();
            assert!(served.cached, "pair must be cached after the batch");
            assert_eq!(&decision_fingerprint(&served.decision), want);
        }
        // The post-batch reads ran no solver engine.
        assert_eq!(
            mixed.stats().decisions_computed,
            stats_after_batch.decisions_computed
        );
    }
}

#[test]
fn protocol_agrees_with_direct_api() {
    let mut rng = StdRng::seed_from_u64(5);
    let dtd = corpus_dtds().remove(1);
    let texts = corpus_queries(&mut rng, &dtd, 40);

    let server = ProtocolServer::new(2);
    let reg = Json::parse(
        &server.handle_line(
            &Json::obj(vec![
                ("op", Json::Str("register_dtd".into())),
                ("dtd", Json::Str(dtd.to_string())),
            ])
            .to_string(),
        ),
    )
    .unwrap();
    assert_eq!(reg.get("ok").and_then(Json::as_bool), Some(true));

    let request = Json::obj(vec![
        ("op", Json::Str("batch".into())),
        ("dtd_id", Json::Num(0.0)),
        (
            "queries",
            Json::Arr(texts.iter().map(|t| Json::Str(t.clone())).collect()),
        ),
        ("threads", Json::Num(4.0)),
    ]);
    let response = Json::parse(&server.handle_line(&request.to_string())).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let results = response.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), texts.len());

    let solver = Solver::default();
    for (text, result) in texts.iter().zip(results) {
        let direct = solver.decide(&dtd, &parse_path(text).unwrap());
        let verdict = match direct.result {
            Satisfiability::Satisfiable(_) => "satisfiable",
            Satisfiability::Unsatisfiable => "unsatisfiable",
            Satisfiability::Unknown => "unknown",
        };
        assert_eq!(
            result.get("result").and_then(Json::as_str),
            Some(verdict),
            "query {text}"
        );
        // The service is free to answer through the compiled-program VM instead of
        // the AST engine that direct dispatch would pick; any other engine tag must
        // match direct dispatch exactly.
        let engine = result.get("engine").and_then(Json::as_str).unwrap();
        assert!(
            engine == "compiled-vm" || engine == xpathsat::service::engine_slug(direct.engine),
            "query {text}: engine {engine}"
        );
    }
}
