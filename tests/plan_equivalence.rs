//! Seeded equivalence harness for the decision-program pipeline (`xpsat-plan`).
//!
//! Three properties, each over the full corpus — layered benchmark DTDs plus the
//! realistic XHTML and DocBook fixtures — with seeded random queries:
//!
//! * **VM ≡ AST solver**: for every query inside the compiled fragment,
//!   `VM(compile(q, A))` agrees verdict-for-verdict with
//!   `Solver::decide_with_artifacts(A, q)`, and every VM witness verifies against
//!   the DTD and the *original* (pre-canonicalisation) query;
//! * **canonical-hash invariance**: random structure-preserving rewrites —
//!   qualifier permutation and re-association, `p[q1][q2]` ↔ `p[q1 and q2]`,
//!   union operand order, inserted `ε` steps, trivially-true conjuncts, double
//!   negation — never change the canonical form or either hash;
//! * **collision probe**: across everything generated above, two queries share a
//!   canonical hash only when they share the canonical form (and therefore a
//!   decision), so hash-keyed cache lookups can never cross classes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use xpsat_core::corpus::{docbook_dtd, layered_dtd, random_positive_query, xhtml_dtd};
use xpsat_core::sat::verify_witness;
use xpsat_core::{Budget, Satisfiability, Solver};
use xpsat_dtd::{parse_dtd, Dtd, DtdArtifacts};
use xpsat_plan::{compile, vm, CanonicalQuery, CompileLimits, Scratch};
use xpsat_service::verdict_fingerprint;
use xpsat_xpath::{Path, Qualifier};

fn corpus() -> Vec<Dtd> {
    let mut dtds: Vec<Dtd> = [
        "r -> a?, b?; a -> c?; b -> c?, d?; c -> #; d -> #;",
        "r -> a, b; a -> (c | d); b -> c?; c -> #; d -> #;",
        "r -> (a | b)*, c?; a -> (d, d) | #; b -> d?; c -> #; d -> #;",
        "r -> book*; book -> title, author; title -> #; author -> #;",
    ]
    .iter()
    .map(|text| parse_dtd(text).unwrap())
    .collect();
    dtds.push(layered_dtd(3, 3));
    dtds.push(layered_dtd(5, 2));
    dtds.push(xhtml_dtd());
    dtds.push(docbook_dtd());
    dtds
}

/// A query generator that also mixes negation, disjunction, sibling axes,
/// wildcards and parent steps, so the harness exercises the widened compiled
/// fragment (disjunction branches, local negation on duplicate-free DTDs,
/// sibling tables) *and* the compiler's bail paths.
fn random_mixed_query(rng: &mut StdRng, labels: &[String], depth: usize) -> Path {
    let pick = |rng: &mut StdRng| labels[rng.gen_range(0..labels.len())].clone();
    if depth == 0 {
        return Path::label(pick(rng));
    }
    match rng.gen_range(0..10) {
        0 => Path::label(pick(rng)),
        1 => Path::Wildcard,
        2 => Path::DescendantOrSelf,
        3 => Path::seq(
            random_mixed_query(rng, labels, depth - 1),
            random_mixed_query(rng, labels, depth - 1),
        ),
        4 => Path::union(
            random_mixed_query(rng, labels, depth - 1),
            random_mixed_query(rng, labels, depth - 1),
        ),
        5 => random_mixed_query(rng, labels, depth - 1)
            .filter(Qualifier::path(random_mixed_query(rng, labels, depth - 1))),
        6 => random_mixed_query(rng, labels, depth - 1).filter(Qualifier::not(Qualifier::path(
            random_mixed_query(rng, labels, depth - 1),
        ))),
        // Disjunctive qualifier: compiled by branch expansion.
        7 => random_mixed_query(rng, labels, depth - 1).filter(Qualifier::Or(
            Box::new(Qualifier::path(random_mixed_query(rng, labels, depth - 1))),
            Box::new(Qualifier::path(Path::label(pick(rng)))),
        )),
        // Locally negated child label: compiled on duplicate-free DTDs.
        8 => random_mixed_query(rng, labels, depth - 1)
            .filter(Qualifier::not(Qualifier::path(Path::label(pick(rng))))),
        // Sibling chain off a labelled anchor: compiled to content-model tables.
        _ => {
            let hop = match rng.gen_range(0..4) {
                0 => Path::NextSibling,
                1 => Path::PrevSibling,
                2 => Path::FollowingSiblingOrSelf.filter(Qualifier::LabelIs(pick(rng))),
                _ => Path::PrecedingSiblingOrSelf.filter(Qualifier::LabelIs(pick(rng))),
            };
            Path::seq(
                Path::seq(
                    random_mixed_query(rng, labels, depth - 1),
                    Path::label(pick(rng)),
                ),
                hop,
            )
        }
    }
}

/// Check one query: if it compiles, the VM verdict must match the AST solver's and
/// a VM witness must verify against the original query.  Returns whether the query
/// was inside the compiled fragment.
fn check_one(
    solver: &Solver,
    dtd: &Dtd,
    artifacts: &DtdArtifacts,
    scratch: &mut Scratch,
    query: &Path,
) -> bool {
    let canon = CanonicalQuery::of(query);
    let Some(program) = compile(artifacts, &canon.path, &CompileLimits::default()) else {
        return false;
    };
    let replayed = vm::decide(&program, artifacts, scratch, &Budget::unlimited())
        .unwrap_or_else(|| panic!("in-fragment VM decide fell back on `{query}`"));
    // The reference run is budgeted: the widened fragment (sibling chains,
    // disjunction branches) deliberately includes instances whose only AST route
    // is exponential search, and an unbudgeted reference would hang the harness
    // on exactly the queries the VM exists to accelerate.  The deadline keeps the
    // sweep's wall clock bounded even in debug builds, where a step costs far
    // more than in the release binaries the step ceiling is tuned for.
    let budget = Budget {
        max_steps: Some(2_000_000),
        deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(2)),
    };
    let direct = solver.decide_budgeted(artifacts, query, &budget);
    match (
        replayed.result.is_satisfiable(),
        direct.result.is_satisfiable(),
    ) {
        // Both engines reached a verdict: they must agree.
        (Some(vm_sat), Some(ast_sat)) => assert_eq!(
            vm_sat,
            ast_sat,
            "VM/AST divergence on `{query}` under DTD rooted at `{}`: vm={} ast={} ({})",
            dtd.root(),
            verdict_fingerprint(&replayed),
            verdict_fingerprint(&direct),
            direct.engine,
        ),
        // The widened fragment covers instances the AST dispatch can only hand to
        // the incomplete enumeration fallback; a definite VM verdict with an
        // Unknown AST verdict is the fast path out-deciding the fallback, and the
        // witness check below still validates the sat case independently.
        (Some(_), None) => assert!(
            !direct.complete,
            "AST solver claimed completeness yet answered Unknown on `{query}`"
        ),
        (None, _) => panic!(
            "compiled program answered Unknown without a budget on `{query}` \
             under DTD rooted at `{}`",
            dtd.root()
        ),
    }
    if let Satisfiability::Satisfiable(doc) = &replayed.result {
        verify_witness(doc, dtd, query)
            .unwrap_or_else(|e| panic!("VM witness for `{query}` fails to verify: {e:?}"));
    }
    true
}

#[test]
fn vm_agrees_with_ast_solver_across_corpus() {
    // The positive engine's witness search recurses up to its Lemma 4.5 depth
    // bound ((3|p|-1)·|D| + 2 levels), which on the realistic DTDs overflows the
    // default test-thread stack long before the step budget bites; give the sweep
    // a deep stack of its own instead of shrinking the corpus.
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(sweep_corpus)
        .expect("spawn sweep thread")
        .join()
        .expect("corpus sweep panicked");
}

fn sweep_corpus() {
    let solver = Solver::default();
    let mut scratch = Scratch::new();
    let mut compiled = 0usize;
    let mut total = 0usize;
    for dtd in corpus() {
        let artifacts = DtdArtifacts::build(&dtd);
        let labels: Vec<String> = dtd.element_names();
        let mut rng = StdRng::seed_from_u64(0x2005_0613);
        for _ in 0..40 {
            total += 1;
            if check_one(
                &solver,
                &dtd,
                &artifacts,
                &mut scratch,
                &random_positive_query(&mut rng, &dtd, 3),
            ) {
                compiled += 1;
            }
            total += 1;
            if check_one(
                &solver,
                &dtd,
                &artifacts,
                &mut scratch,
                &random_mixed_query(&mut rng, &labels, 3),
            ) {
                compiled += 1;
            }
        }
    }
    // The fragment must actually carry a meaningful share of the corpus — a compiler
    // that bails on everything would pass the agreement check vacuously.
    assert!(
        compiled * 8 >= total,
        "only {compiled}/{total} corpus queries compiled"
    );
}

// ---- canonical-hash invariance ---------------------------------------------------

fn flatten_and(q: &Qualifier, out: &mut Vec<Qualifier>) {
    match q {
        Qualifier::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Rewrite `p` into a random structurally equivalent spelling: shuffled and
/// re-associated qualifier conjuncts (`p[q1][q2]` ↔ `p[q2 and q1]`), swapped union
/// operands, inserted `ε` steps, trivially-true extra conjuncts and double
/// negations.  [`CanonicalQuery`] must be a fixpoint of all of it.
fn scramble_path(rng: &mut StdRng, p: &Path) -> Path {
    let scrambled = match p {
        Path::Seq(a, b) => Path::Seq(
            Box::new(scramble_path(rng, a)),
            Box::new(scramble_path(rng, b)),
        ),
        Path::Union(a, b) => {
            let x = scramble_path(rng, a);
            let y = scramble_path(rng, b);
            if rng.gen_bool(0.5) {
                Path::Union(Box::new(y), Box::new(x))
            } else {
                Path::Union(Box::new(x), Box::new(y))
            }
        }
        Path::Filter(_, _) => {
            // Peel the whole filter chain off the spine and collect every conjunct.
            let mut spine = p;
            let mut conjuncts = Vec::new();
            while let Path::Filter(inner, q) = spine {
                flatten_and(q, &mut conjuncts);
                spine = inner;
            }
            let mut conjuncts: Vec<Qualifier> = conjuncts
                .iter()
                .map(|q| scramble_qualifier(rng, q))
                .collect();
            for i in (1..conjuncts.len()).rev() {
                conjuncts.swap(i, rng.gen_range(0..=i));
            }
            if rng.gen_bool(0.3) {
                // A trivially-true conjunct the canonicaliser must drop.
                conjuncts.push(Qualifier::path(Path::DescendantOrSelf));
            }
            let base = scramble_path(rng, spine);
            if rng.gen_bool(0.5) {
                base.filter(Qualifier::and_all(conjuncts))
            } else {
                conjuncts.into_iter().fold(base, Path::filter)
            }
        }
        other => other.clone(),
    };
    if rng.gen_bool(0.2) {
        // An `ε` unit the canonicaliser must drop from the composition.
        Path::Seq(Box::new(scrambled), Box::new(Path::Empty))
    } else {
        scrambled
    }
}

fn scramble_qualifier(rng: &mut StdRng, q: &Qualifier) -> Qualifier {
    let scrambled = match q {
        Qualifier::Path(p) => Qualifier::Path(scramble_path(rng, p)),
        Qualifier::Not(inner) => Qualifier::not(scramble_qualifier(rng, inner)),
        Qualifier::And(_, _) => {
            let mut parts = Vec::new();
            flatten_and(q, &mut parts);
            let mut parts: Vec<Qualifier> =
                parts.iter().map(|p| scramble_qualifier(rng, p)).collect();
            for i in (1..parts.len()).rev() {
                parts.swap(i, rng.gen_range(0..=i));
            }
            Qualifier::and_all(parts)
        }
        Qualifier::Or(a, b) => {
            let x = scramble_qualifier(rng, a);
            let y = scramble_qualifier(rng, b);
            if rng.gen_bool(0.5) {
                Qualifier::Or(Box::new(y), Box::new(x))
            } else {
                Qualifier::Or(Box::new(x), Box::new(y))
            }
        }
        other => other.clone(),
    };
    if rng.gen_bool(0.15) {
        Qualifier::not(Qualifier::not(scrambled))
    } else {
        scrambled
    }
}

#[test]
fn canonical_hash_is_invariant_under_random_equivalent_rewrites() {
    let mut rng = StdRng::seed_from_u64(0xcafe_2005);
    for dtd in corpus() {
        let labels: Vec<String> = dtd.element_names();
        for _ in 0..60 {
            let query = random_mixed_query(&mut rng, &labels, 3);
            let canon = CanonicalQuery::of(&query);
            for _ in 0..4 {
                let rewritten = scramble_path(&mut rng, &query);
                let again = CanonicalQuery::of(&rewritten);
                assert_eq!(
                    canon.text, again.text,
                    "canonical form changed: `{query}` vs rewrite `{rewritten}`"
                );
                assert_eq!(canon.canonical_hash, again.canonical_hash, "`{query}`");
                assert_eq!(canon.structural_hash, again.structural_hash, "`{query}`");
            }
        }
    }
}

#[test]
fn canonical_hashes_do_not_collide_across_classes() {
    // Probe the 64-bit canonical hash over every query this harness generates:
    // distinct canonical forms must get distinct hashes (FNV-1a collisions at this
    // scale would make hash-keyed sweeps unsound in practice), and equal hashes
    // must therefore always mean one decision.
    let mut seen: HashMap<u64, String> = HashMap::new();
    let mut classes = 0usize;
    for dtd in corpus() {
        let labels: Vec<String> = dtd.element_names();
        let mut rng = StdRng::seed_from_u64(0xdead_2005);
        for _ in 0..80 {
            let query = random_mixed_query(&mut rng, &labels, 3);
            let canon = CanonicalQuery::of(&query);
            match seen.insert(canon.canonical_hash, canon.text.clone()) {
                None => classes += 1,
                Some(previous) => assert_eq!(
                    previous, canon.text,
                    "canonical-hash collision across distinct classes"
                ),
            }
        }
    }
    assert!(classes >= 100, "degenerate corpus: {classes} classes");
}
