//! Cross-engine agreement: every specialised decision procedure must agree with the
//! exhaustive enumeration oracle on randomly generated (DTD, query) instances drawn from
//! its fragment, and every witness it returns must verify.
//!
//! These tests are the workspace-level counterpart of the per-engine unit tests: they
//! use only the public API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpathsat::prelude::*;
use xpathsat::sat::engines::enumeration::{self, EnumerationLimits};

/// A small pool of star-free, nonrecursive DTDs over which the enumeration oracle is
/// exhaustive, so that oracle disagreement is always a genuine bug.
fn oracle_dtds() -> Vec<Dtd> {
    [
        "r -> a?, b?; a -> c?; b -> c?, d?; c -> #; d -> #;",
        "r -> a, b; a -> (c | d); b -> c?; c -> #; d -> #;",
        "r -> x1, x2; x1 -> t | f; x2 -> t | f; t -> #; f -> #;",
        "r -> a, a?; a -> b?, b?; b -> #;",
    ]
    .iter()
    .map(|text| parse_dtd(text).unwrap())
    .collect()
}

/// A random positive downward query over the given label alphabet.
fn random_positive_query(rng: &mut StdRng, labels: &[String], depth: usize) -> Path {
    let pick_label = |rng: &mut StdRng| labels[rng.gen_range(0..labels.len())].clone();
    if depth == 0 {
        return Path::label(pick_label(rng));
    }
    match rng.gen_range(0..6) {
        0 => Path::label(pick_label(rng)),
        1 => Path::Wildcard,
        2 => Path::DescendantOrSelf,
        3 => Path::seq(
            random_positive_query(rng, labels, depth - 1),
            random_positive_query(rng, labels, depth - 1),
        ),
        4 => Path::union(
            random_positive_query(rng, labels, depth - 1),
            random_positive_query(rng, labels, depth - 1),
        ),
        _ => random_positive_query(rng, labels, depth - 1).filter(Qualifier::path(
            random_positive_query(rng, labels, depth - 1),
        )),
    }
}

/// A random downward query that may also use negation, conjunction and label tests.
fn random_negation_query(rng: &mut StdRng, labels: &[String], depth: usize) -> Path {
    let base = random_positive_query(rng, labels, depth);
    if rng.gen_bool(0.5) {
        let qual = if rng.gen_bool(0.5) {
            Qualifier::not(Qualifier::path(random_positive_query(rng, labels, depth)))
        } else {
            Qualifier::And(
                Box::new(Qualifier::path(random_positive_query(rng, labels, depth))),
                Box::new(Qualifier::not(Qualifier::LabelIs(
                    labels[rng.gen_range(0..labels.len())].clone(),
                ))),
            )
        };
        Path::Empty.filter(Qualifier::And(
            Box::new(Qualifier::path(base)),
            Box::new(qual),
        ))
    } else {
        base
    }
}

fn oracle(dtd: &Dtd, query: &Path) -> Option<bool> {
    let limits = EnumerationLimits::default();
    enumeration::decide(dtd, query, &limits).is_satisfiable()
}

#[test]
fn solver_agrees_with_oracle_on_random_positive_queries() {
    let mut rng = StdRng::seed_from_u64(2024);
    let solver = Solver::default();
    for dtd in oracle_dtds() {
        let labels: Vec<String> = dtd
            .element_names()
            .into_iter()
            .filter(|l| l != "r")
            .collect();
        for _ in 0..40 {
            let query = random_positive_query(&mut rng, &labels, 3);
            let expected = oracle(&dtd, &query).expect("oracle is exhaustive on these DTDs");
            let decision = solver.decide(&dtd, &query);
            assert_eq!(
                decision.result.is_satisfiable(),
                Some(expected),
                "query {query} under\n{dtd}"
            );
            if let Satisfiability::Satisfiable(doc) = &decision.result {
                verify_witness(doc, &dtd, &query).unwrap();
            }
        }
    }
}

#[test]
fn solver_agrees_with_oracle_on_random_negation_queries() {
    let mut rng = StdRng::seed_from_u64(4096);
    let solver = Solver::default();
    for dtd in oracle_dtds() {
        let labels: Vec<String> = dtd
            .element_names()
            .into_iter()
            .filter(|l| l != "r")
            .collect();
        for _ in 0..30 {
            let query = random_negation_query(&mut rng, &labels, 2);
            let expected = oracle(&dtd, &query).expect("oracle is exhaustive on these DTDs");
            let decision = solver.decide(&dtd, &query);
            assert_eq!(
                decision.result.is_satisfiable(),
                Some(expected),
                "query {query} under\n{dtd}"
            );
            if let Satisfiability::Satisfiable(doc) = &decision.result {
                verify_witness(doc, &dtd, &query).unwrap();
            }
        }
    }
}

#[test]
fn sibling_engine_agrees_with_oracle() {
    let solver = Solver::default();
    let dtd = parse_dtd("r -> a, (b | c), d?; a -> #; b -> #; c -> #; d -> #;").unwrap();
    let queries = [
        "a/>", "a/>/>", "a/>/>/>", "b/>", "c/<", "d/</<", "a/<", "b/>/>", "c/>/>",
    ];
    for text in queries {
        let query = parse_path(text).unwrap();
        let expected = oracle(&dtd, &query).expect("exhaustive");
        let decision = solver.decide(&dtd, &query);
        assert_eq!(decision.engine, EngineKind::Sibling, "query {text}");
        assert_eq!(
            decision.result.is_satisfiable(),
            Some(expected),
            "query {text}"
        );
        if let Satisfiability::Satisfiable(doc) = &decision.result {
            verify_witness(doc, &dtd, &query).unwrap();
        }
    }
}

/// Proposition 3.3 (normalisation) and Proposition 3.1 (no-DTD reduction), checked
/// against the solver on random positive queries.
///
/// Formerly a proptest block over `seed in 0u64..5_000` with 64 cases; the build
/// environment has no crates.io access, so the same coverage is drawn as 64 fixed
/// seeds through the deterministic workspace RNG.
#[test]
fn normalization_preserves_satisfiability() {
    for seed in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let dtd =
            parse_dtd("r -> (a | b)*, c?; a -> (d, d) | #; b -> d?; c -> #; d -> #;").unwrap();
        let labels: Vec<String> = dtd
            .element_names()
            .into_iter()
            .filter(|l| l != "r")
            .collect();
        let query = random_positive_query(&mut rng, &labels, 2);
        let solver = Solver::default();
        let direct = solver.decide(&dtd, &query).result.is_satisfiable();
        let (norm, rewritten) = xpathsat::sat::transform::normalize_instance(&dtd, &query);
        let normalized = solver.decide(&norm.dtd, &rewritten).result.is_satisfiable();
        assert_eq!(
            direct, normalized,
            "query {} rewritten {}",
            query, rewritten
        );
    }
}

/// The recursion-elimination rewriting of Proposition 6.1 is equivalence-preserving
/// on every document of a nonrecursive DTD.  (Formerly proptest; see above.)
#[test]
fn recursion_elimination_is_equivalent_on_documents() {
    for seed in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let dtd = parse_dtd("r -> a?, b; a -> c*; b -> c?; c -> d?; d -> #;").unwrap();
        let labels: Vec<String> = dtd
            .element_names()
            .into_iter()
            .filter(|l| l != "r")
            .collect();
        let query = random_positive_query(&mut rng, &labels, 2);
        let rewritten = xpathsat::sat::transform::eliminate_recursion_for(&dtd, &query)
            .expect("the DTD is nonrecursive");
        let generator = TreeGenerator::new(&dtd);
        for _ in 0..5 {
            let doc = generator.random_tree(&mut rng, 4, 3);
            assert_eq!(
                eval::satisfies(&doc, &query),
                eval::satisfies(&doc, &rewritten),
                "query {} on {}",
                query,
                doc
            );
        }
    }
}
