//! End-to-end checks of the paper's own running examples and of the reduction
//! correctness statements, exercised through the public API only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpathsat::logic::{dpll, CnfFormula, Qbf};
use xpathsat::prelude::*;
use xpathsat::sat::reductions;

/// Example 2.1/2.2: the 3SAT DTD and query of the introduction.
#[test]
fn example_2_1_and_2_2() {
    // φ = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ x3): satisfiable.
    let dtd = parse_dtd("r -> x1, x2, x3; x1 -> t | f; x2 -> t | f; x3 -> t | f; t -> #; f -> #;")
        .unwrap();
    let query = parse_path(".[(x1/t | x2/f | x3/t) and (x1/f | x2/t | x3/t)]").unwrap();
    let decision = Solver::default().decide(&dtd, &query);
    match decision.result {
        Satisfiability::Satisfiable(doc) => verify_witness(&doc, &dtd, &query).unwrap(),
        other => panic!("Example 2.2 should be satisfiable, got {other}"),
    }

    // An unsatisfiable variant: x1 must be both true and false.
    let query = parse_path(".[x1/t and x1/f]").unwrap();
    assert!(matches!(
        Solver::default().decide(&dtd, &query).result,
        Satisfiability::Unsatisfiable
    ));
}

/// Example 2.3: `D: r → a*`, query `b` — unsatisfiable.
#[test]
fn example_2_3() {
    let dtd = parse_dtd("r -> a*; a -> #;").unwrap();
    let decision = Solver::default().decide(&dtd, &parse_path("b").unwrap());
    assert!(matches!(decision.result, Satisfiability::Unsatisfiable));
    assert!(decision.complete);
}

/// Proposition 4.2 / Theorem 6.6 / Theorem 6.9: all 3SAT encodings agree with DPLL.
#[test]
fn threesat_reductions_agree_with_dpll() {
    let mut rng = StdRng::seed_from_u64(11);
    let solver = Solver::default();
    for _ in 0..15 {
        let num_vars = rng.gen_range(2..=4);
        let num_clauses = rng.gen_range(1..=5);
        let formula = CnfFormula::random_3sat(&mut rng, num_vars, num_clauses);
        let expected = dpll::satisfiable(&formula);
        let instances = [
            reductions::threesat_to_downward_qualifiers(&formula),
            reductions::threesat_to_fixed_dtd_union(&formula),
            reductions::threesat_to_disjunction_free_data(&formula),
        ];
        for (i, (dtd, query)) in instances.iter().enumerate() {
            let decision = solver.decide(dtd, query);
            assert_eq!(
                decision.result.is_satisfiable(),
                Some(expected),
                "encoding {i} of {formula}"
            );
            if let Satisfiability::Satisfiable(doc) = &decision.result {
                verify_witness(doc, dtd, query).unwrap();
            }
        }
    }
}

/// Proposition 5.1: the Q3SAT encoding agrees with the QBF evaluator.
#[test]
fn q3sat_reduction_agrees_with_qbf_evaluation() {
    let mut rng = StdRng::seed_from_u64(13);
    let solver = Solver::default();
    for _ in 0..15 {
        let num_vars = rng.gen_range(2..=3);
        let num_clauses = rng.gen_range(1..=4);
        let qbf = Qbf::random(&mut rng, num_vars, num_clauses);
        let expected = qbf.is_valid();
        let (dtd, query) = reductions::q3sat_to_downward_negation(&qbf);
        let decision = solver.decide(&dtd, &query);
        // Tautological clauses drop out of the encoding, so a trivial instance may be
        // dispatched to a cheaper engine; non-trivial ones go to the negation fixpoint.
        assert!(decision.complete, "qbf {qbf}");
        assert_eq!(
            decision.result.is_satisfiable(),
            Some(expected),
            "qbf {qbf}"
        );
        if let Satisfiability::Satisfiable(doc) = &decision.result {
            verify_witness(&doc.clone(), &dtd, &query).unwrap();
        }
    }
}

/// Theorem 5.4 (soundness direction): a halting machine's run yields a conforming,
/// satisfying document for the two-register-machine encoding.
#[test]
fn two_register_encoding_soundness() {
    use xpathsat::logic::trm::{RunOutcome, TwoRegisterMachine};
    use xpathsat::sat::reductions::two_register::{
        two_register_to_full_fragment, witness_from_run,
    };

    let machine = TwoRegisterMachine::bump_and_drain(3);
    let RunOutcome::Halted(trace) = machine.run(200) else {
        panic!("bump_and_drain halts")
    };
    let (dtd, query) = two_register_to_full_fragment(&machine);
    let mut doc = witness_from_run(&trace);
    xpathsat::sat::witness::fill_missing_attributes(&mut doc, &dtd);
    assert_eq!(validate(&doc, &dtd), Ok(()));
    assert!(eval::satisfies(&doc, &query));
}

/// Theorem 6.8 versus Proposition 4.2: the same query shape that is NP-hard to analyse
/// under general DTDs is handled by the PTIME disjunction-free engine when the DTD has
/// no disjunction.
#[test]
fn disjunction_free_dtds_take_the_ptime_path() {
    let solver = Solver::default();
    let djfree = parse_dtd("r -> a*; a -> b, c; b -> #; c -> #;").unwrap();
    let dead_query = parse_path("a[b and d]").unwrap();
    let decision = solver.decide(&djfree, &dead_query);
    assert_eq!(decision.engine, EngineKind::DisjunctionFree);
    assert!(matches!(decision.result, Satisfiability::Unsatisfiable));

    let disjunctive = parse_dtd("r -> a*; a -> b | c; b -> #; c -> #;").unwrap();
    let decision = solver.decide(&disjunctive, &parse_path("a[b and c]").unwrap());
    assert_eq!(decision.engine, EngineKind::Positive);
    assert!(matches!(decision.result, Satisfiability::Unsatisfiable));
}

/// Theorem 6.11(1): without label tests, every `X(↓, ↓*, ∪, [])` query is satisfiable in
/// the absence of DTDs; with label tests the analysis stays polynomial but can refute.
#[test]
fn no_dtd_satisfiability() {
    let solver = Solver::default();
    for text in ["a/b[c]/d", "**/x[y and z]", "(a | b)[c/d]"] {
        let decision = solver.decide_without_dtd(&parse_path(text).unwrap());
        assert!(
            matches!(decision.result, Satisfiability::Satisfiable(_)),
            "query {text}"
        );
    }
    let dead = parse_path(".[lab() = a and lab() = b]").unwrap();
    assert!(matches!(
        solver.decide_without_dtd(&dead).result,
        Satisfiability::Unsatisfiable
    ));
}

/// Fragment classification matches the paper's dichotomies.
#[test]
fn fragment_lattice() {
    let positive = parse_path("a[b]/c | d").unwrap();
    let negated = parse_path("a[not(b)]").unwrap();
    let data = parse_path("a[@id = \"1\"]").unwrap();
    assert!(Fragment::downward_positive().permits_path(&positive));
    assert!(!Fragment::downward_positive().permits_path(&negated));
    assert!(Fragment::downward_negation().permits_path(&negated));
    assert!(!Fragment::downward_negation().permits_path(&data));
    assert!(Fragment::largest_positive().permits_path(&data));
    assert!(Fragment::full().permits_path(&data));
}
