//! Old-vs-new equivalence tests for the interned-symbol artifact pipeline.
//!
//! The dense structures (interned `Sym` ids, sorted-vector NFA transitions, bitset
//! reachability closures, precompiled `DtdArtifacts`) must be observationally identical
//! to the naive string-keyed forms they replaced.  Each test pins one layer:
//!
//! * the interner round-trips names to dense ids;
//! * the dense Glushkov NFA (and the bitset subset-construction DFA) accept exactly the
//!   language of the regular expression, checked against the Brzozowski-derivative
//!   oracle on seeded random expressions and words;
//! * the precomputed `DtdGraph` closure equals a naive BFS over the string adjacency,
//!   and the precomputed recursion/depth answers match their from-scratch definitions;
//! * `Solver::decide` verdicts are identical with and without precompiled artifacts
//!   across a corpus covering every engine, and the service workspace — which may
//!   answer through the compiled-program VM — agrees verdict-for-verdict, with every
//!   served witness verified on its own terms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use xpsat_automata::{Dfa, Nfa, Regex};
use xpsat_core::Solver;
use xpsat_dtd::{parse_dtd, Dtd, DtdArtifacts, DtdGraph, Sym, SymbolTable};
use xpsat_service::{decision_fingerprint, verdict_fingerprint, Workspace};
use xpsat_xpath::parse_path;

#[test]
fn interner_round_trips_and_is_dense() {
    let mut table = SymbolTable::new();
    let names = ["store", "book", "title", "author", "book"]; // one duplicate
    let syms: Vec<Sym> = names.iter().map(|n| table.intern(n)).collect();
    assert_eq!(table.len(), 4);
    assert_eq!(syms[1], syms[4]);
    for (i, sym) in syms.iter().take(4).enumerate() {
        assert_eq!(sym.index(), i);
        assert_eq!(table.name(*sym), names[i]);
        assert_eq!(table.lookup(names[i]), Some(*sym));
        assert_eq!(Sym::from_index(sym.index()), *sym);
    }
    assert_eq!(table.lookup("price"), None);
}

/// A random regular expression over a small alphabet.
fn random_regex(rng: &mut StdRng, depth: usize) -> Regex<char> {
    let alphabet = ['a', 'b', 'c'];
    if depth == 0 {
        return Regex::sym(alphabet[rng.gen_range(0..alphabet.len())]);
    }
    match rng.gen_range(0..8) {
        0 => Regex::Epsilon,
        1 => Regex::sym(alphabet[rng.gen_range(0..alphabet.len())]),
        2 | 3 => Regex::concat(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        4 | 5 => Regex::alt(vec![
            random_regex(rng, depth - 1),
            random_regex(rng, depth - 1),
        ]),
        6 => Regex::star(random_regex(rng, depth - 1)),
        _ => Regex::opt(random_regex(rng, depth - 1)),
    }
}

#[test]
fn dense_nfa_and_dfa_match_the_derivative_oracle_on_random_words() {
    let mut rng = StdRng::seed_from_u64(20260729);
    let alphabet = ['a', 'b', 'c'];
    for _ in 0..60 {
        let re = random_regex(&mut rng, 3);
        let nfa = Nfa::glushkov(&re);
        let dfa = Dfa::from_nfa(&nfa);
        for _ in 0..40 {
            let len = rng.gen_range(0..6);
            let word: Vec<char> = (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect();
            let expected = re.matches(&word);
            assert_eq!(
                nfa.accepts(&word),
                expected,
                "NFA vs regex {re:?} on {word:?}"
            );
            assert_eq!(
                dfa.accepts(&word),
                expected,
                "DFA vs regex {re:?} on {word:?}"
            );
        }
    }
}

#[test]
fn dense_dfa_matches_sparse_dfa_on_random_regexes() {
    let mut rng = StdRng::seed_from_u64(20260730);
    let alphabet: BTreeSet<char> = ['a', 'b', 'c'].into_iter().collect();
    let index = |ch: char| (ch as usize) - ('a' as usize);
    for _ in 0..60 {
        let re = random_regex(&mut rng, 3);
        let sparse = Dfa::from_nfa(&Nfa::glushkov(&re));
        let dense = sparse.to_dense(&alphabet);
        for _ in 0..40 {
            let len = rng.gen_range(0..6);
            let word: Vec<char> = (0..len)
                .map(|_| {
                    *alphabet
                        .iter()
                        .nth(rng.gen_range(0..alphabet.len()))
                        .unwrap()
                })
                .collect();
            let cols: Vec<usize> = word.iter().map(|&ch| index(ch)).collect();
            assert_eq!(
                dense.accepts(&cols),
                sparse.accepts(&word),
                "dense/sparse divergence for {re:?} on {word:?}"
            );
            // Complement flips membership for every word.
            assert_eq!(dense.complement().accepts(&cols), !dense.accepts(&cols));
        }
        assert_eq!(dense.is_empty(), sparse.is_empty(), "emptiness for {re:?}");
    }
}

#[test]
fn dense_dfa_equivalence_agrees_with_sparse_equivalence() {
    let mut rng = StdRng::seed_from_u64(4242);
    let alphabet: BTreeSet<char> = ['a', 'b', 'c'].into_iter().collect();
    let mut seen_equal = 0;
    for _ in 0..40 {
        let r1 = random_regex(&mut rng, 2);
        let r2 = random_regex(&mut rng, 2);
        let d1 = Dfa::from_nfa(&Nfa::glushkov(&r1));
        let d2 = Dfa::from_nfa(&Nfa::glushkov(&r2));
        // Oracle: brute-force membership agreement over all words up to length 4.
        let mut brute_equal = true;
        let letters: Vec<char> = alphabet.iter().copied().collect();
        let mut words: Vec<Vec<char>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &words {
                for &ch in &letters {
                    let mut w2 = w.clone();
                    w2.push(ch);
                    next.push(w2);
                }
            }
            words.extend(next);
        }
        for w in &words {
            if r1.matches(w) != r2.matches(w) {
                brute_equal = false;
                break;
            }
        }
        let dense_equal = d1.to_dense(&alphabet).equivalent(&d2.to_dense(&alphabet));
        // Short-word disagreement certainly refutes equivalence; agreement up to
        // length 4 on these tiny expressions is decided exactly by the automata.
        if !brute_equal {
            assert!(!dense_equal, "{r1:?} vs {r2:?}");
        }
        assert_eq!(dense_equal, d1.equivalent(&d2), "{r1:?} vs {r2:?}");
        seen_equal += usize::from(dense_equal);
        // Reflexivity through an independent construction.
        assert!(d1
            .to_dense(&alphabet)
            .equivalent(&Dfa::from_nfa(&Nfa::glushkov(&r1)).to_dense(&alphabet)));
    }
    let _ = seen_equal;
}

/// A random DTD over `n` element types, with occasional cycles and references to one
/// undeclared ghost type (the graph must handle both).
fn random_dtd(rng: &mut StdRng, n: usize) -> Dtd {
    let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
    let mut dtd = Dtd::new(names[0].clone());
    for (i, name) in names.iter().enumerate() {
        let mut parts = Vec::new();
        for _ in 0..rng.gen_range(0..3) {
            let target = if rng.gen_range(0..10) == 0 {
                "ghost".to_string()
            } else {
                names[rng.gen_range(0..n)].clone()
            };
            let sym = Regex::sym(target);
            parts.push(match rng.gen_range(0..3) {
                0 => sym,
                1 => Regex::opt(sym),
                _ => Regex::star(sym),
            });
        }
        let content = if parts.is_empty() {
            Regex::Epsilon
        } else {
            Regex::concat(parts)
        };
        dtd.define(name.clone(), content);
        let _ = i;
    }
    dtd
}

#[test]
fn dense_graph_closure_matches_naive_bfs() {
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..40 {
        let dtd = random_dtd(&mut rng, 2 + (round % 6));
        let graph = DtdGraph::new(&dtd);
        // Names the graph knows: declared plus referenced.
        let mut all_names: Vec<String> = dtd.element_names();
        all_names.push("ghost".to_string());
        let mut any_self_reaching = false;
        for name in &all_names {
            if graph.sym(name).is_none() {
                // ghost never referenced in this round
                continue;
            }
            // Naive BFS over the string adjacency.
            let mut seen = std::collections::BTreeSet::new();
            let mut queue: std::collections::VecDeque<String> =
                graph.successors(name).into_iter().collect();
            while let Some(t) = queue.pop_front() {
                if seen.insert(t.clone()) {
                    queue.extend(graph.successors(&t));
                }
            }
            assert_eq!(
                graph.reachable_from(name),
                seen,
                "closure mismatch at {name} for {dtd}"
            );
            // The dense row must agree element-for-element.
            let v = graph.sym(name).unwrap();
            let dense: std::collections::BTreeSet<String> = graph
                .reach_bits(v)
                .iter()
                .map(|i| graph.name(Sym::from_index(i)).to_string())
                .collect();
            assert_eq!(dense, seen);
            any_self_reaching |= seen.contains(name);
        }
        assert_eq!(
            graph.is_recursive(),
            any_self_reaching,
            "recursion flag mismatch for {dtd}"
        );
        // Depth bound: recompute the longest root path naively on nonrecursive DTDs.
        if !graph.is_recursive() {
            fn longest(graph: &DtdGraph, node: &str) -> usize {
                graph
                    .successors(node)
                    .iter()
                    .map(|s| 1 + longest(graph, s))
                    .max()
                    .unwrap_or(0)
            }
            assert_eq!(
                graph.depth_bound(),
                Some(longest(&graph, dtd.root())),
                "depth bound mismatch for {dtd}"
            );
        } else {
            assert_eq!(graph.depth_bound(), None);
        }
    }
}

/// DTD/query corpora covering every engine of the façade (the same fragments the
/// `perf_report` harness times).
fn solver_corpus() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            // downward + positive + negation + djfree-ineligible (disjunctive)
            "r -> a*; a -> b | c; b -> d?; c -> #; d -> #;",
            vec![
                "a/b",
                "a/b/d",
                "**/d",
                "a[b]",
                "a[b and c]",
                ".[a[b] and a[c]]",
                "a[not(b)]",
                ".[not(a)]",
                "b/..",
                "a/>",
            ],
        ),
        (
            // disjunction-free fast path + sibling walks
            "r -> book*; book -> title, author+; title -> #; author -> #;",
            vec![
                "book[title and author]",
                "book[price]",
                "book/title/>",
                "title/<",
                "book[title][author]",
            ],
        ),
        (
            // nonrecursive: recursion elimination + enumeration completeness
            "r -> a; a -> b?; b -> #; @a: id;",
            vec![
                "**[lab() = b]/..[not(lab() = r)]",
                "a[@id = \"1\"]",
                ".[a/@id != a/@id]",
                "a/b/..",
                "a/../..",
            ],
        ),
        (
            // recursive DTD with a non-terminating type
            "r -> c | z; c -> (c, x) | #; x -> #; z -> z;",
            vec!["c/c/x", "**/x", "z", "c[x and c]"],
        ),
    ]
}

#[test]
fn solver_verdicts_identical_with_and_without_artifacts() {
    let solver = Solver::default();
    for (dtd_text, queries) in solver_corpus() {
        let dtd = parse_dtd(dtd_text).unwrap();
        let artifacts = DtdArtifacts::build(&dtd);
        for query_text in queries {
            let query = parse_path(query_text).unwrap();
            let per_call = solver.decide(&dtd, &query);
            let shared = solver.decide_with_artifacts(&artifacts, &query);
            assert_eq!(
                decision_fingerprint(&per_call),
                decision_fingerprint(&shared),
                "cold/warm divergence on `{query_text}` under `{dtd_text}`"
            );
        }
    }
}

#[test]
fn lazy_and_eagerly_warmed_artifacts_yield_identical_fingerprints() {
    let solver = Solver::default();
    for (dtd_text, queries) in solver_corpus() {
        let dtd = parse_dtd(dtd_text).unwrap();
        // `lazy` builds its automata/useful-masks/generator on first touch per query;
        // `eager` is fully forced up front (the service-registration path).
        let lazy = DtdArtifacts::build(&dtd);
        let eager = DtdArtifacts::build(&dtd);
        eager.warm();
        for query_text in &queries {
            let query = parse_path(query_text).unwrap();
            let from_lazy = solver.decide_with_artifacts(&lazy, &query);
            let from_eager = solver.decide_with_artifacts(&eager, &query);
            assert_eq!(
                decision_fingerprint(&from_lazy),
                decision_fingerprint(&from_eager),
                "lazy/eager divergence on `{query_text}` under `{dtd_text}`"
            );
        }
        // Forcing after the fact must also be a no-op observably.
        lazy.warm();
        for query_text in &queries {
            let query = parse_path(query_text).unwrap();
            assert_eq!(
                decision_fingerprint(&solver.decide_with_artifacts(&lazy, &query)),
                decision_fingerprint(&solver.decide_with_artifacts(&eager, &query)),
            );
        }
    }
}

#[test]
fn workspace_serves_the_same_decisions_as_a_fresh_solver() {
    let solver = Solver::default();
    let mut ws = Workspace::default();
    for (dtd_text, queries) in solver_corpus() {
        let dtd = parse_dtd(dtd_text).unwrap();
        let dtd_id = ws.register_dtd(dtd_text).unwrap();
        for query_text in queries {
            let q = ws.intern(query_text).unwrap();
            let served = ws.decide(dtd_id, q).unwrap();
            // The workspace may serve through the compiled-program VM (different
            // engine tag, equally valid witness), so the direct solver is the
            // oracle for the verdict and the witness is verified independently.
            let direct = solver.decide(&dtd, &parse_path(query_text).unwrap());
            assert_eq!(
                verdict_fingerprint(&served.decision),
                verdict_fingerprint(&direct),
                "workspace divergence on `{query_text}` under `{dtd_text}`"
            );
            if let xpsat_core::Satisfiability::Satisfiable(doc) = &served.decision.result {
                xpsat_core::sat::verify_witness(doc, &dtd, &parse_path(query_text).unwrap())
                    .unwrap_or_else(|e| panic!("witness for `{query_text}`: {e:?}"));
            }
        }
    }
}

#[test]
fn compiled_automata_agree_with_content_models_on_random_children_words() {
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..25 {
        let dtd = random_dtd(&mut rng, 2 + (round % 5));
        let artifacts = DtdArtifacts::build(&dtd);
        let Some(compiled) = artifacts.compiled() else {
            continue;
        };
        for elem in compiled.elements() {
            let name = compiled.name(elem).to_string();
            let content = compiled.dtd().content(&name).unwrap().clone();
            let nfa = compiled.automaton(elem);
            for _ in 0..20 {
                let len = rng.gen_range(0..4);
                let word_syms: Vec<Sym> = (0..len)
                    .map(|_| Sym::from_index(rng.gen_range(0..compiled.num_elements())))
                    .collect();
                let word_names: Vec<String> = word_syms
                    .iter()
                    .map(|s| compiled.name(*s).to_string())
                    .collect();
                assert_eq!(
                    nfa.accepts(&word_syms),
                    content.matches(&word_names),
                    "automaton/content divergence for {name} on {word_names:?}"
                );
            }
        }
    }
}
