//! Query pruning — the motivating application from the paper's introduction.
//!
//! "Consider an XML query construct commonly used: `for $x in p return c($x)`.  If one
//! can decide, at compile time, that `p` is not satisfiable, then the unnecessary
//! computation of `c($x)` can simply be avoided."
//!
//! This example plays the role of such an optimiser: it takes a workload of XPath
//! expressions used by a (fictional) reporting application over a clinical-records DTD
//! and partitions them into the ones worth executing and the dead ones, with the
//! complexity class / engine that justified each pruning decision.
//!
//! Run with `cargo run --example query_pruning`.

use xpathsat::prelude::*;

fn main() {
    let dtd = parse_dtd(
        "root hospital;
         hospital -> department*;
         department -> name, (ward | laboratory)*;
         ward -> name, patient*;
         patient -> name, admission, discharge?, treatment*;
         treatment -> drug | surgery;
         laboratory -> name, sample*;
         sample -> #;
         name -> #; admission -> #; discharge -> #; drug -> #; surgery -> #;
         @patient: id; @sample: id; @drug: code;",
    )
    .expect("well-formed DTD");

    let workload = [
        // Live queries.
        "department/ward/patient[treatment/drug]",
        "**/patient[not(discharge)]",
        "department[ward and laboratory]",
        "**/sample",
        "department/ward/patient[treatment[drug] and treatment[surgery]]",
        // Dead queries: schema violations an optimiser should catch.
        "department/patient",                       // patients live under wards
        "**/patient[discharge and not(admission)]", // admission is mandatory
        "laboratory/patient",                       // labs hold samples, not patients
        "**/treatment[drug and surgery]",           // a treatment is one or the other
        "department/ward/sample",                   // samples live under labs
    ];

    let solver = Solver::default();
    let mut live = Vec::new();
    let mut dead = Vec::new();

    for text in workload {
        let query = parse_path(text).expect("query parses");
        let decision = solver.decide(&dtd, &query);
        match decision.result {
            Satisfiability::Satisfiable(_) => live.push((text, decision.engine)),
            Satisfiability::Unsatisfiable => dead.push((text, decision.engine)),
            Satisfiability::Unknown => live.push((text, decision.engine)),
        }
    }

    println!("== queries worth executing ==");
    for (text, engine) in &live {
        println!("  {text}    [checked by {engine}]");
    }
    println!("\n== dead queries (pruned at compile time) ==");
    for (text, engine) in &dead {
        println!("  {text}    [proved empty by {engine}]");
    }
    println!(
        "\npruned {} of {} queries without touching any document",
        dead.len(),
        workload.len()
    );
    assert_eq!(
        dead.len(),
        5,
        "exactly the five schema-violating queries are pruned"
    );
}
