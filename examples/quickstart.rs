//! Quickstart: check a handful of queries against a bookstore DTD, print the verdicts,
//! the engine that produced each one, and a witness document when one exists.
//!
//! Run with `cargo run --example quickstart`.

use xpathsat::prelude::*;

fn main() {
    let dtd = parse_dtd(
        "root store;
         store -> (book | magazine)*;
         book  -> title, author+, price?;
         magazine -> title, issue;
         title -> #; author -> #; price -> #; issue -> #;
         @book: isbn; @price: currency;",
    )
    .expect("the DTD is well-formed");

    println!("DTD:\n{dtd}");
    let class = classify(&dtd);
    println!("classification: {class:?}\n");

    let solver = Solver::default();
    let queries = [
        // satisfiable: a book with at least two authors and no price
        "book[author and not(price)]",
        // satisfiable: some title anywhere
        "**/title",
        // unsatisfiable: magazines have no authors
        "magazine/author",
        // unsatisfiable: a book cannot be both priced and price-less
        "book[price and not(price)]",
        // satisfiable: sibling navigation from a title to the following author
        "book/title/>[lab() = author]",
        // satisfiable, uses data values: a book whose isbn equals a constant
        "book[@isbn = \"1-55860-622-X\"]",
    ];

    for text in queries {
        let query = parse_path(text).expect("query parses");
        let decision = solver.decide(&dtd, &query);
        println!("query     : {query}");
        println!("fragment  : {:?}", Features::of_path(&query));
        println!("engine    : {}", decision.engine);
        println!("complete  : {}", decision.complete);
        match &decision.result {
            Satisfiability::Satisfiable(doc) => {
                verify_witness(doc, &dtd, &query).expect("witnesses are always re-checked");
                println!("verdict   : satisfiable");
                println!("witness   : {doc}");
            }
            Satisfiability::Unsatisfiable => println!("verdict   : unsatisfiable"),
            Satisfiability::Unknown => println!("verdict   : unknown (budget exhausted)"),
        }
        println!();
    }
}
