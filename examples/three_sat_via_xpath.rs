//! 3SAT solved through XPath satisfiability — the NP-hardness reduction of
//! Proposition 4.2 run forwards (Figure 1 of the paper).
//!
//! The example encodes a propositional formula as a `(DTD, query)` pair, lets the
//! satisfiability solver find a witness document, decodes the truth assignment back out
//! of the witness and checks it against the formula — then does the same for an
//! unsatisfiable formula to show the other direction.
//!
//! Run with `cargo run --example three_sat_via_xpath`.

use xpathsat::logic::{dpll, CnfFormula, Literal, Var};
use xpathsat::prelude::*;
use xpathsat::sat::reductions::threesat::{decode_assignment, threesat_to_downward_qualifiers};

fn solve_via_xpath(formula: &CnfFormula) {
    println!("formula: {formula}");
    let (dtd, query) = threesat_to_downward_qualifiers(formula);
    println!(
        "encoded DTD has {} element types; query: {query}",
        dtd.element_names().len()
    );

    let solver = Solver::default();
    let decision = solver.decide(&dtd, &query);
    match decision.result {
        Satisfiability::Satisfiable(witness) => {
            let assignment = decode_assignment(&witness, formula);
            println!("XPath-satisfiable → formula satisfiable; decoded assignment:");
            for (var, value) in &assignment {
                println!("  x{} = {}", var.0, value);
            }
            assert!(
                formula.eval(&assignment),
                "decoded assignment satisfies the formula"
            );
            assert!(dpll::satisfiable(formula), "DPLL agrees");
        }
        Satisfiability::Unsatisfiable => {
            println!("XPath-unsatisfiable → formula unsatisfiable");
            assert!(!dpll::satisfiable(formula), "DPLL agrees");
        }
        Satisfiability::Unknown => unreachable!("the positive engine is complete here"),
    }
    println!();
}

fn main() {
    // (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x2) ∧ (¬x2 ∨ x3 ∨ x1) — satisfiable.
    let satisfiable = CnfFormula::from_clauses(vec![
        vec![
            Literal::pos(Var(1)),
            Literal::pos(Var(2)),
            Literal::neg(Var(3)),
        ],
        vec![
            Literal::neg(Var(1)),
            Literal::pos(Var(3)),
            Literal::pos(Var(2)),
        ],
        vec![
            Literal::neg(Var(2)),
            Literal::pos(Var(3)),
            Literal::pos(Var(1)),
        ],
    ]);
    solve_via_xpath(&satisfiable);

    // x1 ∧ ¬x1 (padded to three literals) — unsatisfiable.
    let unsatisfiable = CnfFormula::from_clauses(vec![
        vec![
            Literal::pos(Var(1)),
            Literal::pos(Var(1)),
            Literal::pos(Var(1)),
        ],
        vec![
            Literal::neg(Var(1)),
            Literal::neg(Var(1)),
            Literal::neg(Var(1)),
        ],
    ]);
    solve_via_xpath(&unsatisfiable);
}
