//! One DTD registration, a 100-query batch, and a per-engine timing summary.
//!
//! Demonstrates the service-layer shape the paper's complexity results reward: the
//! per-DTD preprocessing (classification, normalisation, content-model automata) runs
//! once at registration, after which a hundred queries are dispatched across worker
//! threads — and a repeated batch is served entirely from the decision cache.
//!
//! Run with `cargo run --example batch_service`.

use std::collections::BTreeMap;
use std::time::Instant;
use xpathsat::prelude::*;
use xpathsat::service::engine_slug;

fn main() {
    let dtd_text = "root store; store -> (book | magazine)*; \
                    book -> title, author+, price?; magazine -> title, issue; \
                    title -> #; author -> #; price -> #; issue -> #; @book: isbn;";

    // Registration is the expensive, amortised step: classification, normalisation
    // and one Glushkov automaton per element type, computed exactly once.
    let mut session = Session::new();
    let register_start = Instant::now();
    session.load_dtd(dtd_text).expect("the DTD is well-formed");
    let register_ms = register_start.elapsed().as_secs_f64() * 1e3;

    // A 100-query workload mixing engines: downward chains, qualified positives,
    // negations, sibling walks and upward rewrites, with plenty of repeats.
    let shapes = [
        "book",
        "book/title",
        "book/author",
        "book[price]",
        "book[author and price]",
        "book[not(price)]",
        "book[author and not(price)]",
        "magazine[issue]",
        "magazine[not(author)]",
        "book/>",
        "magazine/<",
        "title/..",
        "book[editor]",
        "** | book",
        "book[title | price]",
        "store/book",
        "*[issue]",
        "book[@isbn = \"x\"]",
        "book[price]/title",
        "magazine/issue",
    ];
    let queries: Vec<String> = (0..100)
        .map(|i| shapes[i % shapes.len()].to_string())
        .collect();

    let cold_start = Instant::now();
    let cold = session.check_batch(&queries, 4).expect("all queries parse");
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;

    let warm_start = Instant::now();
    let warm = session.check_batch(&queries, 4).expect("all queries parse");
    let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;

    // Per-engine summary of the cold run.
    let mut by_engine: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for served in &cold {
        let entry = by_engine
            .entry(engine_slug(served.decision.engine))
            .or_insert((0, 0));
        entry.0 += 1;
        if served.decision.result.is_satisfiable() == Some(true) {
            entry.1 += 1;
        }
    }

    println!("registered 1 DTD in {register_ms:.2} ms (classification + N(D) + automata)");
    println!(
        "cold batch: {} queries in {cold_ms:.2} ms ({} solver runs, {} cache hits)",
        cold.len(),
        cold.iter().filter(|served| !served.cached).count(),
        cold.iter().filter(|served| served.cached).count(),
    );
    println!(
        "warm batch: {} queries in {warm_ms:.2} ms (all {} served from cache: {})",
        warm.len(),
        warm.iter().filter(|served| served.cached).count(),
        warm.iter().all(|served| served.cached),
    );
    println!("\nper-engine summary (cold run):");
    println!("{:<22} {:>8} {:>12}", "engine", "queries", "satisfiable");
    for (engine, (count, sat)) in &by_engine {
        println!("{engine:<22} {count:>8} {sat:>12}");
    }
    println!("\nservice counters: {}", session.workspace().stats());

    assert!(
        warm.iter().all(|served| served.cached),
        "warm batch must be fully cached"
    );
    assert_eq!(session.workspace().stats().classifications, 1);
}
