//! Containment through satisfiability (Proposition 3.2) — the static analysis that most
//! prior work focused on, obtained here as a corollary of the satisfiability machinery.
//!
//! The example checks a few containment relationships between access-control-style
//! queries over a document-management DTD, the scenario in which containment questions
//! ("does the public view ever reveal something the restricted view does not?") arise in
//! practice.
//!
//! Run with `cargo run --example containment_check`.

use xpathsat::prelude::*;

fn main() {
    // Star-free and nonrecursive, so every check below is decided exactly.
    let dtd = parse_dtd(
        "root archive;
         archive -> record, record?;
         record -> meta, body?;
         meta -> owner, visibility;
         body -> text?, attachment?;
         owner -> #; visibility -> #; text -> #; attachment -> #;",
    )
    .expect("well-formed DTD");

    let solver = Solver::default();
    let checks = [
        // Everything with a body has meta data (the DTD forces meta): contained.
        ("record[body]", "record[meta]"),
        // The converse fails: a record can have meta but no body.
        ("record[meta]", "record[body]"),
        // Path containment through the inverse transformation.
        ("record/body/text", "record/body/*"),
        ("record/body/*", "record/body/text"),
    ];

    for (left, right) in checks {
        let p1 = parse_path(left).unwrap();
        let p2 = parse_path(right).unwrap();
        let verdict = containment(&solver, &dtd, &p1, &p2);
        println!("{left}  ⊆  {right}   ?   {verdict:?}");
    }

    // Boolean containment (Proposition 3.2(2)) with negation in both operands.
    let q1 = parse_qualifier("record[body and not(body/attachment)]").unwrap();
    let q2 = parse_qualifier("record[body]").unwrap();
    println!(
        "[{q1}] ⊆ [{q2}] ? {:?}",
        boolean_containment(&solver, &dtd, &q1, &q2)
    );
    println!(
        "[{q2}] ⊆ [{q1}] ? {:?}",
        boolean_containment(&solver, &dtd, &q2, &q1)
    );
}
