//! An offline, dependency-free stand-in for the subset of the `rand` 0.8 API that this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors the three
//! items its generators and tests actually need — [`rngs::StdRng`], [`SeedableRng`] and
//! the [`Rng`] extension trait with `gen_range` / `gen_bool` — behind the same paths the
//! real crate exposes.  The generator is xoshiro256++ seeded through splitmix64; it is
//! deterministic across runs and platforms, which is all the workspace requires (every
//! caller seeds explicitly via `seed_from_u64` for reproducibility).
//!
//! The streams differ from the real `rand::rngs::StdRng` (which is ChaCha12-based), so
//! seeds do not produce the same values as upstream — irrelevant here, since no test
//! encodes upstream stream values.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the only primitive the shim needs is a 64-bit step.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only [`SeedableRng::seed_from_u64`] is provided.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring the `rand::Rng` surface in use.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 uniformly distributed mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = uniform_u128(rng, span);
                (self.start as u128).wrapping_add(draw) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = uniform_u128(rng, span);
                (start as u128).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u128;
                let draw = uniform_u128(rng, span) as $uty;
                (self.start as $uty).wrapping_add(draw) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $uty).wrapping_sub(start as $uty) as u128 + 1;
                let draw = uniform_u128(rng, span) as $uty;
                (start as $uty).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A uniform draw from `0..span` (`span > 0`), bias rejected away.
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return (rng.next_u64() as u128) & (span - 1);
    }
    // All spans in this workspace fit in 64 bits (integer ranges up to u64), so one
    // 64-bit draw per rejection round suffices.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64) - 1;
    loop {
        let draw = rng.next_u64();
        if draw <= zone {
            return (draw % span64) as u128;
        }
    }
}

pub mod rngs {
    //! Concrete generators; only [`StdRng`] is provided.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, the recommended seeding procedure for
            // the xoshiro family (avoids the all-zero state by construction).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn generic_rng_arguments_work_through_reborrows() {
        fn draw<R: super::RngCore>(rng: &mut R) -> usize {
            use super::Rng;
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
