//! An offline, dependency-free stand-in for the subset of the `criterion` API that the
//! `xpsat-bench` benches use.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! handful of items the benches need — [`Criterion`], [`BenchmarkId`], benchmark
//! groups with `sample_size` / `bench_function` / `bench_with_input` / `finish`, the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`].  Each benchmark
//! is timed with `std::time::Instant` over `sample_size` iterations (after one warm-up
//! iteration) and reported as a mean per-iteration wall-clock line on stdout.  No
//! statistics, plots or baselines — enough to regenerate the *shape* of the paper's
//! tables, which is what `EXPERIMENTS.md` asks of the benches.

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value or the computation behind it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The identifier of one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dtd_depth", 8)` renders as `dtd_depth/8`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up pass pulls code and data into caches.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        println!(
            "{}/{:<40} {:>12.3} µs/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e6,
            bencher.iterations
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Mark the group complete (report separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        self
    }
}

/// Collect benchmark functions under one runner name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` for a bench binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_count() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u32, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        // One warm-up + three timed iterations.
        assert_eq!(runs, 4);
        assert_eq!(c.benchmarks_run, 1);
    }
}
