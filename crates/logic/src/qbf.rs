//! Quantified Boolean formulas in prenex CNF (the Q3SAT problem of Proposition 5.1).
//!
//! `φ = Q1 x1 … Qm xm . E` where `E` is a CNF over `x1..xm`.  Validity is decided by the
//! obvious complete recursion over the quantifier prefix — exponential in the number of
//! variables, which is fine for the instance sizes used to validate the PSPACE-hardness
//! reductions.

use crate::cnf::{Assignment, CnfFormula, Var};
use rand::Rng;
use std::fmt;

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Universal (`∀`).
    ForAll,
    /// Existential (`∃`).
    Exists,
}

/// A prenex-CNF quantified Boolean formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qbf {
    /// The quantifier prefix, outermost first.  Every variable of the matrix must occur
    /// exactly once in the prefix.
    pub prefix: Vec<(Quantifier, Var)>,
    /// The quantifier-free CNF matrix.
    pub matrix: CnfFormula,
}

impl Qbf {
    /// Is the closed formula true?
    pub fn is_valid(&self) -> bool {
        let mut assignment = Assignment::new();
        self.eval_prefix(0, &mut assignment)
    }

    fn eval_prefix(&self, index: usize, assignment: &mut Assignment) -> bool {
        match self.prefix.get(index) {
            None => self.matrix.eval(assignment),
            Some(&(quant, var)) => {
                let mut results = [false, false];
                for (i, value) in [false, true].into_iter().enumerate() {
                    assignment.insert(var, value);
                    results[i] = self.eval_prefix(index + 1, assignment);
                    assignment.remove(&var);
                }
                match quant {
                    Quantifier::ForAll => results[0] && results[1],
                    Quantifier::Exists => results[0] || results[1],
                }
            }
        }
    }

    /// The number of quantified variables.
    pub fn num_vars(&self) -> usize {
        self.prefix.len()
    }

    /// A random Q3SAT instance: `num_vars` variables with random quantifiers and a
    /// random 3CNF matrix of `num_clauses` clauses.
    pub fn random<R: Rng>(rng: &mut R, num_vars: u32, num_clauses: usize) -> Qbf {
        let prefix = (1..=num_vars)
            .map(|i| {
                let quant = if rng.gen_bool(0.5) {
                    Quantifier::ForAll
                } else {
                    Quantifier::Exists
                };
                (quant, Var(i))
            })
            .collect();
        Qbf {
            prefix,
            matrix: CnfFormula::random_3sat(rng, num_vars, num_clauses),
        }
    }
}

impl fmt::Display for Qbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (quant, var) in &self.prefix {
            match quant {
                Quantifier::ForAll => write!(f, "∀x{} ", var.0)?,
                Quantifier::Exists => write!(f, "∃x{} ", var.0)?,
            }
        }
        write!(f, ". {}", self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Literal;
    use crate::dpll;

    #[test]
    fn forall_exists_example() {
        // ∀x1 ∃x2 . (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2)  — valid (choose x2 = ¬x1).
        let qbf = Qbf {
            prefix: vec![(Quantifier::ForAll, Var(1)), (Quantifier::Exists, Var(2))],
            matrix: CnfFormula::from_clauses(vec![
                vec![Literal::pos(Var(1)), Literal::pos(Var(2))],
                vec![Literal::neg(Var(1)), Literal::neg(Var(2))],
            ]),
        };
        assert!(qbf.is_valid());

        // ∃x2 ∀x1 . same matrix — invalid (no single x2 works for both x1 values).
        let swapped = Qbf {
            prefix: vec![(Quantifier::Exists, Var(2)), (Quantifier::ForAll, Var(1))],
            matrix: qbf.matrix.clone(),
        };
        assert!(!swapped.is_valid());
    }

    #[test]
    fn purely_existential_qbf_matches_dpll() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let num_vars = rng.gen_range(1..=5);
            let num_clauses = rng.gen_range(1..=10);
            let matrix = CnfFormula::random_3sat(&mut rng, num_vars, num_clauses);
            let qbf = Qbf {
                prefix: (1..=num_vars)
                    .map(|i| (Quantifier::Exists, Var(i)))
                    .collect(),
                matrix: matrix.clone(),
            };
            assert_eq!(
                qbf.is_valid(),
                dpll::satisfiable(&matrix),
                "matrix {matrix}"
            );
        }
    }

    #[test]
    fn universal_closure_of_tautology() {
        // ∀x1 . (x1 ∨ ¬x1) is valid; ∀x1 . (x1) is not.
        let taut = Qbf {
            prefix: vec![(Quantifier::ForAll, Var(1))],
            matrix: CnfFormula::from_clauses(vec![vec![
                Literal::pos(Var(1)),
                Literal::neg(Var(1)),
            ]]),
        };
        assert!(taut.is_valid());
        let not_taut = Qbf {
            prefix: vec![(Quantifier::ForAll, Var(1))],
            matrix: CnfFormula::from_clauses(vec![vec![Literal::pos(Var(1))]]),
        };
        assert!(!not_taut.is_valid());
    }
}
