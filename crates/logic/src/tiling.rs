//! Two-player corridor tiling games (TPG-CT), the EXPTIME-complete source problem of
//! Theorems 5.6 and 6.7(2)(3).
//!
//! An instance is a tiling system `(X, H, V, t, b)` and a corridor width `n`.  Players I
//! and II alternately place tiles row by row, left to right, respecting the horizontal
//! and vertical adjacency relations; the top row is fixed to `t`.  Player II may stop
//! the game at the end of a row, in which case the row must match the bottom vector `b`
//! for Player I to win; a player unable to move loses.  The question is whether Player I
//! has a winning strategy.
//!
//! The solver below is a straightforward minimax with memoisation on the game state
//! (the last `n` tiles placed and the position in the row).  It is exponential — exactly
//! what one expects for an EXPTIME-complete problem — and is only used on the tiny
//! instances that validate the reductions.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A tile, identified by its index into the tile set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tile(pub usize);

/// A two-player corridor tiling instance.
#[derive(Debug, Clone)]
pub struct CorridorTiling {
    /// Number of tiles in the tile set `X` (tiles are `Tile(0) .. Tile(num_tiles-1)`).
    pub num_tiles: usize,
    /// Horizontal adjacency: `(d, d')` allowed when `d'` is placed directly right of `d`.
    pub horizontal: BTreeSet<(Tile, Tile)>,
    /// Vertical adjacency: `(d, d')` allowed when `d'` is placed directly below `d`.
    pub vertical: BTreeSet<(Tile, Tile)>,
    /// The fixed top row `t` (length = corridor width `n`).
    pub top: Vec<Tile>,
    /// The fixed bottom row `b` (length = corridor width `n`).
    pub bottom: Vec<Tile>,
    /// A bound on the number of rows the players may lay before the game is declared
    /// lost for Player I (the paper's game has no such bound; a finite bound keeps the
    /// reference solver total and matches the bounded searches used in tests).
    pub max_rows: usize,
}

impl CorridorTiling {
    /// Corridor width `n`.
    pub fn width(&self) -> usize {
        self.top.len()
    }

    fn h_ok(&self, left: Tile, right: Tile) -> bool {
        self.horizontal.contains(&(left, right))
    }

    fn v_ok(&self, above: Tile, below: Tile) -> bool {
        self.vertical.contains(&(above, below))
    }

    /// The tiles that may legally be placed at the next position, given the previous row
    /// and the current (partial) row.
    fn legal_moves(&self, prev_row: &[Tile], current: &[Tile]) -> Vec<Tile> {
        let col = current.len();
        (0..self.num_tiles)
            .map(Tile)
            .filter(|&tile| {
                let h = col == 0 || self.h_ok(current[col - 1], tile);
                let v = self.v_ok(prev_row[col], tile);
                h && v
            })
            .collect()
    }

    /// Does Player I have a winning strategy?
    pub fn player_one_wins(&self) -> bool {
        let n = self.width();
        assert_eq!(
            self.bottom.len(),
            n,
            "top and bottom rows must have equal width"
        );
        let mut memo = BTreeMap::new();
        self.wins(&self.top.clone(), &[], 0, &mut memo)
    }

    /// Minimax: `prev_row` is the last complete row, `current` the partial row being
    /// built.  Player I moves at even move indices (within the whole game), Player II at
    /// odd ones; the move index is `rows_played * n + current.len()`.
    fn wins(
        &self,
        prev_row: &[Tile],
        current: &[Tile],
        rows_played: usize,
        memo: &mut BTreeMap<(Vec<Tile>, Vec<Tile>, bool), bool>,
    ) -> bool {
        let n = self.width();
        if current.len() == n {
            // Row complete.  Player II may stop the game here: Player I must therefore
            // be safe both when the game stops (row must match the bottom vector) and
            // when it continues.  Stopping is only a threat if the row differs from b;
            // if it matches b Player I has already won.
            if current == self.bottom {
                return true;
            }
            if rows_played + 1 >= self.max_rows {
                return false;
            }
            return self.wins(current, &[], rows_played + 1, memo);
        }
        let move_index = rows_played * n + current.len();
        let player_one_to_move = move_index.is_multiple_of(2);
        let key = (prev_row.to_vec(), current.to_vec(), player_one_to_move);
        if let Some(&cached) = memo.get(&key) {
            return cached;
        }
        let moves = self.legal_moves(prev_row, current);
        let result = if moves.is_empty() {
            // The player to move loses.
            !player_one_to_move
        } else {
            let mut outcomes = moves.into_iter().map(|tile| {
                let mut next = current.to_vec();
                next.push(tile);
                self.wins(prev_row, &next, rows_played, memo)
            });
            if player_one_to_move {
                outcomes.any(|w| w)
            } else {
                outcomes.all(|w| w)
            }
        };
        memo.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(list: &[(usize, usize)]) -> BTreeSet<(Tile, Tile)> {
        list.iter().map(|&(a, b)| (Tile(a), Tile(b))).collect()
    }

    #[test]
    fn trivially_winnable_single_tile_game() {
        // One tile compatible with itself in every direction: Player I wins by reaching
        // the bottom row immediately (the first completed row already matches b).
        let inst = CorridorTiling {
            num_tiles: 1,
            horizontal: pairs(&[(0, 0)]),
            vertical: pairs(&[(0, 0)]),
            top: vec![Tile(0), Tile(0)],
            bottom: vec![Tile(0), Tile(0)],
            max_rows: 4,
        };
        assert!(inst.player_one_wins());
    }

    #[test]
    fn unwinnable_when_no_tile_fits() {
        // No vertical pair is allowed below tile 0, so the very first move is impossible
        // and Player I (who moves first) loses.
        let inst = CorridorTiling {
            num_tiles: 2,
            horizontal: pairs(&[(0, 0), (0, 1), (1, 0), (1, 1)]),
            vertical: pairs(&[(1, 1)]),
            top: vec![Tile(0), Tile(0)],
            bottom: vec![Tile(1), Tile(1)],
            max_rows: 4,
        };
        assert!(!inst.player_one_wins());
    }

    #[test]
    fn player_two_can_sabotage() {
        // Two tiles; Player II places the second tile of each row.  Reaching the bottom
        // row (1, 1) requires Player II to cooperate by playing tile 1, but playing
        // tile 0 is always legal for Player II, so Player I cannot force a win.
        let inst = CorridorTiling {
            num_tiles: 2,
            horizontal: pairs(&[(0, 0), (0, 1), (1, 0), (1, 1)]),
            vertical: pairs(&[(0, 0), (0, 1), (1, 0), (1, 1)]),
            top: vec![Tile(0), Tile(0)],
            bottom: vec![Tile(1), Tile(1)],
            max_rows: 3,
        };
        assert!(!inst.player_one_wins());
    }

    #[test]
    fn player_one_wins_when_constraints_force_the_bottom_row() {
        // Vertical constraints force every tile below 0 to be 1 and below 1 to be 1,
        // so the second row is necessarily (1, 1) = b regardless of Player II.
        let inst = CorridorTiling {
            num_tiles: 2,
            horizontal: pairs(&[(0, 0), (1, 1), (0, 1), (1, 0)]),
            vertical: pairs(&[(0, 1), (1, 1)]),
            top: vec![Tile(0), Tile(0)],
            bottom: vec![Tile(1), Tile(1)],
            max_rows: 4,
        };
        assert!(inst.player_one_wins());
    }
}
