//! A complete DPLL satisfiability solver for CNF formulas.
//!
//! Used as the ground truth when testing the 3SAT reductions of Propositions 4.2/4.3,
//! Theorems 6.6/6.9 and Proposition 7.2: a reduction is correct when the DPLL verdict on
//! the source instance equals the XPath-satisfiability verdict on the encoded instance.

use crate::cnf::{Assignment, CnfFormula, Literal, Var};

/// Decide satisfiability; on success, return a satisfying assignment (total over the
/// formula's variables).
pub fn solve(formula: &CnfFormula) -> Option<Assignment> {
    let mut assignment = Assignment::new();
    let vars = formula.variables();
    if dpll(formula, &mut assignment) {
        // Complete the assignment for report purposes.
        for v in vars {
            assignment.entry(v).or_insert(false);
        }
        Some(assignment)
    } else {
        None
    }
}

/// Is the formula satisfiable?
pub fn satisfiable(formula: &CnfFormula) -> bool {
    solve(formula).is_some()
}

fn dpll(formula: &CnfFormula, assignment: &mut Assignment) -> bool {
    // Evaluate clauses under the current partial assignment.
    let mut unassigned: Option<Var> = None;
    loop {
        let mut all_satisfied = true;
        let mut unit: Option<Literal> = None;
        for clause in &formula.clauses {
            let mut clause_satisfied = false;
            let mut free: Vec<Literal> = Vec::new();
            for lit in &clause.0 {
                match assignment.get(&lit.var) {
                    Some(&value) => {
                        if lit.eval(value) {
                            clause_satisfied = true;
                            break;
                        }
                    }
                    None => free.push(*lit),
                }
            }
            if clause_satisfied {
                continue;
            }
            if free.is_empty() {
                return false; // conflict
            }
            all_satisfied = false;
            if free.len() == 1 {
                unit = Some(free[0]);
            }
            if unassigned.is_none() {
                unassigned = Some(free[0].var);
            }
        }
        if all_satisfied {
            return true;
        }
        match unit {
            Some(lit) => {
                assignment.insert(lit.var, !lit.negated);
                unassigned = None;
                // Re-run propagation.
            }
            None => break,
        }
    }

    let var = match unassigned {
        Some(v) => v,
        None => return true,
    };
    for value in [true, false] {
        assignment.insert(var, value);
        let snapshot = assignment.clone();
        if dpll(formula, assignment) {
            return true;
        }
        *assignment = snapshot;
        assignment.remove(&var);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{CnfFormula, Literal, Var};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(formula: &CnfFormula) -> bool {
        let vars = formula.variables();
        let n = vars.len();
        (0..(1u64 << n)).any(|mask| {
            let assignment: Assignment = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, mask & (1 << i) != 0))
                .collect();
            formula.eval(&assignment)
        })
    }

    #[test]
    fn simple_sat_and_unsat() {
        let sat = CnfFormula::from_clauses(vec![
            vec![Literal::pos(Var(1)), Literal::pos(Var(2))],
            vec![Literal::neg(Var(1))],
        ]);
        let model = solve(&sat).unwrap();
        assert!(sat.eval(&model));

        let unsat =
            CnfFormula::from_clauses(vec![vec![Literal::pos(Var(1))], vec![Literal::neg(Var(1))]]);
        assert!(solve(&unsat).is_none());
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let num_vars = rng.gen_range(1..=6);
            let num_clauses = rng.gen_range(1..=12);
            let f = CnfFormula::random_3sat(&mut rng, num_vars, num_clauses);
            assert_eq!(satisfiable(&f), brute_force(&f), "formula {f}");
            if let Some(model) = solve(&f) {
                assert!(f.eval(&model), "returned model must satisfy {f}");
            }
        }
    }
}
