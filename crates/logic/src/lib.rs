//! Reference implementations of the source problems used by the paper's lower-bound
//! reductions.
//!
//! Every hardness proof in the paper encodes one of four problems into XPath
//! satisfiability.  To *test* those encodings end-to-end we need independent solvers for
//! the source problems; this crate provides them:
//!
//! * [`cnf`] / [`dpll`] — 3SAT instances and a complete DPLL solver
//!   (Propositions 4.2/4.3, Theorems 6.6/6.9, Proposition 7.2);
//! * [`qbf`] — quantified Boolean formulas (Q3SAT) with a complete evaluator
//!   (Proposition 5.1, Theorem 6.7(1), Corollary 6.15(1), Proposition 7.3);
//! * [`tiling`] — two-player corridor tiling games with a minimax solver
//!   (Theorems 5.6 and 6.7(2)(3));
//! * [`trm`] — two-register machines with an interpreter (Theorem 5.4).

pub mod cnf;
pub mod dpll;
pub mod qbf;
pub mod tiling;
pub mod trm;

pub use cnf::{Clause, CnfFormula, Literal, Var};
pub use dpll::solve as dpll_solve;
pub use qbf::{Qbf, Quantifier};
pub use tiling::{CorridorTiling, Tile};
pub use trm::{Instruction, Register, TwoRegisterMachine};
