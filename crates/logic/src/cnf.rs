//! Propositional CNF formulas (3SAT instances).

use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A propositional variable, numbered from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// The underlying variable.
    pub var: Var,
    /// `true` when the literal is the *negation* of the variable.
    pub negated: bool,
}

impl Literal {
    /// The positive literal of a variable.
    pub fn pos(var: Var) -> Literal {
        Literal {
            var,
            negated: false,
        }
    }

    /// The negative literal of a variable.
    pub fn neg(var: Var) -> Literal {
        Literal { var, negated: true }
    }

    /// The complementary literal.
    pub fn complement(self) -> Literal {
        Literal {
            var: self.var,
            negated: !self.negated,
        }
    }

    /// Truth value of the literal under an assignment of its variable.
    pub fn eval(self, value: bool) -> bool {
        value != self.negated
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬x{}", self.var.0)
        } else {
            write!(f, "x{}", self.var.0)
        }
    }
}

/// A clause: a disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause(pub Vec<Literal>);

/// A CNF formula: a conjunction of clauses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    /// The clauses of the formula.
    pub clauses: Vec<Clause>,
}

/// A (total or partial) truth assignment.
pub type Assignment = BTreeMap<Var, bool>;

impl CnfFormula {
    /// Build a formula from clause literal lists.
    pub fn from_clauses<I, C>(clauses: I) -> CnfFormula
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Literal>,
    {
        CnfFormula {
            clauses: clauses
                .into_iter()
                .map(|c| Clause(c.into_iter().collect()))
                .collect(),
        }
    }

    /// The variables occurring in the formula, sorted.
    pub fn variables(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .clauses
            .iter()
            .flat_map(|c| c.0.iter().map(|l| l.var))
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// The number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Evaluate under a total assignment (missing variables default to `false`).
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .0
                .iter()
                .any(|lit| lit.eval(*assignment.get(&lit.var).unwrap_or(&false)))
        })
    }

    /// A uniformly random 3SAT instance with `num_vars` variables and `num_clauses`
    /// clauses of exactly three (not necessarily distinct-variable) literals.
    pub fn random_3sat<R: Rng>(rng: &mut R, num_vars: u32, num_clauses: usize) -> CnfFormula {
        assert!(num_vars >= 1);
        let clauses = (0..num_clauses).map(|_| {
            (0..3)
                .map(|_| {
                    let var = Var(rng.gen_range(1..=num_vars));
                    if rng.gen_bool(0.5) {
                        Literal::pos(var)
                    } else {
                        Literal::neg(var)
                    }
                })
                .collect::<Vec<_>>()
        });
        CnfFormula::from_clauses(clauses)
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<String> = c.0.iter().map(|l| l.to_string()).collect();
                format!("({})", lits.join(" ∨ "))
            })
            .collect();
        write!(f, "{}", rendered.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluation() {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
        let f = CnfFormula::from_clauses(vec![
            vec![Literal::pos(Var(1)), Literal::neg(Var(2))],
            vec![Literal::pos(Var(2)), Literal::pos(Var(3))],
        ]);
        let mut a = Assignment::new();
        a.insert(Var(1), true);
        a.insert(Var(2), false);
        a.insert(Var(3), true);
        assert!(f.eval(&a));
        a.insert(Var(3), false);
        assert!(!f.eval(&a));
        assert_eq!(f.variables(), vec![Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn random_instances_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = CnfFormula::random_3sat(&mut rng, 5, 12);
        assert_eq!(f.num_clauses(), 12);
        assert!(f.clauses.iter().all(|c| c.0.len() == 3));
        assert!(f.variables().iter().all(|v| v.0 >= 1 && v.0 <= 5));
    }
}
