//! Two-register machines (2RM), the undecidability source of Theorem 5.4.
//!
//! A 2RM is a numbered sequence of instructions over two natural-number registers; an
//! instantaneous description (ID) is `(state, register1, register2)`.  The halting
//! problem — does the machine reach the final ID `(f, 0, 0)` from `(0, 0, 0)` — is
//! undecidable in general.  The interpreter below runs a machine for a bounded number of
//! steps; the reduction tests use it to check that *halting* machines produce
//! satisfiable XPath encodings together with a witness tree read off the run.

use std::fmt;

/// One of the two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Register {
    /// The first register.
    R1,
    /// The second register.
    R2,
}

/// An instruction of a two-register machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `(i, rg, j)`: add 1 to `rg`, go to state `j`.
    Add {
        /// The register incremented.
        register: Register,
        /// The successor state.
        next: usize,
    },
    /// `(i, rg, j, k)`: if `rg` is zero go to `j`, otherwise subtract 1 and go to `k`.
    Sub {
        /// The register tested / decremented.
        register: Register,
        /// Successor state when the register is zero.
        if_zero: usize,
        /// Successor state when the register is positive (after decrementing).
        if_positive: usize,
    },
}

/// An instantaneous description `(state, register1, register2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Id {
    /// The current instruction index.
    pub state: usize,
    /// Contents of register 1.
    pub r1: u64,
    /// Contents of register 2.
    pub r2: u64,
}

/// A two-register machine with designated halting state.
#[derive(Debug, Clone)]
pub struct TwoRegisterMachine {
    /// The program: instruction `i` is executed in state `i`.
    pub instructions: Vec<Instruction>,
    /// The halting state `f` (no instruction is executed there).
    pub halting_state: usize,
}

/// The outcome of a bounded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The machine reached `(f, 0, 0)`; the trace of IDs (including initial and final)
    /// is returned.
    Halted(Vec<Id>),
    /// The machine reached the halting state with nonzero registers (it does not halt
    /// in the sense of the paper's convention).
    HaltedNonZero(Vec<Id>),
    /// The step budget was exhausted.
    OutOfFuel(Vec<Id>),
    /// The machine entered a state with no instruction (other than the halting state).
    Stuck(Vec<Id>),
}

impl TwoRegisterMachine {
    /// Execute one step from an ID.  Returns `None` in the halting state or on a missing
    /// instruction.
    pub fn step(&self, id: Id) -> Option<Id> {
        if id.state == self.halting_state {
            return None;
        }
        let instruction = self.instructions.get(id.state)?;
        Some(match *instruction {
            Instruction::Add { register, next } => match register {
                Register::R1 => Id {
                    state: next,
                    r1: id.r1 + 1,
                    r2: id.r2,
                },
                Register::R2 => Id {
                    state: next,
                    r1: id.r1,
                    r2: id.r2 + 1,
                },
            },
            Instruction::Sub {
                register,
                if_zero,
                if_positive,
            } => match register {
                Register::R1 => {
                    if id.r1 == 0 {
                        Id {
                            state: if_zero,
                            ..id
                        }
                    } else {
                        Id {
                            state: if_positive,
                            r1: id.r1 - 1,
                            r2: id.r2,
                        }
                    }
                }
                Register::R2 => {
                    if id.r2 == 0 {
                        Id {
                            state: if_zero,
                            ..id
                        }
                    } else {
                        Id {
                            state: if_positive,
                            r1: id.r1,
                            r2: id.r2 - 1,
                        }
                    }
                }
            },
        })
    }

    /// Run from `(0, 0, 0)` for at most `fuel` steps.
    pub fn run(&self, fuel: usize) -> RunOutcome {
        let mut trace = vec![Id {
            state: 0,
            r1: 0,
            r2: 0,
        }];
        for _ in 0..fuel {
            let current = *trace.last().expect("trace is nonempty");
            if current.state == self.halting_state {
                return if current.r1 == 0 && current.r2 == 0 {
                    RunOutcome::Halted(trace)
                } else {
                    RunOutcome::HaltedNonZero(trace)
                };
            }
            match self.step(current) {
                Some(next) => trace.push(next),
                None => return RunOutcome::Stuck(trace),
            }
        }
        let last = *trace.last().expect("trace is nonempty");
        if last.state == self.halting_state && last.r1 == 0 && last.r2 == 0 {
            RunOutcome::Halted(trace)
        } else {
            RunOutcome::OutOfFuel(trace)
        }
    }

    /// A tiny machine that increments register 1 `k` times, decrements it back to zero
    /// and halts — a convenient halting specimen for the reduction tests.
    pub fn bump_and_drain(k: usize) -> TwoRegisterMachine {
        // States 0..k-1: add; states k..2k-1: subtract; state 2k: halt.
        let mut instructions = Vec::new();
        for i in 0..k {
            instructions.push(Instruction::Add {
                register: Register::R1,
                next: i + 1,
            });
        }
        for i in 0..k {
            instructions.push(Instruction::Sub {
                register: Register::R1,
                if_zero: 2 * k, // cannot actually be zero here, defensive
                if_positive: k + i + 1,
            });
        }
        TwoRegisterMachine {
            instructions,
            halting_state: 2 * k,
        }
    }

    /// A machine that never halts (it increments register 1 forever).
    pub fn diverging() -> TwoRegisterMachine {
        TwoRegisterMachine {
            instructions: vec![Instruction::Add {
                register: Register::R1,
                next: 0,
            }],
            halting_state: 1,
        }
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.state, self.r1, self.r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_drain_halts_with_zero_registers() {
        let machine = TwoRegisterMachine::bump_and_drain(3);
        match machine.run(100) {
            RunOutcome::Halted(trace) => {
                assert_eq!(
                    trace.first().copied(),
                    Some(Id {
                        state: 0,
                        r1: 0,
                        r2: 0
                    })
                );
                let last = *trace.last().unwrap();
                assert_eq!(last.state, machine.halting_state);
                assert_eq!((last.r1, last.r2), (0, 0));
                // The register climbs to 3 in the middle of the run.
                assert!(trace.iter().any(|id| id.r1 == 3));
            }
            other => panic!("expected halt, got {other:?}"),
        }
    }

    #[test]
    fn diverging_machine_runs_out_of_fuel() {
        let machine = TwoRegisterMachine::diverging();
        assert!(matches!(machine.run(50), RunOutcome::OutOfFuel(_)));
    }

    #[test]
    fn subtraction_branches_on_zero() {
        let machine = TwoRegisterMachine {
            instructions: vec![Instruction::Sub {
                register: Register::R2,
                if_zero: 1,
                if_positive: 0,
            }],
            halting_state: 1,
        };
        match machine.run(10) {
            RunOutcome::Halted(trace) => assert_eq!(trace.len(), 2),
            other => panic!("expected halt, got {other:?}"),
        }
    }
}
