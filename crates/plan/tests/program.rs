//! Targeted compile/VM tests: fragment boundaries, the joint-cover soundness cases,
//! and verdict+witness agreement with the AST solver on hand-built instances.

use xpsat_core::{Budget, Satisfiability, Solver, SolverConfig};
use xpsat_dtd::{parse_dtd, DtdArtifacts};
use xpsat_plan::{canonicalize, compile, compile_with_reason, vm, BailReason, CompileLimits};
use xpsat_xpath::parse_path;

fn artifacts(dtd: &str) -> DtdArtifacts {
    DtdArtifacts::build(&parse_dtd(dtd).expect("test DTD parses"))
}

/// Compile and decide through the VM; panics if the query is outside the compiled
/// fragment (these tests pick queries that must compile).
fn vm_decide(a: &DtdArtifacts, query: &str) -> xpsat_core::Decision {
    let canon = canonicalize(&parse_path(query).expect("query parses"));
    let program = compile(a, &canon, &CompileLimits::default())
        .unwrap_or_else(|| panic!("query {query} should compile"));
    let mut scratch = vm::Scratch::new();
    vm::decide(&program, a, &mut scratch, &Budget::unlimited())
        .expect("VM decide should not fall back")
}

fn assert_agrees(a: &DtdArtifacts, query: &str) {
    let d = vm_decide(a, query);
    let solver = Solver::new(SolverConfig::default());
    let s = solver.decide_with_artifacts(a, &parse_path(query).unwrap());
    assert_eq!(
        d.result.is_satisfiable(),
        s.result.is_satisfiable(),
        "VM and solver disagree on {query}: vm={:?} solver={:?} ({})",
        d.result.is_satisfiable(),
        s.result.is_satisfiable(),
        s.engine,
    );
    if let Satisfiability::Satisfiable(doc) = &d.result {
        xpsat_core::sat::verify_witness(doc, a.dtd(), &parse_path(query).unwrap())
            .expect("VM witness verifies");
    }
}

#[test]
fn joint_cover_blocks_demand_spine_conflict() {
    // The critical soundness case: a's content model offers (b, c) or d but never all
    // three, so `a[b and c]/d` is unsatisfiable even though each piece alone is fine.
    let a = artifacts("r -> a; a -> (b, c) | d; b -> #; c -> #; d -> #;");
    assert_agrees(&a, "a[b and c]");
    assert_agrees(&a, "a/d");
    assert_agrees(&a, "a[b and c]/d");
    assert_eq!(
        vm_decide(&a, "a[b and c]/d").result.is_satisfiable(),
        Some(false)
    );
}

#[test]
fn joint_cover_allows_compatible_demands() {
    let a = artifacts("r -> a; a -> b, c, d; b -> #; c -> #; d -> #;");
    let d = vm_decide(&a, "a[b and c]/d");
    assert_eq!(d.result.is_satisfiable(), Some(true));
    assert_agrees(&a, "a[b and c]/d");
}

#[test]
fn demand_rest_feasibility_prunes() {
    // b exists but can never have an x child, so the qualifier is unsatisfiable.
    let a = artifacts("r -> a; a -> b, c; b -> #; c -> #;");
    assert_agrees(&a, "a[b/x]");
    assert_eq!(vm_decide(&a, "a[b/x]").result.is_satisfiable(), Some(false));
    assert_agrees(&a, "a[b]");
}

#[test]
fn nested_qualifiers_realise() {
    let a = artifacts("r -> a; a -> b, d; b -> c*; c -> #; d -> #;");
    assert_agrees(&a, "a[b[c]]/d");
    assert_agrees(&a, "a[b/c and d]");
}

#[test]
fn wildcard_desc_union_cases() {
    let a = artifacts("r -> a | b; a -> a | c; b -> #; c -> #;");
    assert_agrees(&a, "*/c");
    assert_agrees(&a, "**/c");
    assert_agrees(&a, "a/a/c | b");
    assert_agrees(&a, "b/c"); // unsat: b has no children
    assert_agrees(&a, "(a|b)[c]");
}

#[test]
fn label_tests_intersect() {
    let a = artifacts("r -> a; a -> b; b -> #;");
    assert_agrees(&a, "a[lab() = a]");
    assert_agrees(&a, "a[lab() = b]"); // unsat: the a node is not labelled b
}

#[test]
fn undeclared_labels_are_unsat_not_errors() {
    let a = artifacts("r -> a; a -> #;");
    assert_agrees(&a, "zzz");
    assert_agrees(&a, "a[zzz]");
    assert_eq!(vm_decide(&a, "a[zzz]").result.is_satisfiable(), Some(false));
}

#[test]
fn multiplicity_interactions_bail_to_the_solver() {
    let a = artifacts("r -> a; a -> b; b -> c?; c -> #;");
    let limits = CompileLimits::default();
    // Spine label collides with a demand label: one b child cannot be counted twice.
    let canon = canonicalize(&parse_path("a[b]/b").unwrap());
    assert!(compile(&a, &canon, &limits).is_none());
    // Two demands on the same label likewise.
    let canon = canonicalize(&parse_path("a[b/c and b]").unwrap());
    assert!(compile(&a, &canon, &limits).is_none());
}

#[test]
fn out_of_fragment_queries_do_not_compile() {
    let a = artifacts("r -> a; a -> b?; b -> #;");
    let limits = CompileLimits::default();
    for (q, reason) in [
        ("..", BailReason::UpwardAxis),
        ("^*/a", BailReason::UpwardAxis),
        ("a[@x = \"1\"]", BailReason::DataValue),
        // Negation of a whole path (not a single child label) stays on the AST path.
        ("a[not(b/c)]", BailReason::Negation),
        // A sibling hop with nothing to anchor it.
        (">", BailReason::Sibling),
        // A sibling hop leaving the qualified node crosses into the enclosing word.
        ("a[b/>]", BailReason::Sibling),
    ] {
        let canon = canonicalize(&parse_path(q).unwrap());
        assert_eq!(
            compile_with_reason(&a, &canon, &limits).err(),
            Some(reason),
            "{q} should be outside the compiled fragment"
        );
        assert!(compile(&a, &canon, &limits).is_none());
    }
}

#[test]
fn local_negation_needs_a_duplicate_free_dtd() {
    // `a -> (b, b?)` repeats `b`, so the Glushkov automaton is not deterministic
    // enough for complement-style avoid sets; the compiler must bail.
    let dup = artifacts("r -> a; a -> b, b?; b -> #;");
    let canon = canonicalize(&parse_path("a[not(b)]").unwrap());
    assert_eq!(
        compile_with_reason(&dup, &canon, &CompileLimits::default()).err(),
        Some(BailReason::Negation),
    );
    // On a duplicate-free DTD the same query compiles and agrees with the solver.
    let df = artifacts("r -> a; a -> b | c; b -> #; c -> #;");
    assert_agrees(&df, "a[not(b)]");
    assert_eq!(
        vm_decide(&df, "a[not(b)]").result.is_satisfiable(),
        Some(true)
    );
    // `a -> b, c` forces a `b` child: not(b) is unsatisfiable there.
    let forced = artifacts("r -> a; a -> b, c; b -> #; c -> #;");
    assert_agrees(&forced, "a[not(b)]");
    assert_eq!(
        vm_decide(&forced, "a[not(b)]").result.is_satisfiable(),
        Some(false)
    );
    // Label-test negation is a plain complement mask: allowed on any DTD.
    assert_agrees(&dup, "*[not(lab() = a)]");
}

#[test]
fn disjunctive_qualifiers_compile_by_expansion() {
    let a = artifacts("r -> a; a -> b | c; b -> d?; c -> #; d -> #;");
    for q in [
        "a[b or c]",
        "a[b or lab() = a]",
        "a[b/d or c]",
        "a[(b | c)]",
        "a[b or c][lab() = a]",
    ] {
        assert_agrees(&a, q);
        assert_eq!(vm_decide(&a, q).result.is_satisfiable(), Some(true), "{q}");
    }
    // Both disjuncts infeasible: UNSAT through the VM, not a bail.
    assert_agrees(&a, "a[zzz or yyy]");
    assert_eq!(
        vm_decide(&a, "a[zzz or yyy]").result.is_satisfiable(),
        Some(false)
    );
}

#[test]
fn sibling_chains_compile_to_tables() {
    let a = artifacts("r -> a; a -> b, c, d; b -> #; c -> #; d -> #;");
    for (q, sat) in [
        ("a/b/>", true),      // c follows b
        ("a/b/>/>", true),    // d two after b
        ("a/b/>/>/>", false), // nothing three after b
        ("a/b/>>[lab() = d]", true),
        ("a/d/<<[lab() = c]", true),
        ("a/d/<", true),
        ("a/b/<", false), // nothing precedes b
    ] {
        assert_agrees(&a, q);
        assert_eq!(vm_decide(&a, q).result.is_satisfiable(), Some(sat), "{q}");
    }
    // Chains with demands pending at the anchor stay on the AST path.
    let canon = canonicalize(&parse_path("a[c]/b/>").unwrap());
    assert_eq!(
        compile_with_reason(&a, &canon, &CompileLimits::default()).err(),
        Some(BailReason::Sibling),
    );
}

#[test]
fn vacuous_dtd_compiles_to_const_unsat() {
    // The root type never terminates, so no document conforms at all.
    let a = artifacts("r -> r;");
    assert!(a.compiled().is_none());
    let canon = canonicalize(&parse_path("a").unwrap());
    let program = compile(&a, &canon, &CompileLimits::default()).expect("const program");
    assert!(program.const_unsat);
    let mut scratch = vm::Scratch::new();
    let d = vm::decide(&program, &a, &mut scratch, &Budget::unlimited()).unwrap();
    assert_eq!(d.result.is_satisfiable(), Some(false));
}

#[test]
fn budget_exhaustion_reports_unknown() {
    let a = artifacts("r -> a; a -> b; b -> #;");
    let canon = canonicalize(&parse_path("a/b").unwrap());
    let program = compile(&a, &canon, &CompileLimits::default()).unwrap();
    let mut scratch = vm::Scratch::new();
    let d = vm::decide(&program, &a, &mut scratch, &Budget::steps(1)).unwrap();
    assert_eq!(d.result.is_satisfiable(), None);
    assert!(d.exhausted.is_some());
}

#[test]
fn program_is_rejected_against_other_artifacts() {
    let a = artifacts("r -> a; a -> #;");
    let b = artifacts("r -> b; b -> #;");
    let canon = canonicalize(&parse_path("a").unwrap());
    let program = compile(&a, &canon, &CompileLimits::default()).unwrap();
    let mut scratch = vm::Scratch::new();
    assert!(vm::decide(&program, &b, &mut scratch, &Budget::unlimited()).is_none());
}

#[test]
fn canonical_spellings_share_a_program_shape() {
    let a = artifacts("r -> a; a -> b, c; b -> #; c -> #;");
    let limits = CompileLimits::default();
    let p1 = compile(
        &a,
        &canonicalize(&parse_path("a[b and c]").unwrap()),
        &limits,
    )
    .unwrap();
    let p2 = compile(&a, &canonicalize(&parse_path("a[c][b]").unwrap()), &limits).unwrap();
    assert_eq!(p1.ops, p2.ops);
    assert_eq!(p1.canon, p2.canon);
}
