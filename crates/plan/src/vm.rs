//! Replaying a [`DecisionProgram`]: a handful of bitset ops, fuel-metered, with no
//! allocation once the [`Scratch`] registers are warm.

use crate::program::{DecisionProgram, Op};
use crate::witness;
use xpsat_automata::BitSet;
use xpsat_core::{Budget, BudgetMeter, Decision, EngineKind, Exhausted, Satisfiability};
use xpsat_dtd::{DtdArtifacts, Sym};

/// Reusable register file.  Replaying the same program shape reuses the allocation;
/// a different shape reallocates once.
#[derive(Debug, Default)]
pub struct Scratch {
    regs: Vec<BitSet>,
    num_elements: usize,
}

impl Scratch {
    pub fn new() -> Scratch {
        Scratch::default()
    }

    fn prepare(&mut self, num_regs: usize, num_elements: usize) {
        if self.num_elements != num_elements || self.regs.len() < num_regs {
            self.regs = (0..num_regs)
                .map(|_| BitSet::with_capacity(num_elements))
                .collect();
            self.num_elements = num_elements;
        } else {
            for r in &mut self.regs[..num_regs] {
                r.clear();
            }
        }
    }
}

/// Replay `program` and report whether the final image is nonempty (= satisfiable).
///
/// Fuel: one unit per op plus one per source type expanded by the set-valued steps,
/// drawn from `meter` so VM work shares the caller's [`Budget`] with everything else.
pub fn run(
    program: &DecisionProgram,
    artifacts: &DtdArtifacts,
    scratch: &mut Scratch,
    meter: &BudgetMeter,
) -> Result<bool, Exhausted> {
    if program.const_unsat {
        return Ok(false);
    }
    let compiled = artifacts
        .compiled()
        .expect("non-const programs are compiled against a compilable DTD");
    let graph = compiled.graph();
    scratch.prepare(program.num_regs(), program.num_elements);
    let regs = &mut scratch.regs;
    for op in &program.ops {
        meter.spend(1)?;
        match *op {
            Op::Root { dst } => {
                regs[dst as usize].insert(compiled.root().index());
            }
            Op::Empty { .. } => {}
            Op::Child { src, dst, sym, ok } => {
                if regs[src as usize].intersects(&program.masks[ok as usize]) {
                    regs[dst as usize].insert(sym.index());
                }
            }
            Op::AnyChild { src, dst } => {
                let (left, right) = regs.split_at_mut(dst as usize);
                let d = &mut right[0];
                let mut n = 0u64;
                for t in left[src as usize].iter() {
                    d.union_with(graph.succ_bits(Sym::from_index(t)));
                    n += 1;
                }
                meter.spend(n)?;
            }
            Op::DescOrSelf { src, dst } => {
                let (left, right) = regs.split_at_mut(dst as usize);
                let d = &mut right[0];
                d.union_with(&left[src as usize]);
                let mut n = 0u64;
                for t in left[src as usize].iter() {
                    d.union_with(graph.reach_bits(Sym::from_index(t)));
                    n += 1;
                }
                meter.spend(n)?;
            }
            Op::Intersect { src, dst, mask } => {
                let (left, right) = regs.split_at_mut(dst as usize);
                right[0].union_with(&left[src as usize]);
                right[0].intersect_with(&program.masks[mask as usize]);
            }
            Op::Union { a, b, dst } => {
                let (left, right) = regs.split_at_mut(dst as usize);
                right[0].union_with(&left[a as usize]);
                right[0].union_with(&left[b as usize]);
            }
            Op::Table { src, dst, table } => {
                let (left, right) = regs.split_at_mut(dst as usize);
                let d = &mut right[0];
                let rows = &program.tables[table as usize];
                let mut n = 0u64;
                for t in left[src as usize].iter() {
                    d.union_with(&rows[t]);
                    n += 1;
                }
                meter.spend(n)?;
            }
        }
    }
    Ok(!regs[program.out as usize].is_empty())
}

/// Decide through the compiled program: replay, then realise a witness on SAT.
///
/// Returns `None` when the program does not match `artifacts` or when witness
/// realisation fails — the caller falls back to the AST solver.  Budget exhaustion
/// returns the usual `Unknown`-with-`exhausted` decision.
pub fn decide(
    program: &DecisionProgram,
    artifacts: &DtdArtifacts,
    scratch: &mut Scratch,
    budget: &Budget,
) -> Option<Decision> {
    if program.dtd_uid != artifacts.uid() {
        return None;
    }
    let meter = budget.meter();
    match run(program, artifacts, scratch, &meter) {
        Err(cause) => Some(Decision {
            result: Satisfiability::Unknown,
            engine: EngineKind::CompiledVm,
            complete: false,
            exhausted: Some(cause),
        }),
        Ok(false) => Some(Decision {
            result: Satisfiability::Unsatisfiable,
            engine: EngineKind::CompiledVm,
            complete: true,
            exhausted: None,
        }),
        Ok(true) => {
            let doc = witness::build(program, artifacts)?;
            Some(Decision {
                result: Satisfiability::Satisfiable(doc),
                engine: EngineKind::CompiledVm,
                complete: true,
                exhausted: None,
            })
        }
    }
}
