//! Lowering a canonical query × [`DtdArtifacts`] into a [`DecisionProgram`].
//!
//! The compiler specialises the paper's downward reachability procedure (Theorems
//! 4.1/4.4) to one `(query, DTD)` pair.  The program's registers hold sets of element
//! types the spine node can have; qualifier conjuncts become *pending demands* — child
//! labels that must occur in the node's children word — which the **next** child step
//! consumes through a joint content-model cover mask (`{t : L(P(t))` has a word
//! containing the spine label and one occurrence of every demand label`}`).  The joint
//! check is what keeps `a[b and c]/d` sound under `a → (b,c)|d`: each demand needs its
//! own child occurrence *in the same word* as the spine child.
//!
//! Beyond the downward fragment, the compiler conditions on the
//! [`DtdProperties`](xpsat_dtd::DtdProperties) of the target DTD — the
//! Ishihara–Suzuki–Hashimoto (arXiv 1308.0769) analysis that keeps these features
//! PTIME when the *schema* is well-behaved:
//!
//! * **disjunctive qualifiers** (`a[q1 or q2]`, `a[p1|p2]`) distribute into
//!   alternative continuations whose images join by sorted union — exact for any
//!   DTD; *disjunction-capsuled* DTDs get a larger expansion budget because a
//!   disjunct never commits to a concatenation;
//! * **local qualifier negation** (`a[not(b)]`) becomes an *avoid set* threaded
//!   next to the pending demands and resolved by the same cover search over the
//!   alphabet-restricted content model — gated on *duplicate-free* DTDs, where
//!   the Glushkov automaton is deterministic and the restriction is a DFA
//!   complement (`not(lab() = x)` needs no gate: it is a plain complement mask);
//! * **sibling chains** (`a/>`, `a/>*/>` …) compile whole maximal hop runs into
//!   one table-driven op: per parent type, a BFS of the content-model automaton
//!   against a [`SibPattern`] window yields the set of types reachable at the
//!   chain's end (see [`xpsat_automata::sib_pattern_symbols`]).
//!
//! The compiler still bails — now with a counted [`BailReason`] — whenever the
//! discipline cannot guarantee exactness cheaply:
//!
//! * upward axes and data-value (attribute) qualifiers;
//! * negation that is not a single child label or label test (and any local
//!   negation when the DTD is not duplicate-free);
//! * a qualifier path not starting with a concrete child label, or sibling hops
//!   with demands pending at the anchor;
//! * a spine step whose label collides with a pending demand, or two demands on
//!   the same label (one child could then serve two roles — a multiplicity
//!   interaction the cover mask cannot see);
//! * wildcard/descendant spine steps with demands pending, union branches that
//!   would carry pending demands past the join (except in tail position), and
//!   disjunction expansions past the budget;
//! * compile-work or program-size limits exceeded (hostile inputs).
//!
//! Within the accepted fragment the lowering is exact: demands are pre-filtered by
//! *type-level feasibility* of their remaining path (computed by the same analysis,
//! recursively), and subtrees hanging off distinct children realise independently
//! under a DTD, which is precisely the paper's `Tree(p, D)` argument.

use crate::canon::path_is_trivial;
use crate::opt::optimize;
use crate::program::{DecisionProgram, MaskId, Op, Reg, TableId};
use std::collections::HashMap;
use xpsat_automata::{
    sib_pattern_symbols, word_with_multiplicities, BitSet, CoverDemand, SibPattern,
};
use xpsat_dtd::{CompiledDtd, DtdArtifacts, DtdProperties, Sym};
use xpsat_xpath::{Features, Path, Qualifier};

/// Bounds on compile-time work, so hostile queries degrade to the AST path instead of
/// stalling the compiler.
#[derive(Debug, Clone)]
pub struct CompileLimits {
    /// Maximum instructions (and registers) a program may have.
    pub max_ops: usize,
    /// Maximum pending demands at one spine position (cover BFS cost grows with it).
    pub max_demands: usize,
    /// Abstract work budget for feasibility analysis (≈ automaton states visited).
    pub max_work: u64,
    /// Maximum alternative continuations created by distributing disjunctive
    /// qualifiers (multiplied for disjunction-capsuled DTDs, where expansion is
    /// structurally cheap).
    pub max_or_expansions: usize,
}

impl Default for CompileLimits {
    fn default() -> CompileLimits {
        CompileLimits {
            max_ops: 1024,
            max_demands: 8,
            max_work: 8_000_000,
            max_or_expansions: 24,
        }
    }
}

impl CompileLimits {
    /// The limits actually applied against a DTD with the given properties.  Both
    /// the compiler and the witness realiser use this, so their bail behaviour
    /// cannot diverge.
    pub fn effective_for(&self, props: &DtdProperties) -> CompileLimits {
        let mut l = self.clone();
        if props.disjunction_capsuled {
            l.max_or_expansions = l.max_or_expansions.saturating_mul(4);
        }
        l
    }
}

/// Why a compile left the fragment (counted by the workspace so operators can see
/// what keeps queries on the AST path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BailReason {
    /// Upward axes (`..`, ancestor-or-self) anywhere in the query.
    UpwardAxis,
    /// Attribute comparisons or joins (data values).
    DataValue,
    /// Negation beyond a single child label / label test, or local negation
    /// against a DTD that is not duplicate-free.
    Negation,
    /// Disjunction expansion budget exceeded.
    Disjunction,
    /// Sibling hops in an unsupported position (no anchor, mixed directions, or
    /// demands pending at the anchor).
    Sibling,
    /// A qualifier path not starting with a concrete child label, or a wildcard /
    /// descendant step with demands pending.
    QualifierShape,
    /// A demand label colliding with the spine label or another demand.
    DemandCollision,
    /// Too many pending demands at one spine position.
    DemandLimit,
    /// Program size (ops/masks/tables) limit hit.
    ProgramSize,
    /// Analysis work budget exhausted.
    WorkBudget,
}

impl BailReason {
    /// Every reason, in stable order (indexes the workspace counters).
    pub const ALL: [BailReason; 10] = [
        BailReason::UpwardAxis,
        BailReason::DataValue,
        BailReason::Negation,
        BailReason::Disjunction,
        BailReason::Sibling,
        BailReason::QualifierShape,
        BailReason::DemandCollision,
        BailReason::DemandLimit,
        BailReason::ProgramSize,
        BailReason::WorkBudget,
    ];

    /// Stable slug used by stats and the protocol.
    pub fn as_str(self) -> &'static str {
        match self {
            BailReason::UpwardAxis => "upward_axis",
            BailReason::DataValue => "data_value",
            BailReason::Negation => "negation",
            BailReason::Disjunction => "disjunction",
            BailReason::Sibling => "sibling",
            BailReason::QualifierShape => "qualifier_shape",
            BailReason::DemandCollision => "demand_collision",
            BailReason::DemandLimit => "demand_limit",
            BailReason::ProgramSize => "program_size",
            BailReason::WorkBudget => "work_budget",
        }
    }

    /// Position of this reason in [`BailReason::ALL`].
    pub fn index(self) -> usize {
        BailReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("every reason is listed")
    }
}

/// One element of the flattened step stream.
#[derive(Debug, Clone)]
pub(crate) enum Atom<'a> {
    /// A single spine step: `Label`, `Wildcard`, `DescendantOrSelf` or a sibling hop.
    Step(&'a Path),
    /// A child step to an already-resolved element type (used by witness chains).
    Sym(Sym),
    /// A union of alternative continuations, each itself flattened.
    Branch(Vec<Vec<Atom<'a>>>),
    /// A filter: the flattened conjuncts applying at the current position.
    Qual(Vec<&'a Qualifier>),
    /// A filter demanding one path, given directly as flattened atoms (produced
    /// when distributing a union inside a qualifier path).
    QualAtoms(Vec<Atom<'a>>),
}

/// Flatten `p` into the atom stream, or `None` when it uses upward axes.
pub(crate) fn flatten(p: &Path) -> Option<Vec<Atom<'_>>> {
    let mut out = Vec::new();
    flatten_into(p, &mut out)?;
    Some(out)
}

fn flatten_into<'a>(p: &'a Path, out: &mut Vec<Atom<'a>>) -> Option<()> {
    match p {
        Path::Empty => Some(()),
        Path::Seq(a, b) => {
            flatten_into(a, out)?;
            flatten_into(b, out)
        }
        Path::Label(_)
        | Path::Wildcard
        | Path::DescendantOrSelf
        | Path::NextSibling
        | Path::FollowingSiblingOrSelf
        | Path::PrevSibling
        | Path::PrecedingSiblingOrSelf => {
            out.push(Atom::Step(p));
            Some(())
        }
        Path::Union(_, _) => {
            let mut branches = Vec::new();
            collect_union(p, &mut branches);
            let mut flat = Vec::with_capacity(branches.len());
            for b in branches {
                flat.push(flatten(b)?);
            }
            out.push(Atom::Branch(flat));
            Some(())
        }
        Path::Filter(base, q) => {
            flatten_into(base, out)?;
            let mut conjs = Vec::new();
            collect_and(q, &mut conjs);
            out.push(Atom::Qual(conjs));
            Some(())
        }
        Path::Parent | Path::AncestorOrSelf => None,
    }
}

fn collect_union<'a>(p: &'a Path, out: &mut Vec<&'a Path>) {
    match p {
        Path::Union(a, b) => {
            collect_union(a, out);
            collect_union(b, out);
        }
        other => out.push(other),
    }
}

fn collect_and<'a>(q: &'a Qualifier, out: &mut Vec<&'a Qualifier>) {
    match q {
        Qualifier::And(a, b) => {
            collect_and(a, out);
            collect_and(b, out);
        }
        other => out.push(other),
    }
}

fn collect_or<'a>(q: &'a Qualifier, out: &mut Vec<&'a Qualifier>) {
    match q {
        Qualifier::Or(a, b) => {
            collect_or(a, out);
            collect_or(b, out);
        }
        other => out.push(other),
    }
}

/// What one qualifier conjunct contributes at a spine position.
pub(crate) enum Conj<'a> {
    /// Trivially true; contributes nothing.
    True,
    /// Unsatisfiable; the position's image is empty.
    Dead,
    /// Restrict the position to one element type (a label test).
    Restrict(Sym),
    /// Exclude one element type (`not(lab() = x)`; complement mask).
    Exclude(Sym),
    /// Demand a child with this label; the remaining qualifier atoms (already
    /// verified type-feasible) drive witness realisation.
    Pend(Sym, Vec<Atom<'a>>),
    /// Forbid any child with this label (`not(b)`; duplicate-free DTDs only).
    Avoid(Sym),
    /// A disjunctive qualifier: alternative pseudo-atom prefixes, each a full
    /// continuation of the current spine position.
    Expand(Vec<Vec<Atom<'a>>>),
}

/// A maximal run of sibling hops after an anchor child step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChainSpec {
    /// Atoms consumed by the hops (not counting the anchor).
    pub(crate) consumed: usize,
    /// `<`/`<*` (towards earlier siblings) instead of `>`/`>*`.
    backward: bool,
    /// Number of exact single-position hops.
    gap: usize,
    /// Whether any or-self hop allows extra distance.
    flexible: bool,
}

/// The sibling run starting at `atoms`, if any.  `Some(Err(()))` = hops present
/// but mixing directions (unsupported).
pub(crate) fn sibling_chain(atoms: &[Atom]) -> Option<Result<ChainSpec, ()>> {
    let mut consumed = 0;
    let mut fwd = 0usize;
    let mut bwd = 0usize;
    let mut gap = 0usize;
    let mut flexible = false;
    for atom in atoms {
        let Atom::Step(step) = atom else { break };
        match step {
            Path::NextSibling => {
                fwd += 1;
                gap += 1;
            }
            Path::FollowingSiblingOrSelf => {
                fwd += 1;
                flexible = true;
            }
            Path::PrevSibling => {
                bwd += 1;
                gap += 1;
            }
            Path::PrecedingSiblingOrSelf => {
                bwd += 1;
                flexible = true;
            }
            _ => break,
        }
        consumed += 1;
    }
    if consumed == 0 {
        return None;
    }
    if fwd > 0 && bwd > 0 {
        return Some(Err(()));
    }
    Some(Ok(ChainSpec {
        consumed,
        backward: bwd > 0,
        gap,
        flexible,
    }))
}

/// Memo key for a joint cover query: (spine child label, sorted pending demand
/// labels, sorted avoid labels).
type CoverKey = (Option<Sym>, Vec<Sym>, Vec<Sym>);

/// Shared feasibility analysis: pure bitset images of atom streams, memoised joint
/// cover masks, and a work budget.  Used by the compiler (to build `ok` masks and
/// pre-filter demands) and by the witness realiser (to steer choices).  The first
/// reason a bail (`None`) happened is recorded for the workspace counters.
pub(crate) struct Analysis<'a> {
    pub(crate) compiled: &'a CompiledDtd,
    limits: CompileLimits,
    work: u64,
    or_expansions: usize,
    bail: Option<BailReason>,
    cover_memo: HashMap<CoverKey, BitSet>,
}

impl<'a> Analysis<'a> {
    pub(crate) fn new(compiled: &'a CompiledDtd, limits: CompileLimits) -> Analysis<'a> {
        Analysis {
            compiled,
            limits,
            work: 0,
            or_expansions: 0,
            bail: None,
            cover_memo: HashMap::new(),
        }
    }

    /// Record the *first* bail reason and return `None` (the whole compile fails).
    fn fail<T>(&mut self, reason: BailReason) -> Option<T> {
        if self.bail.is_none() {
            self.bail = Some(reason);
        }
        None
    }

    pub(crate) fn bail_reason(&self) -> BailReason {
        self.bail.unwrap_or(BailReason::QualifierShape)
    }

    fn spend(&mut self, n: u64) -> Option<()> {
        self.work = self.work.saturating_add(n);
        if self.work > self.limits.max_work {
            return self.fail(BailReason::WorkBudget);
        }
        Some(())
    }

    fn props(&self) -> &DtdProperties {
        self.compiled.properties()
    }

    fn empty(&self) -> BitSet {
        BitSet::with_capacity(self.compiled.num_elements())
    }

    pub(crate) fn singleton(&self, s: Sym) -> BitSet {
        let mut b = self.empty();
        b.insert(s.index());
        b
    }

    /// All element types except `s` (the complement mask of a label test).
    fn complement_singleton(&self, s: Sym) -> BitSet {
        let mut b = self.empty();
        for t in self.compiled.elements() {
            if t != s {
                b.insert(t.index());
            }
        }
        b
    }

    /// The allowed alphabet under an avoid set (all element types minus `avoid`).
    fn allowed_set(&self, avoid: &[Sym]) -> std::collections::BTreeSet<Sym> {
        self.compiled
            .elements()
            .filter(|t| !avoid.contains(t))
            .collect()
    }

    /// The types whose content model has a word containing one occurrence of `base`
    /// (when present) plus one occurrence of every demand label, all at distinct
    /// positions, using no symbol from `avoid`.  Demands are pairwise distinct and
    /// distinct from `base` (enforced by the callers' bail rules), so distinctness
    /// is automatic.
    pub(crate) fn cover_mask(
        &mut self,
        base: Option<Sym>,
        demands: &[Sym],
        avoid: &[Sym],
    ) -> Option<BitSet> {
        if base.is_some_and(|s| avoid.contains(&s)) || demands.iter().any(|d| avoid.contains(d)) {
            return Some(self.empty()); // a required child is forbidden: definite empty
        }
        let mut key: Vec<Sym> = demands.to_vec();
        key.sort_unstable();
        let mut akey: Vec<Sym> = avoid.to_vec();
        akey.sort_unstable();
        akey.dedup();
        if let Some(m) = self.cover_memo.get(&(base, key.clone(), akey.clone())) {
            return Some(m.clone());
        }
        let mut dem = CoverDemand::none();
        if let Some(s) = base {
            dem = dem.require(s, 1);
        }
        for &d in &key {
            dem = dem.require(d, 1);
        }
        if !akey.is_empty() {
            dem = dem.restrict_to(self.allowed_set(&akey));
        }
        let mut mask = self.empty();
        let graph = self.compiled.graph();
        for t in self.compiled.elements() {
            // Every required label must be a successor of `t` at all; edges of the
            // pruned graph mean "occurs syntactically", which settles the base-only
            // and no-demand cases (without avoid) without touching the automaton.
            let succ = graph.succ_bits(t);
            let present = base.is_none_or(|s| succ.contains(s.index()))
                && key.iter().all(|d| succ.contains(d.index()));
            if !present {
                continue;
            }
            if key.is_empty() && akey.is_empty() {
                mask.insert(t.index());
                continue;
            }
            self.spend(self.compiled.automaton(t).num_states() as u64 + 1)?;
            if word_with_multiplicities(self.compiled.automaton(t), &dem) {
                mask.insert(t.index());
            }
        }
        self.cover_memo.insert((base, key, akey), mask.clone());
        Some(mask)
    }

    /// Image of a child step to `s` under pending demands and an avoid set.
    fn child_image(
        &mut self,
        cur: &BitSet,
        s: Sym,
        pending: &[Sym],
        avoid: &[Sym],
    ) -> Option<BitSet> {
        if pending.contains(&s) {
            return self.fail(BailReason::DemandCollision);
        }
        if avoid.contains(&s) {
            return Some(self.empty()); // the spine child itself is forbidden
        }
        let ok = self.cover_mask(Some(s), pending, avoid)?;
        let mut dst = self.empty();
        if cur.intersects(&ok) {
            dst.insert(s.index());
        }
        Some(dst)
    }

    /// The [`SibPattern`] of a chain from `anchor` (None = wildcard anchor), under
    /// the current avoid set.
    pub(crate) fn chain_pattern(
        &self,
        anchor: Option<Sym>,
        spec: ChainSpec,
        avoid: &[Sym],
    ) -> SibPattern<Sym> {
        let allowed = (!avoid.is_empty()).then(|| self.allowed_set(avoid));
        if spec.backward {
            SibPattern {
                left: None,
                right: anchor,
                gap: spec.gap,
                flexible: spec.flexible,
                capture_left: true,
                allowed,
            }
        } else {
            SibPattern {
                left: anchor,
                right: None,
                gap: spec.gap,
                flexible: spec.flexible,
                capture_left: false,
                allowed,
            }
        }
    }

    /// Types reachable at the captured end of the chain from parent type `t`.
    fn chain_row(&mut self, t: Sym, pat: &SibPattern<Sym>) -> Option<BitSet> {
        let nfa = self.compiled.automaton(t);
        self.spend((nfa.num_states() as u64 + 1) * (pat.gap as u64 + 3))?;
        let nfa = self.compiled.automaton(t);
        let mut row = self.empty();
        for s in sib_pattern_symbols(nfa, pat) {
            row.insert(s.index());
        }
        Some(row)
    }

    /// Union of chain rows over the current register (the image-side mirror of
    /// [`Op::Table`]).
    fn chain_targets(&mut self, cur: &BitSet, pat: &SibPattern<Sym>) -> Option<BitSet> {
        let mut dst = self.empty();
        let types: Vec<Sym> = cur.iter().map(Sym::from_index).collect();
        for t in types {
            let row = self.chain_row(t, pat)?;
            dst.union_with(&row);
        }
        Some(dst)
    }

    /// Charge one disjunction expansion of `alts` alternatives against the budget.
    fn charge_expansion(&mut self, alts: usize) -> Option<()> {
        if alts > 1 {
            self.or_expansions = self.or_expansions.saturating_add(alts);
            if self.or_expansions > self.limits.max_or_expansions {
                return self.fail(BailReason::Disjunction);
            }
        }
        Some(())
    }

    /// Analyse a qualifier path given as flattened atoms (shared by plain path
    /// qualifiers and by distributed union branches).
    pub(crate) fn analyze_qual_atoms(
        &mut self,
        pending: &[Sym],
        avoid: &[Sym],
        atoms: &[Atom<'a>],
    ) -> Option<Conj<'a>> {
        let Some((first, rest)) = atoms.split_first() else {
            return Some(Conj::True); // ε qualifier
        };
        match first {
            Atom::Step(Path::Label(name)) => match self.compiled.elem_sym(name) {
                None => Some(Conj::Dead),
                Some(s) => self.pend_demand(pending, avoid, s, rest),
            },
            Atom::Sym(s) => self.pend_demand(pending, avoid, *s, rest),
            Atom::Branch(branches) => {
                // A disjunctive qualifier path: one alternative per branch, each a
                // pseudo-atom demanding `branch ++ rest` at the current position.
                let alts: Vec<Vec<Atom<'a>>> = branches
                    .iter()
                    .map(|b| {
                        let mut stream = b.clone();
                        stream.extend_from_slice(rest);
                        vec![Atom::QualAtoms(stream)]
                    })
                    .collect();
                Some(Conj::Expand(alts))
            }
            Atom::Qual(conjs) => {
                // A leading filter (`[.[q]/rest]`): the inner conjuncts apply at the
                // current node, the remainder is a fresh path demand.
                let mut alt = vec![Atom::Qual(conjs.clone())];
                if !rest.is_empty() {
                    alt.push(Atom::QualAtoms(rest.to_vec()));
                }
                Some(Conj::Expand(vec![alt]))
            }
            Atom::QualAtoms(inner) => {
                let mut alt = vec![Atom::QualAtoms(inner.clone())];
                if !rest.is_empty() {
                    alt.push(Atom::QualAtoms(rest.to_vec()));
                }
                Some(Conj::Expand(vec![alt]))
            }
            Atom::Step(Path::NextSibling)
            | Atom::Step(Path::FollowingSiblingOrSelf)
            | Atom::Step(Path::PrevSibling)
            | Atom::Step(Path::PrecedingSiblingOrSelf) => {
                // A sibling hop from the *qualified node itself* moves in the
                // enclosing word — a cross-level interaction this analysis does not
                // model.  (Hops deeper inside the qualifier are fine: they re-enter
                // `image` with a fresh anchor.)
                self.fail(BailReason::Sibling)
            }
            // Wildcard / descendant demands need per-type treatment; bail.
            _ => self.fail(BailReason::QualifierShape),
        }
    }

    /// A concrete child-label demand with remainder `rest`.
    fn pend_demand(
        &mut self,
        pending: &[Sym],
        avoid: &[Sym],
        s: Sym,
        rest: &[Atom<'a>],
    ) -> Option<Conj<'a>> {
        if avoid.contains(&s) {
            return Some(Conj::Dead); // demanded child is forbidden at this node
        }
        if pending.contains(&s) {
            return self.fail(BailReason::DemandCollision);
        }
        if pending.len() >= self.limits.max_demands {
            return self.fail(BailReason::DemandLimit);
        }
        let start = self.singleton(s);
        let img = self.image(&start, rest, &[], &[], true)?;
        if img.is_empty() {
            Some(Conj::Dead)
        } else {
            Some(Conj::Pend(s, rest.to_vec()))
        }
    }

    /// Classify one conjunct against the current pending/avoid sets (shared by
    /// image, emission and witness realisation so their bail behaviour cannot
    /// diverge).
    pub(crate) fn analyze_conjunct(
        &mut self,
        pending: &[Sym],
        avoid: &[Sym],
        q: &'a Qualifier,
    ) -> Option<Conj<'a>> {
        match q {
            Qualifier::LabelIs(name) => match self.compiled.elem_sym(name) {
                None => Some(Conj::Dead),
                Some(s) => Some(Conj::Restrict(s)),
            },
            Qualifier::Path(p) => {
                if path_is_trivial(p) {
                    return Some(Conj::True);
                }
                let Some(atoms) = flatten(p) else {
                    return self.fail(BailReason::UpwardAxis);
                };
                self.analyze_qual_atoms(pending, avoid, &atoms)
            }
            Qualifier::Or(_, _) => {
                let mut disjuncts = Vec::new();
                collect_or(q, &mut disjuncts);
                let alts: Vec<Vec<Atom<'a>>> = disjuncts
                    .into_iter()
                    .map(|d| vec![Atom::Qual(vec![d])])
                    .collect();
                Some(Conj::Expand(alts))
            }
            Qualifier::And(_, _) => {
                // Flattened by `flatten`, but reachable as an Or disjunct.
                let mut conjs = Vec::new();
                collect_and(q, &mut conjs);
                Some(Conj::Expand(vec![vec![Atom::Qual(conjs)]]))
            }
            Qualifier::Not(inner) => match &**inner {
                Qualifier::LabelIs(name) => match self.compiled.elem_sym(name) {
                    None => Some(Conj::True), // no element carries an undeclared label
                    Some(s) => Some(Conj::Exclude(s)),
                },
                Qualifier::Path(p) => {
                    if path_is_trivial(p) {
                        return Some(Conj::Dead); // not(true)
                    }
                    let Some(atoms) = flatten(p) else {
                        return self.fail(BailReason::Negation);
                    };
                    match atoms.as_slice() {
                        [Atom::Step(Path::Label(name))] => match self.compiled.elem_sym(name) {
                            None => Some(Conj::True), // cannot have an undeclared child
                            Some(s) => {
                                if !self.props().duplicate_free {
                                    return self.fail(BailReason::Negation);
                                }
                                if pending.contains(&s) {
                                    return Some(Conj::Dead);
                                }
                                Some(Conj::Avoid(s))
                            }
                        },
                        _ => self.fail(BailReason::Negation),
                    }
                }
                Qualifier::Not(q2) => self.analyze_conjunct(pending, avoid, q2),
                Qualifier::AttrCmp { .. } | Qualifier::AttrJoin { .. } => {
                    self.fail(BailReason::DataValue)
                }
                _ => self.fail(BailReason::Negation),
            },
            Qualifier::AttrCmp { .. } | Qualifier::AttrJoin { .. } => {
                self.fail(BailReason::DataValue)
            }
        }
    }

    /// Pure image of `atoms` from the types in `start`, under `incoming` pending
    /// demands and `inc_avoid` forbidden child labels.  `tail` permits trailing
    /// demands (resolved by a cover mask); otherwise they bail.  `None` = outside
    /// the fragment or out of work budget; an *empty* image is a definite "nothing
    /// reachable".
    pub(crate) fn image(
        &mut self,
        start: &BitSet,
        atoms: &[Atom<'a>],
        incoming: &[Sym],
        inc_avoid: &[Sym],
        tail: bool,
    ) -> Option<BitSet> {
        self.spend(atoms.len() as u64 + 1)?;
        let mut cur = start.clone();
        let mut pending: Vec<Sym> = incoming.to_vec();
        let mut avoid: Vec<Sym> = inc_avoid.to_vec();
        let mut i = 0;
        while i < atoms.len() {
            let last = i + 1 == atoms.len();
            match &atoms[i] {
                Atom::Step(step) => match step {
                    Path::Label(name) => {
                        let anchor = self.compiled.elem_sym(name);
                        match sibling_chain(&atoms[i + 1..]) {
                            Some(Err(())) => return self.fail(BailReason::Sibling),
                            Some(Ok(spec)) => {
                                if !pending.is_empty() {
                                    return self.fail(BailReason::Sibling);
                                }
                                cur = match anchor {
                                    None => self.empty(),
                                    Some(s) => {
                                        let pat = self.chain_pattern(Some(s), spec, &avoid);
                                        self.chain_targets(&cur, &pat)?
                                    }
                                };
                                avoid.clear();
                                i += spec.consumed;
                            }
                            None => {
                                cur = match anchor {
                                    None => self.empty(),
                                    Some(s) => self.child_image(&cur, s, &pending, &avoid)?,
                                };
                                pending.clear();
                                avoid.clear();
                            }
                        }
                    }
                    Path::Wildcard => {
                        if !pending.is_empty() {
                            return self.fail(BailReason::QualifierShape);
                        }
                        match sibling_chain(&atoms[i + 1..]) {
                            Some(Err(())) => return self.fail(BailReason::Sibling),
                            Some(Ok(spec)) => {
                                let pat = self.chain_pattern(None, spec, &avoid);
                                cur = self.chain_targets(&cur, &pat)?;
                                avoid.clear();
                                i += spec.consumed;
                            }
                            None => {
                                if !avoid.is_empty() {
                                    return self.fail(BailReason::Negation);
                                }
                                let mut dst = self.empty();
                                for t in cur.iter() {
                                    dst.union_with(
                                        self.compiled.graph().succ_bits(Sym::from_index(t)),
                                    );
                                }
                                cur = dst;
                            }
                        }
                    }
                    Path::DescendantOrSelf => {
                        if !pending.is_empty() {
                            return self.fail(BailReason::QualifierShape);
                        }
                        if !avoid.is_empty() {
                            return self.fail(BailReason::Negation);
                        }
                        let mut dst = cur.clone();
                        for t in cur.iter() {
                            dst.union_with(self.compiled.graph().reach_bits(Sym::from_index(t)));
                        }
                        cur = dst;
                    }
                    // A sibling hop with no anchor child step before it.
                    Path::NextSibling
                    | Path::FollowingSiblingOrSelf
                    | Path::PrevSibling
                    | Path::PrecedingSiblingOrSelf => return self.fail(BailReason::Sibling),
                    _ => return self.fail(BailReason::UpwardAxis),
                },
                Atom::Sym(s) => {
                    let s = *s;
                    match sibling_chain(&atoms[i + 1..]) {
                        Some(Err(())) => return self.fail(BailReason::Sibling),
                        Some(Ok(spec)) => {
                            if !pending.is_empty() {
                                return self.fail(BailReason::Sibling);
                            }
                            let pat = self.chain_pattern(Some(s), spec, &avoid);
                            cur = self.chain_targets(&cur, &pat)?;
                            avoid.clear();
                            i += spec.consumed;
                        }
                        None => {
                            cur = self.child_image(&cur, s, &pending, &avoid)?;
                            pending.clear();
                            avoid.clear();
                        }
                    }
                }
                Atom::Branch(branches) => {
                    let branch_tail = tail && last;
                    let mut dst = self.empty();
                    for b in branches {
                        let r = self.image(&cur, b, &pending, &avoid, branch_tail)?;
                        dst.union_with(&r);
                    }
                    cur = dst;
                    pending.clear();
                    avoid.clear();
                }
                Atom::Qual(conjs) => {
                    for (j, c) in conjs.iter().enumerate() {
                        match self.analyze_conjunct(&pending, &avoid, c)? {
                            Conj::True => {}
                            Conj::Dead => {
                                cur = self.empty();
                                pending.clear();
                                avoid.clear();
                            }
                            Conj::Restrict(s) => {
                                let m = self.singleton(s);
                                cur.intersect_with(&m);
                            }
                            Conj::Exclude(s) => {
                                let m = self.complement_singleton(s);
                                cur.intersect_with(&m);
                            }
                            Conj::Pend(s, _) => pending.push(s),
                            Conj::Avoid(s) => {
                                if !avoid.contains(&s) {
                                    avoid.push(s);
                                }
                            }
                            Conj::Expand(alts) => {
                                self.charge_expansion(alts.len())?;
                                let mut dst = self.empty();
                                for alt in alts {
                                    let mut cont = alt;
                                    if j + 1 < conjs.len() {
                                        cont.push(Atom::Qual(conjs[j + 1..].to_vec()));
                                    }
                                    cont.extend_from_slice(&atoms[i + 1..]);
                                    let r = self.image(&cur, &cont, &pending, &avoid, tail)?;
                                    dst.union_with(&r);
                                }
                                return Some(dst);
                            }
                        }
                    }
                }
                Atom::QualAtoms(stream) => {
                    let stream = stream.clone();
                    match self.analyze_qual_atoms(&pending, &avoid, &stream)? {
                        Conj::True => {}
                        Conj::Dead => {
                            cur = self.empty();
                            pending.clear();
                            avoid.clear();
                        }
                        Conj::Restrict(s) => {
                            let m = self.singleton(s);
                            cur.intersect_with(&m);
                        }
                        Conj::Exclude(s) => {
                            let m = self.complement_singleton(s);
                            cur.intersect_with(&m);
                        }
                        Conj::Pend(s, _) => pending.push(s),
                        Conj::Avoid(s) => {
                            if !avoid.contains(&s) {
                                avoid.push(s);
                            }
                        }
                        Conj::Expand(alts) => {
                            self.charge_expansion(alts.len())?;
                            let mut dst = self.empty();
                            for alt in alts {
                                let mut cont = alt;
                                cont.extend_from_slice(&atoms[i + 1..]);
                                let r = self.image(&cur, &cont, &pending, &avoid, tail)?;
                                dst.union_with(&r);
                            }
                            return Some(dst);
                        }
                    }
                }
            }
            i += 1;
        }
        if !pending.is_empty() || !avoid.is_empty() {
            if !tail {
                return self.fail(BailReason::QualifierShape);
            }
            let mask = self.cover_mask(None, &pending, &avoid)?;
            cur.intersect_with(&mask);
        }
        Some(cur)
    }

    /// Is the atom stream satisfiable from a node of type `s`?
    pub(crate) fn feasible_from(&mut self, s: Sym, atoms: &[Atom<'a>]) -> Option<bool> {
        let start = self.singleton(s);
        Some(!self.image(&start, atoms, &[], &[], true)?.is_empty())
    }
}

/// Op emission: mirrors [`Analysis::image`] step for step, but materialises registers
/// and interned masks instead of computing the sets.
struct Compiler<'a> {
    an: Analysis<'a>,
    ops: Vec<Op>,
    masks: Vec<BitSet>,
    tables: Vec<Vec<BitSet>>,
    mask_memo: HashMap<CoverKey, MaskId>,
}

impl<'a> Compiler<'a> {
    fn next_reg(&mut self) -> Option<Reg> {
        if self.ops.len() >= self.an.limits.max_ops {
            return self.an.fail(BailReason::ProgramSize);
        }
        Some(self.ops.len() as Reg)
    }

    fn push(&mut self, op: Op) -> Option<Reg> {
        let dst = self.next_reg()?;
        self.ops.push(op);
        Some(dst)
    }

    fn push_mask(&mut self, mask: BitSet) -> Option<MaskId> {
        if self.masks.len() >= self.an.limits.max_ops {
            return self.an.fail(BailReason::ProgramSize);
        }
        let id = self.masks.len() as MaskId;
        self.masks.push(mask);
        Some(id)
    }

    fn push_table(&mut self, rows: Vec<BitSet>) -> Option<TableId> {
        if self.tables.len() >= self.an.limits.max_ops {
            return self.an.fail(BailReason::ProgramSize);
        }
        let id = self.tables.len() as TableId;
        self.tables.push(rows);
        Some(id)
    }

    fn intern_cover(
        &mut self,
        base: Option<Sym>,
        demands: &[Sym],
        avoid: &[Sym],
    ) -> Option<MaskId> {
        let mut key: Vec<Sym> = demands.to_vec();
        key.sort_unstable();
        let mut akey: Vec<Sym> = avoid.to_vec();
        akey.sort_unstable();
        akey.dedup();
        if let Some(&id) = self.mask_memo.get(&(base, key.clone(), akey.clone())) {
            return Some(id);
        }
        let mask = self.an.cover_mask(base, &key, &akey)?;
        let id = self.push_mask(mask)?;
        self.mask_memo.insert((base, key, akey), id);
        Some(id)
    }

    fn emit_child(&mut self, src: Reg, s: Sym, pending: &[Sym], avoid: &[Sym]) -> Option<Reg> {
        if pending.contains(&s) {
            return self.an.fail(BailReason::DemandCollision);
        }
        if avoid.contains(&s) {
            let dst = self.next_reg()?;
            return self.push(Op::Empty { dst });
        }
        let ok = self.intern_cover(Some(s), pending, avoid)?;
        let dst = self.next_reg()?;
        self.push(Op::Child {
            src,
            dst,
            sym: s,
            ok,
        })
    }

    /// Emit a whole sibling chain as one table-driven op.
    fn emit_chain(
        &mut self,
        src: Reg,
        anchor: Option<Sym>,
        spec: ChainSpec,
        avoid: &[Sym],
    ) -> Option<Reg> {
        let pat = self.an.chain_pattern(anchor, spec, avoid);
        let n = self.an.compiled.num_elements();
        let mut rows = Vec::with_capacity(n);
        for t in 0..n {
            rows.push(self.an.chain_row(Sym::from_index(t), &pat)?);
        }
        let table = self.push_table(rows)?;
        let dst = self.next_reg()?;
        self.push(Op::Table { src, dst, table })
    }

    fn emit(
        &mut self,
        src: Reg,
        atoms: &[Atom<'a>],
        incoming: &[Sym],
        inc_avoid: &[Sym],
        tail: bool,
    ) -> Option<Reg> {
        let mut cur = src;
        let mut pending: Vec<Sym> = incoming.to_vec();
        let mut avoid: Vec<Sym> = inc_avoid.to_vec();
        let mut i = 0;
        while i < atoms.len() {
            let last = i + 1 == atoms.len();
            match &atoms[i] {
                Atom::Step(step) => match step {
                    Path::Label(name) => {
                        let anchor = self.an.compiled.elem_sym(name);
                        match sibling_chain(&atoms[i + 1..]) {
                            Some(Err(())) => return self.an.fail(BailReason::Sibling),
                            Some(Ok(spec)) => {
                                if !pending.is_empty() {
                                    return self.an.fail(BailReason::Sibling);
                                }
                                cur = match anchor {
                                    None => {
                                        let dst = self.next_reg()?;
                                        self.push(Op::Empty { dst })?
                                    }
                                    Some(s) => self.emit_chain(cur, Some(s), spec, &avoid)?,
                                };
                                avoid.clear();
                                i += spec.consumed;
                            }
                            None => {
                                cur = match anchor {
                                    None => {
                                        let dst = self.next_reg()?;
                                        self.push(Op::Empty { dst })?
                                    }
                                    Some(s) => self.emit_child(cur, s, &pending, &avoid)?,
                                };
                                pending.clear();
                                avoid.clear();
                            }
                        }
                    }
                    Path::Wildcard => {
                        if !pending.is_empty() {
                            return self.an.fail(BailReason::QualifierShape);
                        }
                        match sibling_chain(&atoms[i + 1..]) {
                            Some(Err(())) => return self.an.fail(BailReason::Sibling),
                            Some(Ok(spec)) => {
                                cur = self.emit_chain(cur, None, spec, &avoid)?;
                                avoid.clear();
                                i += spec.consumed;
                            }
                            None => {
                                if !avoid.is_empty() {
                                    return self.an.fail(BailReason::Negation);
                                }
                                let dst = self.next_reg()?;
                                cur = self.push(Op::AnyChild { src: cur, dst })?;
                            }
                        }
                    }
                    Path::DescendantOrSelf => {
                        if !pending.is_empty() {
                            return self.an.fail(BailReason::QualifierShape);
                        }
                        if !avoid.is_empty() {
                            return self.an.fail(BailReason::Negation);
                        }
                        let dst = self.next_reg()?;
                        cur = self.push(Op::DescOrSelf { src: cur, dst })?;
                    }
                    Path::NextSibling
                    | Path::FollowingSiblingOrSelf
                    | Path::PrevSibling
                    | Path::PrecedingSiblingOrSelf => return self.an.fail(BailReason::Sibling),
                    _ => return self.an.fail(BailReason::UpwardAxis),
                },
                Atom::Sym(s) => {
                    let s = *s;
                    match sibling_chain(&atoms[i + 1..]) {
                        Some(Err(())) => return self.an.fail(BailReason::Sibling),
                        Some(Ok(spec)) => {
                            if !pending.is_empty() {
                                return self.an.fail(BailReason::Sibling);
                            }
                            cur = self.emit_chain(cur, Some(s), spec, &avoid)?;
                            avoid.clear();
                            i += spec.consumed;
                        }
                        None => {
                            cur = self.emit_child(cur, s, &pending, &avoid)?;
                            pending.clear();
                            avoid.clear();
                        }
                    }
                }
                Atom::Branch(branches) => {
                    let branch_tail = tail && last;
                    let mut acc: Option<Reg> = None;
                    for b in branches {
                        let r = self.emit(cur, b, &pending, &avoid, branch_tail)?;
                        acc = Some(match acc {
                            None => r,
                            Some(a) => {
                                let dst = self.next_reg()?;
                                self.push(Op::Union { a, b: r, dst })?
                            }
                        });
                    }
                    cur = acc?;
                    pending.clear();
                    avoid.clear();
                }
                Atom::Qual(conjs) => {
                    for (j, c) in conjs.iter().enumerate() {
                        match self.an.analyze_conjunct(&pending, &avoid, c)? {
                            Conj::True => {}
                            Conj::Dead => {
                                let dst = self.next_reg()?;
                                cur = self.push(Op::Empty { dst })?;
                                pending.clear();
                                avoid.clear();
                            }
                            Conj::Restrict(s) => {
                                let m = self.an.singleton(s);
                                cur = self.emit_intersect(cur, m)?;
                            }
                            Conj::Exclude(s) => {
                                let m = self.an.complement_singleton(s);
                                cur = self.emit_intersect(cur, m)?;
                            }
                            Conj::Pend(s, _) => pending.push(s),
                            Conj::Avoid(s) => {
                                if !avoid.contains(&s) {
                                    avoid.push(s);
                                }
                            }
                            Conj::Expand(alts) => {
                                self.an.charge_expansion(alts.len())?;
                                let mut acc: Option<Reg> = None;
                                for alt in alts {
                                    let mut cont = alt;
                                    if j + 1 < conjs.len() {
                                        cont.push(Atom::Qual(conjs[j + 1..].to_vec()));
                                    }
                                    cont.extend_from_slice(&atoms[i + 1..]);
                                    let r = self.emit(cur, &cont, &pending, &avoid, tail)?;
                                    acc = Some(match acc {
                                        None => r,
                                        Some(a) => {
                                            let dst = self.next_reg()?;
                                            self.push(Op::Union { a, b: r, dst })?
                                        }
                                    });
                                }
                                return acc;
                            }
                        }
                    }
                }
                Atom::QualAtoms(stream) => {
                    let stream = stream.clone();
                    match self.an.analyze_qual_atoms(&pending, &avoid, &stream)? {
                        Conj::True => {}
                        Conj::Dead => {
                            let dst = self.next_reg()?;
                            cur = self.push(Op::Empty { dst })?;
                            pending.clear();
                            avoid.clear();
                        }
                        Conj::Restrict(s) => {
                            let m = self.an.singleton(s);
                            cur = self.emit_intersect(cur, m)?;
                        }
                        Conj::Exclude(s) => {
                            let m = self.an.complement_singleton(s);
                            cur = self.emit_intersect(cur, m)?;
                        }
                        Conj::Pend(s, _) => pending.push(s),
                        Conj::Avoid(s) => {
                            if !avoid.contains(&s) {
                                avoid.push(s);
                            }
                        }
                        Conj::Expand(alts) => {
                            self.an.charge_expansion(alts.len())?;
                            let mut acc: Option<Reg> = None;
                            for alt in alts {
                                let mut cont = alt;
                                cont.extend_from_slice(&atoms[i + 1..]);
                                let r = self.emit(cur, &cont, &pending, &avoid, tail)?;
                                acc = Some(match acc {
                                    None => r,
                                    Some(a) => {
                                        let dst = self.next_reg()?;
                                        self.push(Op::Union { a, b: r, dst })?
                                    }
                                });
                            }
                            return acc;
                        }
                    }
                }
            }
            i += 1;
        }
        if !pending.is_empty() || !avoid.is_empty() {
            if !tail {
                return self.an.fail(BailReason::QualifierShape);
            }
            let mask = self.intern_cover(None, &pending, &avoid)?;
            let dst = self.next_reg()?;
            cur = self.push(Op::Intersect {
                src: cur,
                dst,
                mask,
            })?;
        }
        Some(cur)
    }

    fn emit_intersect(&mut self, src: Reg, mask: BitSet) -> Option<Reg> {
        let mask = self.push_mask(mask)?;
        let dst = self.next_reg()?;
        self.push(Op::Intersect { src, dst, mask })
    }
}

/// Lower `canonical` against `artifacts` into a replayable program, reporting the
/// first [`BailReason`] when the query leaves the compiled fragment.
///
/// The input should be the output of [`crate::canonicalize`]; a non-canonical path
/// compiles correctly too, it just forfeits sharing.
pub fn compile_with_reason(
    artifacts: &DtdArtifacts,
    canonical: &Path,
    limits: &CompileLimits,
) -> Result<DecisionProgram, BailReason> {
    let f = Features::of_path(canonical);
    if f.has_upward() {
        return Err(BailReason::UpwardAxis);
    }
    if f.data_value {
        return Err(BailReason::DataValue);
    }
    let Some(compiled) = artifacts.compiled() else {
        // Non-terminating root: no document conforms, every query is unsatisfiable.
        return Ok(DecisionProgram {
            ops: Vec::new(),
            masks: Vec::new(),
            tables: Vec::new(),
            num_elements: 0,
            out: 0,
            const_unsat: true,
            canon: canonical.clone(),
            dtd_uid: artifacts.uid(),
        });
    };
    let limits = limits.effective_for(compiled.properties());
    let atoms = flatten(canonical).ok_or(BailReason::UpwardAxis)?;
    let mut c = Compiler {
        an: Analysis::new(compiled, limits),
        ops: Vec::new(),
        masks: Vec::new(),
        tables: Vec::new(),
        mask_memo: HashMap::new(),
    };
    let Some(root) = c.next_reg().and_then(|dst| c.push(Op::Root { dst })) else {
        return Err(c.an.bail_reason());
    };
    match c.emit(root, &atoms, &[], &[], true) {
        Some(out) => Ok(optimize(DecisionProgram {
            ops: c.ops,
            masks: c.masks,
            tables: c.tables,
            num_elements: compiled.num_elements(),
            out,
            const_unsat: false,
            canon: canonical.clone(),
            dtd_uid: artifacts.uid(),
        })),
        None => Err(c.an.bail_reason()),
    }
}

/// Lower `canonical` against `artifacts`, or `None` when the query leaves the
/// compiled fragment (the caller keeps the AST solver as oracle).
pub fn compile(
    artifacts: &DtdArtifacts,
    canonical: &Path,
    limits: &CompileLimits,
) -> Option<DecisionProgram> {
    compile_with_reason(artifacts, canonical, limits).ok()
}
