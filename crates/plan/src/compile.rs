//! Lowering a canonical query × [`DtdArtifacts`] into a [`DecisionProgram`].
//!
//! The compiler specialises the paper's downward reachability procedure (Theorems
//! 4.1/4.4) to one `(query, DTD)` pair.  The program's registers hold sets of element
//! types the spine node can have; qualifier conjuncts become *pending demands* — child
//! labels that must occur in the node's children word — which the **next** child step
//! consumes through a joint content-model cover mask (`{t : L(P(t))` has a word
//! containing the spine label and one occurrence of every demand label`}`).  The joint
//! check is what keeps `a[b and c]/d` sound under `a → (b,c)|d`: each demand needs its
//! own child occurrence *in the same word* as the spine child.
//!
//! The compiler bails (returns `None`, leaving the AST solver as oracle) whenever the
//! discipline cannot guarantee exactness cheaply:
//!
//! * operators outside the downward fragment (upward/sibling axes, negation, data
//!   values, disjunctive or attribute qualifiers);
//! * a qualifier path not starting with a concrete child label;
//! * a spine step whose label collides with a pending demand, or two demands on the
//!   same label (one child could then serve two roles — a multiplicity interaction the
//!   cover mask cannot see);
//! * wildcard/descendant spine steps with demands pending, and union branches that
//!   would carry pending demands past the join (except in tail position, where a
//!   trailing cover mask resolves them);
//! * compile-work or program-size limits exceeded (hostile inputs).
//!
//! Within the accepted fragment the lowering is exact: demands are pre-filtered by
//! *type-level feasibility* of their remaining path (computed by the same analysis,
//! recursively), and subtrees hanging off distinct children realise independently
//! under a DTD, which is precisely the paper's `Tree(p, D)` argument.

use crate::canon::path_is_trivial;
use crate::program::{DecisionProgram, MaskId, Op, Reg};
use std::collections::HashMap;
use xpsat_automata::{word_with_multiplicities, BitSet, CoverDemand};
use xpsat_dtd::{CompiledDtd, DtdArtifacts, Sym};
use xpsat_xpath::{Features, Path, Qualifier};

/// Bounds on compile-time work, so hostile queries degrade to the AST path instead of
/// stalling the compiler.
#[derive(Debug, Clone)]
pub struct CompileLimits {
    /// Maximum instructions (and registers) a program may have.
    pub max_ops: usize,
    /// Maximum pending demands at one spine position (cover BFS cost grows with it).
    pub max_demands: usize,
    /// Abstract work budget for feasibility analysis (≈ automaton states visited).
    pub max_work: u64,
}

impl Default for CompileLimits {
    fn default() -> CompileLimits {
        CompileLimits {
            max_ops: 512,
            max_demands: 6,
            max_work: 4_000_000,
        }
    }
}

/// One element of the flattened step stream.
#[derive(Debug, Clone)]
pub(crate) enum Atom<'a> {
    /// A single spine step: `Label`, `Wildcard` or `DescendantOrSelf`.
    Step(&'a Path),
    /// A child step to an already-resolved element type (used by witness chains).
    Sym(Sym),
    /// A union of alternative continuations, each itself flattened.
    Branch(Vec<Vec<Atom<'a>>>),
    /// A filter: the flattened conjuncts applying at the current position.
    Qual(Vec<&'a Qualifier>),
}

/// Flatten `p` into the atom stream, or `None` when it leaves the downward fragment.
pub(crate) fn flatten(p: &Path) -> Option<Vec<Atom<'_>>> {
    let mut out = Vec::new();
    flatten_into(p, &mut out)?;
    Some(out)
}

fn flatten_into<'a>(p: &'a Path, out: &mut Vec<Atom<'a>>) -> Option<()> {
    match p {
        Path::Empty => Some(()),
        Path::Seq(a, b) => {
            flatten_into(a, out)?;
            flatten_into(b, out)
        }
        Path::Label(_) | Path::Wildcard | Path::DescendantOrSelf => {
            out.push(Atom::Step(p));
            Some(())
        }
        Path::Union(_, _) => {
            let mut branches = Vec::new();
            collect_union(p, &mut branches);
            let mut flat = Vec::with_capacity(branches.len());
            for b in branches {
                flat.push(flatten(b)?);
            }
            out.push(Atom::Branch(flat));
            Some(())
        }
        Path::Filter(base, q) => {
            flatten_into(base, out)?;
            let mut conjs = Vec::new();
            collect_and(q, &mut conjs);
            out.push(Atom::Qual(conjs));
            Some(())
        }
        _ => None,
    }
}

fn collect_union<'a>(p: &'a Path, out: &mut Vec<&'a Path>) {
    match p {
        Path::Union(a, b) => {
            collect_union(a, out);
            collect_union(b, out);
        }
        other => out.push(other),
    }
}

fn collect_and<'a>(q: &'a Qualifier, out: &mut Vec<&'a Qualifier>) {
    match q {
        Qualifier::And(a, b) => {
            collect_and(a, out);
            collect_and(b, out);
        }
        other => out.push(other),
    }
}

/// What one qualifier conjunct contributes at a spine position.
pub(crate) enum Conj {
    /// Trivially true; contributes nothing.
    True,
    /// Unsatisfiable; the position's image is empty.
    Dead,
    /// Restrict the position to one element type (a label test).
    Restrict(Sym),
    /// Demand a child with this label (remaining path verified type-feasible).
    Pend(Sym),
}

/// Shared feasibility analysis: pure bitset images of atom streams, memoised joint
/// cover masks, and a work budget.  Used by the compiler (to build `ok` masks and
/// pre-filter demands) and by the witness realiser (to steer choices).
pub(crate) struct Analysis<'a> {
    pub(crate) compiled: &'a CompiledDtd,
    limits: &'a CompileLimits,
    work: u64,
    cover_memo: HashMap<(Option<Sym>, Vec<Sym>), BitSet>,
}

impl<'a> Analysis<'a> {
    pub(crate) fn new(compiled: &'a CompiledDtd, limits: &'a CompileLimits) -> Analysis<'a> {
        Analysis {
            compiled,
            limits,
            work: 0,
            cover_memo: HashMap::new(),
        }
    }

    fn spend(&mut self, n: u64) -> Option<()> {
        self.work = self.work.saturating_add(n);
        (self.work <= self.limits.max_work).then_some(())
    }

    fn empty(&self) -> BitSet {
        BitSet::with_capacity(self.compiled.num_elements())
    }

    pub(crate) fn singleton(&self, s: Sym) -> BitSet {
        let mut b = self.empty();
        b.insert(s.index());
        b
    }

    /// The types whose content model has a word containing one occurrence of `base`
    /// (when present) plus one occurrence of every demand label, all at distinct
    /// positions.  Demands are pairwise distinct and distinct from `base` (enforced by
    /// the callers' bail rules), so distinctness is automatic.
    pub(crate) fn cover_mask(&mut self, base: Option<Sym>, demands: &[Sym]) -> Option<BitSet> {
        let mut key: Vec<Sym> = demands.to_vec();
        key.sort_unstable();
        if let Some(m) = self.cover_memo.get(&(base, key.clone())) {
            return Some(m.clone());
        }
        let mut dem = CoverDemand::none();
        if let Some(s) = base {
            dem = dem.require(s, 1);
        }
        for &d in &key {
            dem = dem.require(d, 1);
        }
        let mut mask = self.empty();
        let graph = self.compiled.graph();
        for t in self.compiled.elements() {
            // Every required label must be a successor of `t` at all; edges of the
            // pruned graph mean "occurs in some word", which settles the base-only and
            // no-demand cases without touching the automaton.
            let succ = graph.succ_bits(t);
            let present = base.is_none_or(|s| succ.contains(s.index()))
                && key.iter().all(|d| succ.contains(d.index()));
            if !present {
                continue;
            }
            if key.is_empty() {
                mask.insert(t.index());
                continue;
            }
            self.spend(self.compiled.automaton(t).num_states() as u64 + 1)?;
            if word_with_multiplicities(self.compiled.automaton(t), &dem) {
                mask.insert(t.index());
            }
        }
        self.cover_memo.insert((base, key), mask.clone());
        Some(mask)
    }

    /// Image of a child step to `s` under pending demands.
    fn child_image(&mut self, cur: &BitSet, s: Sym, pending: &[Sym]) -> Option<BitSet> {
        if pending.contains(&s) {
            return None;
        }
        let ok = self.cover_mask(Some(s), pending)?;
        let mut dst = self.empty();
        if cur.intersects(&ok) {
            dst.insert(s.index());
        }
        Some(dst)
    }

    /// Classify one conjunct against the current pending set (shared by image,
    /// emission and witness realisation so their bail behaviour cannot diverge).
    pub(crate) fn analyze_conjunct(&mut self, pending: &[Sym], q: &Qualifier) -> Option<Conj> {
        match q {
            Qualifier::LabelIs(name) => match self.compiled.elem_sym(name) {
                None => Some(Conj::Dead),
                Some(s) => Some(Conj::Restrict(s)),
            },
            Qualifier::Path(p) => {
                if path_is_trivial(p) {
                    return Some(Conj::True);
                }
                let atoms = flatten(p)?;
                let Some((first, rest)) = atoms.split_first() else {
                    return Some(Conj::True); // ε qualifier
                };
                let s = match first {
                    Atom::Step(Path::Label(name)) => match self.compiled.elem_sym(name) {
                        None => return Some(Conj::Dead),
                        Some(s) => s,
                    },
                    Atom::Sym(s) => *s,
                    // A demand without a concrete first child label (wildcard, desc,
                    // union, leading filter) needs per-type treatment; bail.
                    _ => return None,
                };
                if pending.contains(&s) || pending.len() >= self.limits.max_demands {
                    return None;
                }
                let start = self.singleton(s);
                let img = self.image(&start, rest, &[], true)?;
                if img.is_empty() {
                    Some(Conj::Dead)
                } else {
                    Some(Conj::Pend(s))
                }
            }
            // Or / Not / AttrCmp / AttrJoin: outside the compiled fragment.
            _ => None,
        }
    }

    /// Pure image of `atoms` from the types in `start`, under `incoming` pending
    /// demands.  `tail` permits trailing demands (resolved by a cover mask); otherwise
    /// they bail.  `None` = outside the fragment or out of work budget; an *empty*
    /// image is a definite "nothing reachable".
    pub(crate) fn image(
        &mut self,
        start: &BitSet,
        atoms: &[Atom],
        incoming: &[Sym],
        tail: bool,
    ) -> Option<BitSet> {
        self.spend(atoms.len() as u64 + 1)?;
        let mut cur = start.clone();
        let mut pending: Vec<Sym> = incoming.to_vec();
        for (i, atom) in atoms.iter().enumerate() {
            let last = i + 1 == atoms.len();
            match atom {
                Atom::Step(step) => match step {
                    Path::Label(name) => {
                        cur = match self.compiled.elem_sym(name) {
                            None => self.empty(),
                            Some(s) => self.child_image(&cur, s, &pending)?,
                        };
                        pending.clear();
                    }
                    Path::Wildcard => {
                        if !pending.is_empty() {
                            return None;
                        }
                        let mut dst = self.empty();
                        for t in cur.iter() {
                            dst.union_with(self.compiled.graph().succ_bits(Sym::from_index(t)));
                        }
                        cur = dst;
                    }
                    Path::DescendantOrSelf => {
                        if !pending.is_empty() {
                            return None;
                        }
                        let mut dst = cur.clone();
                        for t in cur.iter() {
                            dst.union_with(self.compiled.graph().reach_bits(Sym::from_index(t)));
                        }
                        cur = dst;
                    }
                    _ => return None,
                },
                Atom::Sym(s) => {
                    cur = self.child_image(&cur, *s, &pending)?;
                    pending.clear();
                }
                Atom::Branch(branches) => {
                    let branch_tail = tail && last;
                    let mut dst = self.empty();
                    for b in branches {
                        let r = self.image(&cur, b, &pending, branch_tail)?;
                        dst.union_with(&r);
                    }
                    cur = dst;
                    pending.clear();
                }
                Atom::Qual(conjs) => {
                    for c in conjs {
                        match self.analyze_conjunct(&pending, c)? {
                            Conj::True => {}
                            Conj::Dead => {
                                cur = self.empty();
                                pending.clear();
                            }
                            Conj::Restrict(s) => {
                                let m = self.singleton(s);
                                cur.intersect_with(&m);
                            }
                            Conj::Pend(s) => pending.push(s),
                        }
                    }
                }
            }
        }
        if !pending.is_empty() {
            if !tail {
                return None;
            }
            let mask = self.cover_mask(None, &pending)?;
            cur.intersect_with(&mask);
        }
        Some(cur)
    }

    /// Is the atom stream satisfiable from a node of type `s`?
    pub(crate) fn feasible_from(&mut self, s: Sym, atoms: &[Atom]) -> Option<bool> {
        let start = self.singleton(s);
        Some(!self.image(&start, atoms, &[], true)?.is_empty())
    }
}

/// Op emission: mirrors [`Analysis::image`] step for step, but materialises registers
/// and interned masks instead of computing the sets.
struct Compiler<'a> {
    an: Analysis<'a>,
    ops: Vec<Op>,
    masks: Vec<BitSet>,
    mask_memo: HashMap<(Option<Sym>, Vec<Sym>), MaskId>,
}

impl<'a> Compiler<'a> {
    fn next_reg(&self) -> Option<Reg> {
        (self.ops.len() < self.an.limits.max_ops).then_some(self.ops.len() as Reg)
    }

    fn push(&mut self, op: Op) -> Option<Reg> {
        let dst = self.next_reg()?;
        self.ops.push(op);
        Some(dst)
    }

    fn push_mask(&mut self, mask: BitSet) -> Option<MaskId> {
        if self.masks.len() >= self.an.limits.max_ops {
            return None;
        }
        let id = self.masks.len() as MaskId;
        self.masks.push(mask);
        Some(id)
    }

    fn intern_cover(&mut self, base: Option<Sym>, demands: &[Sym]) -> Option<MaskId> {
        let mut key: Vec<Sym> = demands.to_vec();
        key.sort_unstable();
        if let Some(&id) = self.mask_memo.get(&(base, key.clone())) {
            return Some(id);
        }
        let mask = self.an.cover_mask(base, &key)?;
        let id = self.push_mask(mask)?;
        self.mask_memo.insert((base, key), id);
        Some(id)
    }

    fn emit_child(&mut self, src: Reg, s: Sym, pending: &[Sym]) -> Option<Reg> {
        if pending.contains(&s) {
            return None;
        }
        let ok = self.intern_cover(Some(s), pending)?;
        let dst = self.next_reg()?;
        self.push(Op::Child {
            src,
            dst,
            sym: s,
            ok,
        })
    }

    fn emit(&mut self, src: Reg, atoms: &[Atom], incoming: &[Sym], tail: bool) -> Option<Reg> {
        let mut cur = src;
        let mut pending: Vec<Sym> = incoming.to_vec();
        for (i, atom) in atoms.iter().enumerate() {
            let last = i + 1 == atoms.len();
            match atom {
                Atom::Step(step) => match step {
                    Path::Label(name) => {
                        cur = match self.an.compiled.elem_sym(name) {
                            None => {
                                let dst = self.next_reg()?;
                                self.push(Op::Empty { dst })?
                            }
                            Some(s) => self.emit_child(cur, s, &pending)?,
                        };
                        pending.clear();
                    }
                    Path::Wildcard => {
                        if !pending.is_empty() {
                            return None;
                        }
                        let dst = self.next_reg()?;
                        cur = self.push(Op::AnyChild { src: cur, dst })?;
                    }
                    Path::DescendantOrSelf => {
                        if !pending.is_empty() {
                            return None;
                        }
                        let dst = self.next_reg()?;
                        cur = self.push(Op::DescOrSelf { src: cur, dst })?;
                    }
                    _ => return None,
                },
                Atom::Sym(s) => {
                    cur = self.emit_child(cur, *s, &pending)?;
                    pending.clear();
                }
                Atom::Branch(branches) => {
                    let branch_tail = tail && last;
                    let mut acc: Option<Reg> = None;
                    for b in branches {
                        let r = self.emit(cur, b, &pending, branch_tail)?;
                        acc = Some(match acc {
                            None => r,
                            Some(a) => {
                                let dst = self.next_reg()?;
                                self.push(Op::Union { a, b: r, dst })?
                            }
                        });
                    }
                    cur = acc?;
                    pending.clear();
                }
                Atom::Qual(conjs) => {
                    for c in conjs {
                        match self.an.analyze_conjunct(&pending, c)? {
                            Conj::True => {}
                            Conj::Dead => {
                                let dst = self.next_reg()?;
                                cur = self.push(Op::Empty { dst })?;
                                pending.clear();
                            }
                            Conj::Restrict(s) => {
                                let m = self.an.singleton(s);
                                let mask = self.push_mask(m)?;
                                let dst = self.next_reg()?;
                                cur = self.push(Op::Intersect {
                                    src: cur,
                                    dst,
                                    mask,
                                })?;
                            }
                            Conj::Pend(s) => pending.push(s),
                        }
                    }
                }
            }
        }
        if !pending.is_empty() {
            if !tail {
                return None;
            }
            let mask = self.intern_cover(None, &pending)?;
            let dst = self.next_reg()?;
            cur = self.push(Op::Intersect {
                src: cur,
                dst,
                mask,
            })?;
        }
        Some(cur)
    }
}

/// Lower `canonical` against `artifacts` into a replayable program, or `None` when the
/// query leaves the compiled fragment (the caller keeps the AST solver as oracle).
///
/// The input should be the output of [`crate::canonicalize`]; a non-canonical path
/// compiles correctly too, it just forfeits sharing.
pub fn compile(
    artifacts: &DtdArtifacts,
    canonical: &Path,
    limits: &CompileLimits,
) -> Option<DecisionProgram> {
    let f = Features::of_path(canonical);
    if f.negation || f.data_value || f.has_upward() || f.has_sibling() {
        return None;
    }
    let Some(compiled) = artifacts.compiled() else {
        // Non-terminating root: no document conforms, every query is unsatisfiable.
        return Some(DecisionProgram {
            ops: Vec::new(),
            masks: Vec::new(),
            num_elements: 0,
            out: 0,
            const_unsat: true,
            canon: canonical.clone(),
            dtd_uid: artifacts.uid(),
        });
    };
    let atoms = flatten(canonical)?;
    let mut c = Compiler {
        an: Analysis::new(compiled, limits),
        ops: Vec::new(),
        masks: Vec::new(),
        mask_memo: HashMap::new(),
    };
    let dst = c.next_reg()?;
    let root = c.push(Op::Root { dst })?;
    let out = c.emit(root, &atoms, &[], true)?;
    Some(DecisionProgram {
        ops: c.ops,
        masks: c.masks,
        num_elements: compiled.num_elements(),
        out,
        const_unsat: false,
        canon: canonical.clone(),
        dtd_uid: artifacts.uid(),
    })
}
