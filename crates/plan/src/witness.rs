//! Witness realisation for satisfiable compiled programs: the paper's `Tree(p, D)`
//! construction, steered by the same feasibility analysis the compiler used.
//!
//! The realiser walks the canonical query's atom stream top-down.  At each spine node
//! it accumulates the qualifier demands pending there (plus the *avoid set* of locally
//! negated child labels), then expands the node with a shortest children word jointly
//! covering the spine child and one child per demand while using no avoided label
//! (distinct occurrences — the compiler's disjointness discipline guarantees a child
//! can serve only one role).  Demand children recursively realise their qualifier
//! remainder (carried on the pending entry since disjunction distribution makes the
//! remainder synthetic), the spine child continues the query, and every other child
//! expands to a minimal conforming subtree.  Choice points (wildcard/descendant
//! targets, union branches, distributed disjuncts) are resolved by type-level
//! feasibility images; sibling chains realise a whole children word from the
//! content-model pattern search ([`xpsat_automata::sib_pattern_word`]), continuing the
//! query at the captured position.  All of this is sound because subtrees under
//! distinct children realise independently under a DTD.
//!
//! This is the cold path — it runs once per `(DTD, canonical query)` cache fill — so
//! allocation is fine here; only [`crate::vm::run`] is allocation-free.

use crate::compile::{flatten, sibling_chain, Analysis, Atom, ChainSpec, CompileLimits, Conj};
use crate::program::DecisionProgram;
use std::collections::VecDeque;
use xpsat_automata::{
    shortest_covering_word, sib_pattern_symbols, sib_pattern_word, CoverDemand, SibRole,
};
use xpsat_dtd::{CompiledDtd, DtdArtifacts, Sym, TreeGenerator};
use xpsat_xmltree::{Document, NodeId};
use xpsat_xpath::Path;

/// Nodes a witness may create before the realiser gives up (hostile-input guard).
const MAX_WITNESS_NODES: usize = 50_000;

/// Build a conforming document on which the program's canonical query selects a node.
/// `None` sends the caller to the AST solver (never expected on a sound SAT replay,
/// but the fallback keeps failures graceful).
pub(crate) fn build(program: &DecisionProgram, artifacts: &DtdArtifacts) -> Option<Document> {
    if program.const_unsat {
        return None;
    }
    let compiled = artifacts.compiled()?;
    let atoms = flatten(&program.canon)?;
    let limits = CompileLimits::default().effective_for(compiled.properties());
    let mut b = Builder {
        an: Analysis::new(compiled, limits),
        gen: compiled.generator(),
        compiled,
        nodes: 0,
    };
    let root_sym = compiled.root();
    let mut doc = Document::new(compiled.name(root_sym));
    let root = doc.root();
    b.realize(&mut doc, root, root_sym, Vec::new(), Vec::new(), &atoms)?;
    Some(doc)
}

/// A qualifier demand pending at the current spine node: the demanded child label and
/// the flattened remainder of the qualifier path from that child.
type Pending<'a> = (Sym, Vec<Atom<'a>>);

struct Builder<'a> {
    an: Analysis<'a>,
    gen: &'a TreeGenerator,
    compiled: &'a CompiledDtd,
    nodes: usize,
}

impl<'a> Builder<'a> {
    /// Realise `atoms` from `node` (of type `t`), with `pending` demands and `avoid`
    /// labels already owed at this node.  Invariant: the instance is type-feasible
    /// (checked at every choice point), and `node` is childless until exactly one
    /// `expand` / `expand_chain` call.
    fn realize(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        t: Sym,
        mut pending: Vec<Pending<'a>>,
        mut avoid: Vec<Sym>,
        atoms: &[Atom<'a>],
    ) -> Option<()> {
        let mut i = 0;
        loop {
            match atoms.get(i) {
                None => return self.expand(doc, node, t, &pending, &avoid, None),
                Some(Atom::Qual(conjs)) => {
                    let mut j = 0;
                    while j < conjs.len() {
                        let pend_syms: Vec<Sym> = pending.iter().map(|p| p.0).collect();
                        match self.an.analyze_conjunct(&pend_syms, &avoid, conjs[j])? {
                            Conj::True => {}
                            Conj::Dead => return None,
                            Conj::Restrict(s) => {
                                if t != s {
                                    return None;
                                }
                            }
                            Conj::Exclude(s) => {
                                if t == s {
                                    return None;
                                }
                            }
                            Conj::Pend(s, rest) => pending.push((s, rest)),
                            Conj::Avoid(s) => {
                                if !avoid.contains(&s) {
                                    avoid.push(s);
                                }
                            }
                            Conj::Expand(alts) => {
                                let mut tails: Vec<Atom<'a>> = Vec::new();
                                if j + 1 < conjs.len() {
                                    tails.push(Atom::Qual(conjs[j + 1..].to_vec()));
                                }
                                tails.extend_from_slice(&atoms[i + 1..]);
                                return self.realize_alternative(
                                    doc, node, t, pending, avoid, alts, &tails,
                                );
                            }
                        }
                        j += 1;
                    }
                    i += 1;
                }
                Some(Atom::QualAtoms(stream)) => {
                    let pend_syms: Vec<Sym> = pending.iter().map(|p| p.0).collect();
                    match self.an.analyze_qual_atoms(&pend_syms, &avoid, stream)? {
                        Conj::True => {}
                        Conj::Dead => return None,
                        Conj::Restrict(s) => {
                            if t != s {
                                return None;
                            }
                        }
                        Conj::Exclude(s) => {
                            if t == s {
                                return None;
                            }
                        }
                        Conj::Pend(s, rest) => pending.push((s, rest)),
                        Conj::Avoid(s) => {
                            if !avoid.contains(&s) {
                                avoid.push(s);
                            }
                        }
                        Conj::Expand(alts) => {
                            return self.realize_alternative(
                                doc,
                                node,
                                t,
                                pending,
                                avoid,
                                alts,
                                &atoms[i + 1..],
                            );
                        }
                    }
                    i += 1;
                }
                Some(Atom::Sym(s)) => {
                    let s = *s;
                    return match sibling_chain(&atoms[i + 1..]) {
                        Some(Err(())) => None,
                        Some(Ok(spec)) => {
                            if !pending.is_empty() {
                                return None;
                            }
                            let rest = &atoms[i + 1 + spec.consumed..];
                            self.expand_chain(doc, node, t, Some(s), spec, &avoid, rest)
                        }
                        None => {
                            self.expand(doc, node, t, &pending, &avoid, Some((s, &atoms[i + 1..])))
                        }
                    };
                }
                Some(Atom::Step(step)) => match step {
                    Path::Label(name) => {
                        let s = self.compiled.elem_sym(name)?;
                        return match sibling_chain(&atoms[i + 1..]) {
                            Some(Err(())) => None,
                            Some(Ok(spec)) => {
                                if !pending.is_empty() {
                                    return None;
                                }
                                let rest = &atoms[i + 1 + spec.consumed..];
                                self.expand_chain(doc, node, t, Some(s), spec, &avoid, rest)
                            }
                            None => self.expand(
                                doc,
                                node,
                                t,
                                &pending,
                                &avoid,
                                Some((s, &atoms[i + 1..])),
                            ),
                        };
                    }
                    Path::Wildcard => {
                        if !pending.is_empty() {
                            return None; // compiler bails here; mirror it
                        }
                        match sibling_chain(&atoms[i + 1..]) {
                            Some(Err(())) => return None,
                            Some(Ok(spec)) => {
                                let rest = &atoms[i + 1 + spec.consumed..];
                                return self.expand_chain(doc, node, t, None, spec, &avoid, rest);
                            }
                            None => {
                                if !avoid.is_empty() {
                                    return None;
                                }
                                let rest = &atoms[i + 1..];
                                let u =
                                    self.pick_feasible(self.compiled.graph().succ_bits(t), rest)?;
                                return self.expand(
                                    doc,
                                    node,
                                    t,
                                    &pending,
                                    &avoid,
                                    Some((u, rest)),
                                );
                            }
                        }
                    }
                    Path::DescendantOrSelf => {
                        if !pending.is_empty() || !avoid.is_empty() {
                            return None;
                        }
                        let rest = &atoms[i + 1..];
                        if self.an.feasible_from(t, rest)? {
                            i += 1; // self satisfies the descendant step
                            continue;
                        }
                        let u = self.pick_feasible(self.compiled.graph().reach_bits(t), rest)?;
                        let chain = self.graph_path(t, u)?;
                        let mut cont: Vec<Atom<'a>> = chain.into_iter().map(Atom::Sym).collect();
                        cont.extend_from_slice(rest);
                        return self.realize(doc, node, t, pending, avoid, &cont);
                    }
                    _ => return None,
                },
                Some(Atom::Branch(branches)) => {
                    let rest = &atoms[i + 1..];
                    let pend_syms: Vec<Sym> = pending.iter().map(|p| p.0).collect();
                    for b in branches {
                        let mut cont: Vec<Atom<'a>> = b.clone();
                        cont.extend_from_slice(rest);
                        let start = self.an.singleton(t);
                        let img = self.an.image(&start, &cont, &pend_syms, &avoid, true)?;
                        if !img.is_empty() {
                            return self.realize(doc, node, t, pending, avoid, &cont);
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// Pick the first type-feasible alternative of a distributed disjunction and
    /// realise it with the shared continuation appended.
    #[allow(clippy::too_many_arguments)]
    fn realize_alternative(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        t: Sym,
        pending: Vec<Pending<'a>>,
        avoid: Vec<Sym>,
        alts: Vec<Vec<Atom<'a>>>,
        tail: &[Atom<'a>],
    ) -> Option<()> {
        let pend_syms: Vec<Sym> = pending.iter().map(|p| p.0).collect();
        for alt in alts {
            let mut cont = alt;
            cont.extend_from_slice(tail);
            let start = self.an.singleton(t);
            let img = self.an.image(&start, &cont, &pend_syms, &avoid, true)?;
            if !img.is_empty() {
                return self.realize(doc, node, t, pending, avoid, &cont);
            }
        }
        None
    }

    /// First type in `candidates` from which `rest` is feasible.
    fn pick_feasible(
        &mut self,
        candidates: &xpsat_automata::BitSet,
        rest: &[Atom<'a>],
    ) -> Option<Sym> {
        let cand: Vec<Sym> = candidates.iter().map(Sym::from_index).collect();
        for u in cand {
            if self.an.feasible_from(u, rest)? {
                return Some(u);
            }
        }
        None
    }

    /// A type path `from → … → to` along DTD-graph edges, excluding `from`.
    fn graph_path(&self, from: Sym, to: Sym) -> Option<Vec<Sym>> {
        let graph = self.compiled.graph();
        let n = self.compiled.num_elements();
        let mut prev: Vec<Option<Sym>> = vec![None; n];
        let mut queue = VecDeque::new();
        queue.push_back(from);
        'bfs: while let Some(v) = queue.pop_front() {
            for w in graph.succ_bits(v).iter().map(Sym::from_index) {
                if prev[w.index()].is_none() {
                    prev[w.index()] = Some(v);
                    if w == to {
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        prev[to.index()]?;
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.index()] {
            if p == from {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Expand `node` with a children word realising a sibling chain: the anchor child
    /// plus the captured chain end at the demanded distance, then continue the query
    /// at the captured child.  The compiler guarantees no demands are pending here;
    /// the avoid set restricts the whole word's alphabet.
    #[allow(clippy::too_many_arguments)]
    fn expand_chain(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        t: Sym,
        anchor: Option<Sym>,
        spec: ChainSpec,
        avoid: &[Sym],
        rest: &[Atom<'a>],
    ) -> Option<()> {
        for attr in self.compiled.attributes(t) {
            doc.set_attr(node, attr.clone(), "0");
        }
        let pat = self.an.chain_pattern(anchor, spec, avoid);
        let nfa = self.compiled.automaton(t);
        let mut target = None;
        for e in sib_pattern_symbols(nfa, &pat) {
            if self.an.feasible_from(e, rest)? {
                target = Some(e);
                break;
            }
        }
        let target = target?;
        let word = sib_pattern_word(self.compiled.automaton(t), &pat, &target)?;
        self.nodes += word.len() + 1;
        if self.nodes > MAX_WITNESS_NODES {
            return None;
        }
        let captured_role = if pat.capture_left {
            SibRole::Left
        } else {
            SibRole::Right
        };
        let mut done = false;
        for (cs, role) in word {
            let child = doc.add_child(node, self.compiled.name(cs));
            if !done && (role == captured_role || role == SibRole::Both) {
                done = true;
                self.realize(doc, child, cs, Vec::new(), Vec::new(), rest)?;
            } else {
                self.gen.expand_minimal(doc, child);
            }
        }
        done.then_some(())
    }

    /// Expand `node` with a children word covering every pending demand plus the spine
    /// child while avoiding every locally negated label, realise those children, and
    /// minimally expand the fillers.
    fn expand(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        t: Sym,
        pending: &[Pending<'a>],
        avoid: &[Sym],
        spine: Option<(Sym, &[Atom<'a>])>,
    ) -> Option<()> {
        for attr in self.compiled.attributes(t) {
            doc.set_attr(node, attr.clone(), "0");
        }
        if pending.is_empty() && spine.is_none() && avoid.is_empty() {
            self.gen.expand_minimal(doc, node);
            return Some(());
        }
        let mut dem: CoverDemand<Sym> = CoverDemand::none();
        for (s, _) in pending {
            if avoid.contains(s) {
                return None; // compiler treats this as Dead; mirror it
            }
            dem = dem.require(*s, 1);
        }
        if let Some((s, _)) = spine {
            if pending.iter().any(|(d, _)| *d == s) || avoid.contains(&s) {
                return None; // compiler bails / empties here; mirror it
            }
            dem = dem.require(s, 1);
        }
        if !avoid.is_empty() {
            let allowed = self
                .compiled
                .elements()
                .filter(|e| !avoid.contains(e))
                .collect();
            dem = dem.restrict_to(allowed);
        }
        let word = shortest_covering_word(self.compiled.automaton(t), &dem)?;
        self.nodes += word.len() + 1;
        if self.nodes > MAX_WITNESS_NODES {
            return None;
        }
        let mut spine_done = false;
        let mut claimed = vec![false; pending.len()];
        for &cs in &word {
            let child = doc.add_child(node, self.compiled.name(cs));
            if let Some((s, rest)) = spine {
                if cs == s && !spine_done {
                    spine_done = true;
                    self.realize(doc, child, cs, Vec::new(), Vec::new(), rest)?;
                    continue;
                }
            }
            let mut matched = false;
            for (j, (d, rest)) in pending.iter().enumerate() {
                if *d == cs && !claimed[j] {
                    claimed[j] = true;
                    self.realize(doc, child, cs, Vec::new(), Vec::new(), rest)?;
                    matched = true;
                    break;
                }
            }
            if !matched {
                self.gen.expand_minimal(doc, child);
            }
        }
        (claimed.iter().all(|&c| c) && (spine.is_none() || spine_done)).then_some(())
    }
}
