//! Witness realisation for satisfiable compiled programs: the paper's `Tree(p, D)`
//! construction, steered by the same feasibility analysis the compiler used.
//!
//! The realiser walks the canonical query's atom stream top-down.  At each spine node
//! it accumulates the qualifier demands pending there, then expands the node with a
//! shortest children word jointly covering the spine child and one child per demand
//! (distinct occurrences — the compiler's disjointness discipline guarantees a child
//! can serve only one role).  Demand children recursively realise their qualifier
//! remainder, the spine child continues the query, and every other child expands to a
//! minimal conforming subtree.  Choice points (wildcard/descendant targets, union
//! branches) are resolved by type-level feasibility images, which is sound because
//! subtrees under distinct children realise independently under a DTD.
//!
//! This is the cold path — it runs once per `(DTD, canonical query)` cache fill — so
//! allocation is fine here; only [`crate::vm::run`] is allocation-free.

use crate::compile::{flatten, Analysis, Atom, CompileLimits, Conj};
use crate::program::DecisionProgram;
use std::collections::VecDeque;
use xpsat_automata::{shortest_covering_word, CoverDemand};
use xpsat_dtd::{CompiledDtd, DtdArtifacts, Sym, TreeGenerator};
use xpsat_xmltree::{Document, NodeId};
use xpsat_xpath::{Path, Qualifier};

/// Nodes a witness may create before the realiser gives up (hostile-input guard).
const MAX_WITNESS_NODES: usize = 50_000;

/// Build a conforming document on which the program's canonical query selects a node.
/// `None` sends the caller to the AST solver (never expected on a sound SAT replay,
/// but the fallback keeps failures graceful).
pub(crate) fn build(program: &DecisionProgram, artifacts: &DtdArtifacts) -> Option<Document> {
    if program.const_unsat {
        return None;
    }
    let compiled = artifacts.compiled()?;
    let atoms = flatten(&program.canon)?;
    let limits = CompileLimits::default();
    let mut b = Builder {
        an: Analysis::new(compiled, &limits),
        gen: compiled.generator(),
        compiled,
        nodes: 0,
    };
    let root_sym = compiled.root();
    let mut doc = Document::new(compiled.name(root_sym));
    let root = doc.root();
    b.realize(&mut doc, root, root_sym, Vec::new(), &atoms)?;
    Some(doc)
}

/// A qualifier demand pending at the current spine node: the demanded child label and
/// the flattened remainder of the qualifier path from that child.
type Pending<'a> = (Sym, Vec<Atom<'a>>);

struct Builder<'a> {
    an: Analysis<'a>,
    gen: &'a TreeGenerator,
    compiled: &'a CompiledDtd,
    nodes: usize,
}

impl<'a> Builder<'a> {
    /// Realise `atoms` from `node` (of type `t`), with `pending` demands already owed
    /// at this node.  Invariant: the instance is type-feasible (checked at every
    /// choice point), and `node` is childless until exactly one `expand` call.
    fn realize(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        t: Sym,
        mut pending: Vec<Pending<'a>>,
        atoms: &[Atom<'a>],
    ) -> Option<()> {
        let mut i = 0;
        loop {
            match atoms.get(i) {
                None => return self.expand(doc, node, t, &pending, None),
                Some(Atom::Qual(conjs)) => {
                    for c in conjs {
                        let pend_syms: Vec<Sym> = pending.iter().map(|p| p.0).collect();
                        match self.an.analyze_conjunct(&pend_syms, c)? {
                            Conj::True => {}
                            Conj::Dead => return None,
                            Conj::Restrict(s) => {
                                if t != s {
                                    return None;
                                }
                            }
                            Conj::Pend(s) => {
                                let Qualifier::Path(p) = c else { return None };
                                let qatoms = flatten(p)?;
                                pending.push((s, qatoms[1..].to_vec()));
                            }
                        }
                    }
                    i += 1;
                }
                Some(Atom::Sym(s)) => {
                    return self.expand(doc, node, t, &pending, Some((*s, &atoms[i + 1..])));
                }
                Some(Atom::Step(step)) => match step {
                    Path::Label(name) => {
                        let s = self.compiled.elem_sym(name)?;
                        return self.expand(doc, node, t, &pending, Some((s, &atoms[i + 1..])));
                    }
                    Path::Wildcard => {
                        if !pending.is_empty() {
                            return None; // compiler bails here; mirror it
                        }
                        let rest = &atoms[i + 1..];
                        let u = self.pick_feasible(self.compiled.graph().succ_bits(t), rest)?;
                        return self.expand(doc, node, t, &pending, Some((u, rest)));
                    }
                    Path::DescendantOrSelf => {
                        if !pending.is_empty() {
                            return None;
                        }
                        let rest = &atoms[i + 1..];
                        if self.an.feasible_from(t, rest)? {
                            i += 1; // self satisfies the descendant step
                            continue;
                        }
                        let u = self.pick_feasible(self.compiled.graph().reach_bits(t), rest)?;
                        let chain = self.graph_path(t, u)?;
                        let mut cont: Vec<Atom<'a>> = chain.into_iter().map(Atom::Sym).collect();
                        cont.extend_from_slice(rest);
                        return self.realize(doc, node, t, pending, &cont);
                    }
                    _ => return None,
                },
                Some(Atom::Branch(branches)) => {
                    let rest = &atoms[i + 1..];
                    let pend_syms: Vec<Sym> = pending.iter().map(|p| p.0).collect();
                    for b in branches {
                        let mut cont: Vec<Atom<'a>> = b.clone();
                        cont.extend_from_slice(rest);
                        let start = self.an.singleton(t);
                        let img = self.an.image(&start, &cont, &pend_syms, true)?;
                        if !img.is_empty() {
                            return self.realize(doc, node, t, pending, &cont);
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// First type in `candidates` from which `rest` is feasible.
    fn pick_feasible(
        &mut self,
        candidates: &xpsat_automata::BitSet,
        rest: &[Atom<'a>],
    ) -> Option<Sym> {
        let cand: Vec<Sym> = candidates.iter().map(Sym::from_index).collect();
        for u in cand {
            if self.an.feasible_from(u, rest)? {
                return Some(u);
            }
        }
        None
    }

    /// A type path `from → … → to` along DTD-graph edges, excluding `from`.
    fn graph_path(&self, from: Sym, to: Sym) -> Option<Vec<Sym>> {
        let graph = self.compiled.graph();
        let n = self.compiled.num_elements();
        let mut prev: Vec<Option<Sym>> = vec![None; n];
        let mut queue = VecDeque::new();
        queue.push_back(from);
        'bfs: while let Some(v) = queue.pop_front() {
            for w in graph.succ_bits(v).iter().map(Sym::from_index) {
                if prev[w.index()].is_none() {
                    prev[w.index()] = Some(v);
                    if w == to {
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        prev[to.index()]?;
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.index()] {
            if p == from {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Expand `node` with a children word covering every pending demand plus the spine
    /// child, realise those children, and minimally expand the fillers.
    fn expand(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        t: Sym,
        pending: &[Pending<'a>],
        spine: Option<(Sym, &[Atom<'a>])>,
    ) -> Option<()> {
        for attr in self.compiled.attributes(t) {
            doc.set_attr(node, attr.clone(), "0");
        }
        if pending.is_empty() && spine.is_none() {
            self.gen.expand_minimal(doc, node);
            return Some(());
        }
        let mut dem: CoverDemand<Sym> = CoverDemand::none();
        for (s, _) in pending {
            dem = dem.require(*s, 1);
        }
        if let Some((s, _)) = spine {
            if pending.iter().any(|(d, _)| *d == s) {
                return None; // compiler bails on this collision; mirror it
            }
            dem = dem.require(s, 1);
        }
        let word = shortest_covering_word(self.compiled.automaton(t), &dem)?;
        self.nodes += word.len() + 1;
        if self.nodes > MAX_WITNESS_NODES {
            return None;
        }
        let mut spine_done = false;
        let mut claimed = vec![false; pending.len()];
        for &cs in &word {
            let child = doc.add_child(node, self.compiled.name(cs));
            if let Some((s, rest)) = spine {
                if cs == s && !spine_done {
                    spine_done = true;
                    self.realize(doc, child, cs, Vec::new(), rest)?;
                    continue;
                }
            }
            let mut matched = false;
            for (j, (d, rest)) in pending.iter().enumerate() {
                if *d == cs && !claimed[j] {
                    claimed[j] = true;
                    self.realize(doc, child, cs, Vec::new(), rest)?;
                    matched = true;
                    break;
                }
            }
            if !matched {
                self.gen.expand_minimal(doc, child);
            }
        }
        (claimed.iter().all(|&c| c) && (spine.is_none() || spine_done)).then_some(())
    }
}
