//! # xpsat-plan — decision-program compiler and VM
//!
//! The dispatch layer in `xpsat-core` re-interprets the query AST on every decide.
//! This crate lowers a `(query, DTD)` pair **once** into a flat [`DecisionProgram`]
//! that a tiny bitset [`vm`] replays allocation-free, and it defines the structural
//! [`canon`]ical form whose hash lets caches share verdicts across every spelling of
//! the same query — including across tenants.
//!
//! * [`canon`] — canonicalisation up to qualifier reordering, associativity and
//!   trivial rewrites; canonical (FNV) and label-erased structural hashes.
//! * [`compile`](mod@compile) — lowering to straight-line bitset ops with qualifier
//!   demands baked into joint content-model cover masks; bails to the AST solver
//!   outside its fragment.
//! * [`vm`] — the replay loop plus witness-carrying [`vm::decide`].
//!
//! ```
//! use xpsat_dtd::{parse_dtd, DtdArtifacts};
//! use xpsat_plan::{canonicalize, compile, CompileLimits, vm};
//! use xpsat_xpath::parse_path;
//!
//! let dtd = parse_dtd("r -> a; a -> b, c; b -> #; c -> #;").unwrap();
//! let artifacts = DtdArtifacts::build(&dtd);
//! let canon = canonicalize(&parse_path("a[c and b]").unwrap());
//! let program = compile(&artifacts, &canon, &CompileLimits::default()).unwrap();
//! let mut scratch = vm::Scratch::new();
//! let budget = xpsat_core::Budget::unlimited();
//! let decision = vm::decide(&program, &artifacts, &mut scratch, &budget).unwrap();
//! assert_eq!(decision.result.is_satisfiable(), Some(true));
//! ```

pub mod canon;
pub mod compile;
mod opt;
pub mod program;
pub mod vm;
mod witness;

pub use canon::{canonicalize, fnv64, structural_hash, CanonicalQuery};
pub use compile::{compile, compile_with_reason, BailReason, CompileLimits};
pub use program::{DecisionProgram, MaskId, Op, Reg, TableId};
pub use vm::Scratch;
