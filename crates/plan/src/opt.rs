//! Post-emission program optimisation.
//!
//! Disjunction expansion re-emits the shared continuation once per alternative, so raw
//! programs carry duplicated masks and subcomputations that feed nothing (e.g. an
//! alternative whose image is statically empty).  Three cheap passes run before a
//! program leaves the compiler:
//!
//! 1. **constant folding** — ops whose result is provably empty from the program text
//!    alone (empty `ok`/`mask` masks, all-empty table rows, empty sources) collapse to
//!    [`Op::Empty`];
//! 2. **dead-code elimination** — ops not reachable from the `out` register are
//!    dropped and registers renumbered (the single-assignment `op i writes register i`
//!    invariant is restored, which also shrinks the VM scratch file);
//! 3. **mask/table GC** — masks and tables no longer referenced are dropped and
//!    equal masks deduplicated.
//!
//! All passes preserve replay semantics exactly: they only remove work the VM would
//! have done to produce sets that cannot influence the final image.

use crate::program::{DecisionProgram, MaskId, Op, Reg, TableId};
use std::collections::HashMap;

/// Optimise `p` (see module docs).  Idempotent; `const_unsat` programs pass through.
pub(crate) fn optimize(mut p: DecisionProgram) -> DecisionProgram {
    if p.const_unsat || p.ops.is_empty() {
        return p;
    }

    // Pass 1: fold statically-empty results to `Op::Empty`.
    let n = p.ops.len();
    let mut empty = vec![false; n];
    for i in 0..n {
        let e = match p.ops[i] {
            Op::Root { .. } => false,
            Op::Empty { .. } => true,
            Op::Child { src, ok, .. } => empty[src as usize] || p.masks[ok as usize].is_empty(),
            Op::AnyChild { src, .. } | Op::DescOrSelf { src, .. } => empty[src as usize],
            Op::Intersect { src, mask, .. } => {
                empty[src as usize] || p.masks[mask as usize].is_empty()
            }
            Op::Union { a, b, .. } => empty[a as usize] && empty[b as usize],
            Op::Table { src, table, .. } => {
                empty[src as usize] || p.tables[table as usize].iter().all(|row| row.is_empty())
            }
        };
        empty[i] = e;
        if e {
            p.ops[i] = Op::Empty { dst: i as Reg };
        }
    }

    // Pass 2: liveness from `out`, then compact with renumbering.  Sources always
    // precede their op (single assignment), so one reverse sweep suffices.
    let mut live = vec![false; n];
    live[p.out as usize] = true;
    for i in (0..n).rev() {
        if !live[i] {
            continue;
        }
        match p.ops[i] {
            Op::Root { .. } | Op::Empty { .. } => {}
            Op::Child { src, .. }
            | Op::AnyChild { src, .. }
            | Op::DescOrSelf { src, .. }
            | Op::Intersect { src, .. }
            | Op::Table { src, .. } => live[src as usize] = true,
            Op::Union { a, b, .. } => {
                live[a as usize] = true;
                live[b as usize] = true;
            }
        }
    }
    let mut remap = vec![0 as Reg; n];
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        if !live[i] {
            continue;
        }
        let dst = ops.len() as Reg;
        remap[i] = dst;
        let op = match p.ops[i] {
            Op::Root { .. } => Op::Root { dst },
            Op::Empty { .. } => Op::Empty { dst },
            Op::Child { src, sym, ok, .. } => Op::Child {
                src: remap[src as usize],
                dst,
                sym,
                ok,
            },
            Op::AnyChild { src, .. } => Op::AnyChild {
                src: remap[src as usize],
                dst,
            },
            Op::DescOrSelf { src, .. } => Op::DescOrSelf {
                src: remap[src as usize],
                dst,
            },
            Op::Intersect { src, mask, .. } => Op::Intersect {
                src: remap[src as usize],
                dst,
                mask,
            },
            Op::Union { a, b, .. } => Op::Union {
                a: remap[a as usize],
                b: remap[b as usize],
                dst,
            },
            Op::Table { src, table, .. } => Op::Table {
                src: remap[src as usize],
                dst,
                table,
            },
        };
        ops.push(op);
    }
    p.out = remap[p.out as usize];
    p.ops = ops;

    // Pass 3: GC + dedup masks (by content) and GC tables.
    let mut mask_of: HashMap<Vec<usize>, MaskId> = HashMap::new();
    let mut masks = Vec::new();
    let mut table_remap: HashMap<TableId, TableId> = HashMap::new();
    let mut tables = Vec::new();
    for op in &mut p.ops {
        match op {
            Op::Child { ok, .. } => *ok = intern_mask(&p.masks, *ok, &mut mask_of, &mut masks),
            Op::Intersect { mask, .. } => {
                *mask = intern_mask(&p.masks, *mask, &mut mask_of, &mut masks)
            }
            Op::Table { table, .. } => {
                *table = *table_remap.entry(*table).or_insert_with(|| {
                    let id = tables.len() as TableId;
                    tables.push(p.tables[*table as usize].clone());
                    id
                });
            }
            _ => {}
        }
    }
    p.masks = masks;
    p.tables = tables;
    p
}

fn intern_mask(
    old: &[xpsat_automata::BitSet],
    id: MaskId,
    seen: &mut HashMap<Vec<usize>, MaskId>,
    out: &mut Vec<xpsat_automata::BitSet>,
) -> MaskId {
    let key: Vec<usize> = old[id as usize].iter().collect();
    *seen.entry(key).or_insert_with(|| {
        let new = out.len() as MaskId;
        out.push(old[id as usize].clone());
        new
    })
}
