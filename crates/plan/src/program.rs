//! The flat decision program: what [`crate::compile`] produces and [`crate::vm`] runs.
//!
//! A program is a straight-line sequence of bitset ops over element types, specialised
//! at compile time to one `(canonical query, DtdArtifacts)` pair.  Registers are
//! single-assignment (op `i` writes register `i`), masks are precomputed bitsets over
//! element types — notably the joint content-model cover masks that encode qualifier
//! demands — so replaying a program is a handful of word-parallel bitset operations
//! with no AST walking and no allocation.

use xpsat_automata::BitSet;
use xpsat_dtd::Sym;
use xpsat_xpath::Path;

/// Register index (single-assignment: op `i` writes register `i`).
pub type Reg = u16;

/// Index into [`DecisionProgram::masks`].
pub type MaskId = u16;

/// Index into [`DecisionProgram::tables`].
pub type TableId = u16;

/// One bitset instruction over element-type sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `dst = {root type}`.
    Root { dst: Reg },
    /// `dst = ∅` (an undeclared label or an unsatisfiable qualifier was met).
    Empty { dst: Reg },
    /// Child step to label `sym`: `dst = {sym}` if `src ∩ masks[ok] ≠ ∅` else `∅`.
    /// `ok` holds the types whose content model jointly covers `sym` plus every
    /// qualifier demand pending at this step.
    Child {
        src: Reg,
        dst: Reg,
        sym: Sym,
        ok: MaskId,
    },
    /// Wildcard step: `dst = ⋃ {succ(t) : t ∈ src}`.
    AnyChild { src: Reg, dst: Reg },
    /// Descendant-or-self step: `dst = src ∪ ⋃ {reach(t) : t ∈ src}`.
    DescOrSelf { src: Reg, dst: Reg },
    /// `dst = src ∩ masks[mask]` (label tests and trailing-demand resolution).
    Intersect { src: Reg, dst: Reg, mask: MaskId },
    /// `dst = a ∪ b` (join of union branches).
    Union { a: Reg, b: Reg, dst: Reg },
    /// Table-driven step: `dst = ⋃ {tables[table][t] : t ∈ src}`.  Used for fused
    /// sibling chains: row `t` holds the element types reachable at the chain's end
    /// inside the content model of parent type `t`.
    Table { src: Reg, dst: Reg, table: TableId },
}

/// A compiled decision program for one `(canonical query, DTD artifacts)` pair.
#[derive(Debug, Clone)]
pub struct DecisionProgram {
    /// Straight-line instruction sequence; op `i` writes register `i`.
    pub ops: Vec<Op>,
    /// Precomputed element-type masks referenced by [`Op::Child`] / [`Op::Intersect`].
    pub masks: Vec<BitSet>,
    /// Per-parent-type target rows referenced by [`Op::Table`] (one row per element
    /// type; empty for programs without sibling chains).
    pub tables: Vec<Vec<BitSet>>,
    /// Number of element types in the compiled DTD (bitset capacity).
    pub num_elements: usize,
    /// Register holding the final image; the instance is satisfiable iff it is
    /// nonempty.
    pub out: Reg,
    /// `true` when the DTD's root type is non-terminating: no document conforms, so
    /// the program is the constant `Unsatisfiable` and `ops` is empty.
    pub const_unsat: bool,
    /// The canonical query the program was compiled from (drives witness realisation).
    pub canon: Path,
    /// [`xpsat_dtd::DtdArtifacts::uid`] of the compile target; replaying against other
    /// artifacts is refused.
    pub dtd_uid: u64,
}

impl DecisionProgram {
    /// Number of instructions (the "compiled program size" reported by `classify`).
    pub fn size(&self) -> usize {
        self.ops.len()
    }

    /// Number of registers a [`crate::vm::Scratch`] needs to replay this program.
    pub fn num_regs(&self) -> usize {
        self.ops.len()
    }
}
