//! Structural canonicalisation of parsed XPath queries.
//!
//! Two spellings that differ only by associativity, qualifier order, duplicate union
//! branches, filter placement along a composition, or trivially-true filters denote the
//! same node relation.  [`canonicalize`] maps every member of such an equivalence class
//! to one representative, so caches can key on the class instead of the spelling:
//!
//! * compositions are flattened, `ε` steps dropped, and rebuilt right-associated;
//! * union branches are canonicalised, sorted and deduplicated;
//! * `p[q1][q2]` becomes `p[q1 and q2]`, and a filter over a composition attaches to
//!   the last step (`(a/b)[q]` ≡ `a/(b[q])`);
//! * conjunctions and disjunctions are flattened, sorted and deduplicated, `not(not q)`
//!   collapses, disjunctions of path qualifiers merge into one union qualifier, and
//!   trivially-true conjuncts (`[.]`, `[descendant-or-self]`, …) are dropped.
//!
//! Two hashes come out of the canonical form: [`canonical_hash`] (FNV-1a of the
//! canonical text — the cross-tenant cache key) and [`structural_hash`], which erases
//! labels and combines commutative children order-insensitively, so queries that are
//! isomorphic up to step labels collide intentionally (the dedup-opportunity signal
//! reported by `classify`).

use xpsat_xpath::{CmpOp, Path, Qualifier};

/// A query together with its canonical form and both hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// The canonical representative of the query's equivalence class.
    pub path: Path,
    /// Display rendering of the canonical form (the text hashed by `canonical_hash`).
    pub text: String,
    /// FNV-1a of `text`: equal exactly when the canonical forms are equal.
    pub canonical_hash: u64,
    /// Label-erased, commutativity-insensitive hash of the canonical form.
    pub structural_hash: u64,
}

impl CanonicalQuery {
    /// Canonicalise `path` and compute both hashes.
    pub fn of(path: &Path) -> CanonicalQuery {
        let canon = canonicalize(path);
        let text = canon.to_string();
        let canonical_hash = fnv64(&text);
        let structural_hash = structural_hash(&canon);
        CanonicalQuery {
            path: canon,
            text,
            canonical_hash,
            structural_hash,
        }
    }
}

/// Rewrite `path` to the canonical representative of its equivalence class.
pub fn canonicalize(path: &Path) -> Path {
    let mut atoms = Vec::new();
    push_canon(path, &mut atoms);
    rebuild_seq(atoms)
}

/// FNV-1a over the bytes of `s` (the canonical-text hash).
pub fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Is `p` trivially nonempty from *every* context node of *every* document?  Only such
/// paths may be dropped as filter conjuncts.  Conservative: `false` means "don't know".
pub fn path_is_trivial(p: &Path) -> bool {
    match p {
        Path::Empty
        | Path::DescendantOrSelf
        | Path::AncestorOrSelf
        | Path::FollowingSiblingOrSelf
        | Path::PrecedingSiblingOrSelf => true,
        Path::Seq(a, b) => path_is_trivial(a) && path_is_trivial(b),
        Path::Union(a, b) => path_is_trivial(a) || path_is_trivial(b),
        Path::Filter(p, q) => path_is_trivial(p) && qual_is_trivial(q),
        _ => false,
    }
}

/// Is `q` trivially true at every node?  Conservative companion of [`path_is_trivial`].
pub fn qual_is_trivial(q: &Qualifier) -> bool {
    match q {
        Qualifier::Path(p) => path_is_trivial(p),
        Qualifier::And(a, b) => qual_is_trivial(a) && qual_is_trivial(b),
        Qualifier::Or(a, b) => qual_is_trivial(a) || qual_is_trivial(b),
        _ => false,
    }
}

/// Append the canonical atoms of `path` (non-`Seq`, non-`Empty` steps) to `out`.
fn push_canon(path: &Path, out: &mut Vec<Path>) {
    match path {
        Path::Empty => {}
        Path::Seq(a, b) => {
            push_canon(a, out);
            push_canon(b, out);
        }
        Path::Union(_, _) => {
            let mut branches = Vec::new();
            collect_union(path, &mut branches);
            let mut canon: Vec<Path> = Vec::new();
            for b in branches {
                // Canonicalising a branch can surface a new top-level union (e.g. from
                // `ε/(a|b)`); splice such branches back in rather than nesting them.
                let cb = canonicalize(b);
                if matches!(cb, Path::Union(_, _)) {
                    collect_union_owned(cb, &mut canon);
                } else {
                    canon.push(cb);
                }
            }
            canon.sort();
            canon.dedup();
            if canon.len() == 1 {
                push_canon(&canon.pop().unwrap(), out);
            } else {
                out.push(rebuild_union(canon));
            }
        }
        Path::Filter(p, q) => {
            push_canon(p, out);
            let mut conjs = canon_conjuncts(q);
            if conjs.is_empty() {
                return; // trivially-true filter
            }
            // Attach the filter to the last step of the flattened composition, merging
            // with a filter already sitting there.
            match out.pop() {
                None => out.push(Path::Filter(
                    Box::new(Path::Empty),
                    Box::new(rebuild_and(conjs)),
                )),
                Some(Path::Filter(base, q0)) => {
                    collect_and_owned(*q0, &mut conjs);
                    conjs.sort();
                    conjs.dedup();
                    out.push(Path::Filter(base, Box::new(rebuild_and(conjs))));
                }
                Some(atom) => out.push(Path::Filter(Box::new(atom), Box::new(rebuild_and(conjs)))),
            }
        }
        step => out.push(step.clone()),
    }
}

fn collect_union<'a>(p: &'a Path, out: &mut Vec<&'a Path>) {
    match p {
        Path::Union(a, b) => {
            collect_union(a, out);
            collect_union(b, out);
        }
        other => out.push(other),
    }
}

fn collect_union_owned(p: Path, out: &mut Vec<Path>) {
    match p {
        Path::Union(a, b) => {
            collect_union_owned(*a, out);
            collect_union_owned(*b, out);
        }
        other => out.push(other),
    }
}

fn collect_and<'a>(q: &'a Qualifier, out: &mut Vec<&'a Qualifier>) {
    match q {
        Qualifier::And(a, b) => {
            collect_and(a, out);
            collect_and(b, out);
        }
        other => out.push(other),
    }
}

fn collect_and_owned(q: Qualifier, out: &mut Vec<Qualifier>) {
    match q {
        Qualifier::And(a, b) => {
            collect_and_owned(*a, out);
            collect_and_owned(*b, out);
        }
        other => out.push(other),
    }
}

fn collect_or<'a>(q: &'a Qualifier, out: &mut Vec<&'a Qualifier>) {
    match q {
        Qualifier::Or(a, b) => {
            collect_or(a, out);
            collect_or(b, out);
        }
        other => out.push(other),
    }
}

/// The sorted, deduplicated canonical conjuncts of `q` with trivially-true ones
/// dropped.  An empty result means `q` is trivially true.
fn canon_conjuncts(q: &Qualifier) -> Vec<Qualifier> {
    let mut raw = Vec::new();
    collect_and(q, &mut raw);
    let mut out = Vec::new();
    for c in raw {
        if let Some(cq) = canon_qual(c) {
            out.push(cq);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Canonicalise one qualifier; `None` means trivially true.
fn canon_qual(q: &Qualifier) -> Option<Qualifier> {
    match q {
        Qualifier::Path(p) => {
            let cp = canonicalize(p);
            if path_is_trivial(&cp) {
                None
            } else {
                Some(Qualifier::Path(cp))
            }
        }
        Qualifier::LabelIs(l) => Some(Qualifier::LabelIs(l.clone())),
        Qualifier::AttrCmp {
            path,
            attr,
            op,
            value,
        } => Some(Qualifier::AttrCmp {
            path: canonicalize(path),
            attr: attr.clone(),
            op: *op,
            value: value.clone(),
        }),
        Qualifier::AttrJoin {
            left,
            left_attr,
            op,
            right,
            right_attr,
        } => Some(Qualifier::AttrJoin {
            left: canonicalize(left),
            left_attr: left_attr.clone(),
            op: *op,
            right: canonicalize(right),
            right_attr: right_attr.clone(),
        }),
        Qualifier::And(_, _) => {
            let conjs = canon_conjuncts(q);
            if conjs.is_empty() {
                None
            } else {
                Some(rebuild_and(conjs))
            }
        }
        Qualifier::Or(_, _) => {
            let mut raw = Vec::new();
            collect_or(q, &mut raw);
            let mut paths: Vec<Path> = Vec::new();
            let mut others: Vec<Qualifier> = Vec::new();
            for d in raw {
                match canon_qual(d) {
                    None => return None, // one trivially-true disjunct makes the Or true
                    Some(Qualifier::Path(p)) => paths.push(p),
                    Some(cq) => others.push(cq),
                }
            }
            // `[p1 or p2]` tests nonemptiness of a union: merge path disjuncts into one
            // union qualifier so `[a or b]` and `[a|b]` share a representative.
            if !paths.is_empty() {
                let merged = canonicalize(&Path::union_all(paths));
                if path_is_trivial(&merged) {
                    return None;
                }
                others.push(Qualifier::Path(merged));
            }
            others.sort();
            others.dedup();
            if others.len() == 1 {
                others.pop()
            } else {
                Some(rebuild_or(others))
            }
        }
        Qualifier::Not(inner) => match canon_qual(inner) {
            // `not(true)` is unsatisfiable but there is no false constant; keep the
            // shape with a canonical trivial body.
            None => Some(Qualifier::Not(Box::new(Qualifier::Path(Path::Empty)))),
            // `not(not q)` collapses to `q` — and when the inner negation was the
            // canonical `not(true)` shape above, the double negation is itself
            // trivially true and must drop like any other trivial conjunct.
            Some(Qualifier::Not(x)) => {
                if qual_is_trivial(&x) {
                    None
                } else {
                    Some(*x)
                }
            }
            Some(cq) => Some(Qualifier::Not(Box::new(cq))),
        },
    }
}

fn rebuild_seq(atoms: Vec<Path>) -> Path {
    let mut it = atoms.into_iter().rev();
    let Some(last) = it.next() else {
        return Path::Empty;
    };
    it.fold(last, |acc, a| Path::Seq(Box::new(a), Box::new(acc)))
}

fn rebuild_union(branches: Vec<Path>) -> Path {
    let mut it = branches.into_iter().rev();
    let last = it.next().expect("union of at least one branch");
    it.fold(last, |acc, b| Path::Union(Box::new(b), Box::new(acc)))
}

fn rebuild_and(conjs: Vec<Qualifier>) -> Qualifier {
    let mut it = conjs.into_iter().rev();
    let last = it.next().expect("conjunction of at least one qualifier");
    it.fold(last, |acc, c| Qualifier::And(Box::new(c), Box::new(acc)))
}

fn rebuild_or(disjs: Vec<Qualifier>) -> Qualifier {
    let mut it = disjs.into_iter().rev();
    let last = it.next().expect("disjunction of at least one qualifier");
    it.fold(last, |acc, d| Qualifier::Or(Box::new(d), Box::new(acc)))
}

// ---- structural hash --------------------------------------------------------------

/// Label-erased hash of a canonical form: step/attribute names contribute nothing, and
/// the children of commutative nodes (`Union`, `and`, `or`) combine by wrapping sum, so
/// any two queries isomorphic up to labels hash equal regardless of how the sort order
/// interleaved their commutative children.
pub fn structural_hash(canonical: &Path) -> u64 {
    mix64(hash_path(canonical) ^ 0x5851_f42d_4c95_7f2d)
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

fn hash_path(p: &Path) -> u64 {
    match p {
        Path::Empty => mix64(1),
        Path::Label(_) => mix64(2),
        Path::Wildcard => mix64(3),
        Path::DescendantOrSelf => mix64(4),
        Path::Parent => mix64(5),
        Path::AncestorOrSelf => mix64(6),
        Path::NextSibling => mix64(7),
        Path::FollowingSiblingOrSelf => mix64(8),
        Path::PrevSibling => mix64(9),
        Path::PrecedingSiblingOrSelf => mix64(10),
        Path::Seq(a, b) => ordered(11, hash_path(a), hash_path(b)),
        Path::Union(_, _) => {
            let mut branches = Vec::new();
            collect_union(p, &mut branches);
            commutative(12, branches.iter().map(|b| hash_path(b)))
        }
        Path::Filter(base, q) => ordered(13, hash_path(base), hash_qual(q)),
    }
}

fn hash_qual(q: &Qualifier) -> u64 {
    match q {
        Qualifier::Path(p) => ordered(20, hash_path(p), 0),
        Qualifier::LabelIs(_) => mix64(21),
        Qualifier::AttrCmp { path, op, .. } => ordered(22, hash_path(path), hash_op(*op)),
        Qualifier::AttrJoin {
            left, op, right, ..
        } => ordered(
            23,
            hash_path(left),
            ordered(24, hash_op(*op), hash_path(right)),
        ),
        Qualifier::And(_, _) => {
            let mut conjs = Vec::new();
            collect_and(q, &mut conjs);
            commutative(25, conjs.iter().map(|c| hash_qual(c)))
        }
        Qualifier::Or(_, _) => {
            let mut disjs = Vec::new();
            collect_or(q, &mut disjs);
            commutative(26, disjs.iter().map(|d| hash_qual(d)))
        }
        Qualifier::Not(inner) => ordered(27, hash_qual(inner), 0),
    }
}

fn hash_op(op: CmpOp) -> u64 {
    mix64(0x40 + op as u64)
}

fn ordered(tag: u64, a: u64, b: u64) -> u64 {
    mix64(
        mix64(tag)
            .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(b.rotate_left(31)),
    )
}

fn commutative(tag: u64, children: impl Iterator<Item = u64>) -> u64 {
    let mut acc = 0u64;
    let mut n = 0u64;
    for h in children {
        acc = acc.wrapping_add(mix64(h));
        n += 1;
    }
    mix64(mix64(tag).wrapping_add(acc).wrapping_add(n.rotate_left(17)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpsat_xpath::parse_path;

    fn canon(s: &str) -> Path {
        canonicalize(&parse_path(s).expect("parse"))
    }

    #[test]
    fn qualifier_order_is_normalised() {
        assert_eq!(canon("a[b and c]/d"), canon("a[c and b]/d"));
        assert_eq!(canon("a[b][c]"), canon("a[c and b]"));
    }

    #[test]
    fn double_negation_of_a_trivial_qualifier_drops_entirely() {
        // `not(not(**))` ≡ `**` ≡ true: the collapsed double negation must drop
        // like any other trivially-true conjunct, not survive as `[.]`.
        assert_eq!(canon("a[not(not(**))]"), canon("a"));
        assert_eq!(canon("a[not(not(b))]"), canon("a[b]"));
        // Single negation of a trivial body stays: `not(true)` is unsatisfiable.
        assert_ne!(canon("a[not(**)]"), canon("a"));
    }

    #[test]
    fn composition_flattens_and_filter_attaches_to_last_step() {
        assert_eq!(canon("(a/b)[c]"), canon("a/b[c]"));
        assert_eq!(canon("a/(b/c)"), canon("(a/b)/c"));
        assert_eq!(canon("./a/."), canon("a"));
    }

    #[test]
    fn union_sorts_and_dedups() {
        assert_eq!(canon("b|a"), canon("a|b"));
        assert_eq!(canon("a|a|b"), canon("a|b"));
        assert_eq!(canon("a[b or c]"), canon("a[c or b]"));
        assert_eq!(canon("a[b or c]"), canon("a[b|c]"));
    }

    #[test]
    fn trivial_filters_drop_and_double_negation_collapses() {
        assert_eq!(canon("a[.]"), canon("a"));
        assert_eq!(canon("a[**]"), canon("a"));
        assert_eq!(canon("a[not(not(b))]"), canon("a[b]"));
        assert_eq!(canon("a[b and .]"), canon("a[b]"));
    }

    #[test]
    fn canonical_hash_tracks_canonical_form() {
        let x = CanonicalQuery::of(&parse_path("a[b and c]/d").unwrap());
        let y = CanonicalQuery::of(&parse_path("a[c][b]/d").unwrap());
        let z = CanonicalQuery::of(&parse_path("a[c]/d").unwrap());
        assert_eq!(x.canonical_hash, y.canonical_hash);
        assert_eq!(x.path, y.path);
        assert_ne!(x.canonical_hash, z.canonical_hash);
    }

    #[test]
    fn structural_hash_erases_labels_and_commutes() {
        let a = CanonicalQuery::of(&parse_path("a[b/* and c/d]").unwrap());
        let b = CanonicalQuery::of(&parse_path("x[y/z and w/*]").unwrap());
        assert_eq!(a.structural_hash, b.structural_hash);
        let c = CanonicalQuery::of(&parse_path("x[y/z and w]").unwrap());
        assert_ne!(a.structural_hash, c.structural_hash);
    }
}
