//! Protocol error paths, asserted **identically** over both transports: the stdio
//! `serve()` loop and the TCP front-end must produce byte-identical responses for
//! malformed JSON, unknown verbs, oversized lines, bad ids and missing fields — the
//! transport is framing, never semantics.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use xpsat_server::{Bind, Server, ServerConfig};
use xpsat_service::ProtocolServer;

const MAX_LINE: usize = 256;
const DTD: &str = "r -> a*; a -> b?; b -> #;";

/// The shared error-path script: every line is a request, every request draws
/// exactly one response.  The oversized line must exceed [`MAX_LINE`] bytes.
fn script() -> Vec<String> {
    let oversized = format!(
        r#"{{"op":"check","dtd_id":0,"query":"{}"}}"#,
        "a/".repeat(MAX_LINE)
    );
    vec![
        "not json at all".to_string(),
        r#"{"op":"teleport"}"#.to_string(),
        oversized,
        r#"{"op":"check","dtd_id":9,"query":"a"}"#.to_string(),
        r#"{"op":"check","dtd_id":0}"#.to_string(),
        r#"{"op":"batch","dtd_id":0,"queries":["a",42]}"#.to_string(),
        r#"{"op":"register_dtd","dtd":"r -> ("}"#.to_string(),
        // Recovery: the same stream still serves valid requests afterwards.
        format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#),
        r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#.to_string(),
        // Span-carrying parse errors: the error object must locate the fault.
        r#"{"op":"check","dtd_id":0,"query":"a[["}"#.to_string(),
        r#"{"op":"register_dtd","dtd":"r -> a*; a ->"}"#.to_string(),
        // A one-step budget starves the negation fixpoint: structured exhaustion.
        r#"{"op":"check","dtd_id":0,"query":"a[not(b)]","max_steps":1}"#.to_string(),
        // Zero and non-integer deadlines are malformed, not "already expired":
        // refused as invalid_request before any work is admitted.
        r#"{"op":"check","dtd_id":0,"query":"a","deadline_ms":0}"#.to_string(),
        r#"{"op":"batch","dtd_id":0,"queries":["a"],"deadline_ms":-5}"#.to_string(),
    ]
}

fn run_over_stdio(lines: &[String]) -> Vec<String> {
    let mut server = ProtocolServer::new(1);
    server.set_max_line_bytes(MAX_LINE);
    let input = lines.join("\n") + "\n";
    let mut output = Vec::new();
    server.serve(input.as_bytes(), &mut output).expect("serve");
    String::from_utf8(output)
        .expect("utf8 output")
        .lines()
        .map(str::to_string)
        .collect()
}

fn run_over_tcp(lines: &[String]) -> Vec<String> {
    let config = ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        max_line_bytes: MAX_LINE,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).expect("server starts");
    let addr = handle.local_addr().unwrap();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writeln!(writer, "{line}").expect("send");
        writer.flush().expect("flush");
        let mut response = String::new();
        assert!(
            reader.read_line(&mut response).expect("recv") > 0,
            "server closed mid-script on: {line}"
        );
        responses.push(response.trim_end().to_string());
    }
    drop(writer);
    drop(reader);
    handle.shutdown();
    responses
}

#[test]
fn error_paths_are_identical_over_stdio_and_tcp() {
    let lines = script();
    let stdio = run_over_stdio(&lines);
    let tcp = run_over_tcp(&lines);
    assert_eq!(stdio.len(), lines.len(), "one response per request (stdio)");
    assert_eq!(tcp.len(), lines.len(), "one response per request (tcp)");
    for ((request, a), b) in lines.iter().zip(&stdio).zip(&tcp) {
        assert_eq!(a, b, "transports diverged on request: {request}");
    }

    // Spot-check the semantics the script is meant to pin down.
    assert!(stdio[0].contains("malformed request"), "{}", stdio[0]);
    assert!(stdio[1].contains("unknown op 'teleport'"), "{}", stdio[1]);
    assert!(stdio[2].contains(r#""oversized":true"#), "{}", stdio[2]);
    assert!(stdio[3].contains("unknown DTD id 9"), "{}", stdio[3]);
    assert!(
        stdio[4].contains("missing string field 'query'"),
        "{}",
        stdio[4]
    );
    assert!(
        stdio[5].contains("queries[1] is not a string"),
        "{}",
        stdio[5]
    );
    assert!(stdio[6].contains("DTD parse error"), "{}", stdio[6]);
    assert!(stdio[7].contains(r#""dtd_id":0"#), "{}", stdio[7]);
    assert!(
        stdio[8].contains(r#""result":"satisfiable""#),
        "{}",
        stdio[8]
    );
    // Parse errors carry spans locating the fault in the submitted text.
    assert!(stdio[9].contains(r#""kind":"query_parse""#), "{}", stdio[9]);
    assert!(stdio[9].contains(r#""span":{"offset":"#), "{}", stdio[9]);
    assert!(stdio[10].contains(r#""kind":"dtd_parse""#), "{}", stdio[10]);
    assert!(stdio[10].contains(r#""span":{"offset":"#), "{}", stdio[10]);
    // Budget starvation is a structured, non-retryable error, not a hang.
    assert!(
        stdio[11].contains(r#""kind":"resource_exhausted""#),
        "{}",
        stdio[11]
    );
    assert!(stdio[11].contains(r#""retryable":false"#), "{}", stdio[11]);
    // deadline_ms must be a positive integer; zero and negatives are structured
    // invalid_request errors, identical over both transports.
    for response in [&stdio[12], &stdio[13]] {
        assert!(
            response.contains(r#""kind":"invalid_request""#),
            "{response}"
        );
        assert!(response.contains("deadline_ms"), "{response}");
    }
    for response in &stdio[..7] {
        assert!(response.contains(r#""ok":false"#), "{response}");
    }
    for response in [&stdio[9], &stdio[10], &stdio[11], &stdio[12], &stdio[13]] {
        assert!(response.contains(r#""ok":false"#), "{response}");
    }
}

#[test]
fn mid_request_disconnect_does_not_wedge_the_server() {
    let config = ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let handle = Server::start(config).expect("server starts");
    let addr = handle.local_addr().unwrap();

    // Send half a request (no newline) and slam the connection shut.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(br#"{"op":"check","dtd_id":0,"que"#)
            .expect("partial write");
        stream.flush().unwrap();
        // Dropping the stream closes it mid-request.
    }

    // Also disconnect immediately after a complete request, before reading the
    // response the server is about to write.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#).expect("send");
        stream.flush().unwrap();
    }

    // The worker pool survives both: a fresh connection gets full service.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#).unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    assert!(reader.read_line(&mut response).unwrap() > 0);
    assert!(response.contains(r#""ok":true"#), "{response}");
    drop((writer, reader));
    handle.shutdown();
    // Silence the unused-import lint on platforms where Read is otherwise unused.
    fn _uses_read<R: Read>(_: R) {}
}
