//! End-to-end tests of the TCP front-end: protocol round-trips, restart
//! persistence through the artifact store, tenant isolation, deadlines and
//! backpressure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use xpsat_server::{Bind, Server, ServerConfig, ServerHandle};
use xpsat_service::Json;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xpsat-server-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(mut config: ServerConfig) -> (ServerHandle, String) {
    config.bind = Bind::Tcp("127.0.0.1:0".to_string());
    let handle = Server::start(config).expect("server starts");
    let addr = handle.local_addr().expect("tcp server has an address");
    (handle, addr.to_string())
}

/// A blocking request/response client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("recv");
        assert!(n > 0, "server closed the connection");
        Json::parse(response.trim()).expect("response parses")
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send_raw(line);
        self.recv()
    }
}

fn field<'a>(response: &'a Json, key: &str) -> &'a Json {
    response
        .get(key)
        .unwrap_or_else(|| panic!("missing {key} in {response}"))
}

const DTD: &str = "r -> a*; a -> b?; b -> #;";

#[test]
fn register_check_batch_over_tcp() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr);

    let reg = client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    assert_eq!(field(&reg, "ok").as_bool(), Some(true));
    assert_eq!(field(&reg, "dtd_id").as_u64(), Some(0));
    assert_eq!(field(&reg, "cached").as_bool(), Some(false));

    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]","witness":true}"#);
    assert_eq!(field(&check, "result").as_str(), Some("satisfiable"));
    assert!(field(&check, "witness")
        .as_str()
        .unwrap()
        .starts_with("<r>"));

    let batch =
        client.round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a[b]","b/..","c"],"threads":2}"#);
    let results = field(&batch, "results").as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(field(&results[0], "cached").as_bool(), Some(true));
    assert_eq!(field(&results[1], "result").as_str(), Some("unsatisfiable"));

    // Several concurrent connections serve the same workspace.
    let mut other = Client::connect(&addr);
    let check2 = other.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
    assert_eq!(field(&check2, "cached").as_bool(), Some(true));

    let stats = client.round_trip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "classifications").as_u64(), Some(1));
    assert!(
        field(&stats, "server_connections_accepted")
            .as_u64()
            .unwrap()
            >= 2
    );
    handle.shutdown();
}

#[test]
fn restart_serves_artifacts_from_the_store() {
    let dir = scratch_dir("restart");
    let config = ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let (first, addr) = start(config.clone());
    let mut client = Client::connect(&addr);
    let reg = client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    assert_eq!(field(&reg, "cached").as_bool(), Some(false));
    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]","witness":true}"#);
    let witness = field(&check, "witness").as_str().unwrap().to_string();
    drop(client);
    first.shutdown();

    // A fresh process (modelled by a fresh server) finds the compiled artifacts on
    // disk: `cached:true`, no classification/normalisation/automata work, and the
    // decisions are identical.
    let (second, addr) = start(config);
    let mut client = Client::connect(&addr);
    let reg = client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    assert_eq!(field(&reg, "ok").as_bool(), Some(true));
    assert_eq!(field(&reg, "cached").as_bool(), Some(true));
    let stats = client.round_trip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "classifications").as_u64(), Some(0));
    assert_eq!(field(&stats, "artifact_store_hits").as_u64(), Some(1));
    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]","witness":true}"#);
    assert_eq!(field(&check, "witness").as_str(), Some(witness.as_str()));
    drop(client);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_do_not_observe_each_other() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr);

    let reg = client.round_trip(&format!(
        r#"{{"op":"register_dtd","dtd":"{DTD}","tenant":"alice"}}"#
    ));
    assert_eq!(field(&reg, "dtd_id").as_u64(), Some(0));

    // Bob's workspace has no DTD 0; the default tenant is distinct from both.
    let bob = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a","tenant":"bob"}"#);
    assert_eq!(field(&bob, "ok").as_bool(), Some(false));
    let public = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a"}"#);
    assert_eq!(field(&public, "ok").as_bool(), Some(false));
    let alice = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a","tenant":"alice"}"#);
    assert_eq!(field(&alice, "ok").as_bool(), Some(true));

    // Invalid tenant names are rejected without creating workspaces.
    let bad = client.round_trip(r#"{"op":"stats","tenant":"../etc"}"#);
    assert_eq!(field(&bad, "ok").as_bool(), Some(false));
    let error = field(&bad, "error");
    assert_eq!(field(error, "kind").as_str(), Some("invalid_tenant"));
    assert!(field(error, "message").as_str().unwrap().contains("tenant"));

    assert_eq!(handle.tenant_count(), 3);
    handle.shutdown();
}

#[test]
fn expired_deadlines_answer_deadline_exceeded() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    // A one-millisecond deadline cannot cover parsing and deciding hundreds of
    // distinct negation queries single-threaded: the batch aborts mid-flight.
    let queries: Vec<String> = (0..256)
        .map(|i| format!(r#""{}a[not(b)]""#, "a/../".repeat(i)))
        .collect();
    let expired = client.round_trip(&format!(
        r#"{{"op":"batch","dtd_id":0,"queries":[{}],"threads":1,"deadline_ms":1}}"#,
        queries.join(",")
    ));
    assert_eq!(field(&expired, "ok").as_bool(), Some(false));
    assert_eq!(field(&expired, "deadline_exceeded").as_bool(), Some(true));

    // A zero deadline is not "already expired" — it is a malformed request,
    // refused before any work is admitted.
    let zero =
        client.round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a","a[b]"],"deadline_ms":0}"#);
    assert_eq!(field(&zero, "ok").as_bool(), Some(false));
    assert_eq!(
        field(field(&zero, "error"), "kind").as_str(),
        Some("invalid_request")
    );

    // The same request without a deadline succeeds on the same connection.
    let fine = client.round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a","a[b]"]}"#);
    assert_eq!(field(&fine, "ok").as_bool(), Some(true));
    handle.shutdown();
}

#[test]
fn health_and_drain_bring_the_server_down_cleanly() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    let health = client.round_trip(r#"{"op":"health"}"#);
    assert_eq!(field(&health, "ok").as_bool(), Some(true));
    assert_eq!(field(&health, "phase").as_str(), Some("running"));
    assert_eq!(field(&health, "draining").as_bool(), Some(false));
    assert!(field(&health, "uptime_ms").as_u64().is_some());

    // `drain` acks, flips the phase, and in-flight connections learn on their
    // next request that the server is going away (retryable `shutting_down`).
    let drain = client.round_trip(r#"{"op":"drain"}"#);
    assert_eq!(field(&drain, "ok").as_bool(), Some(true));
    assert_eq!(field(&drain, "draining").as_bool(), Some(true));
    assert!(handle.draining());

    let refused = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
    assert_eq!(field(&refused, "ok").as_bool(), Some(false));
    let error = field(&refused, "error");
    assert_eq!(field(error, "kind").as_str(), Some("shutting_down"));
    assert_eq!(field(error, "retryable").as_bool(), Some(true));
    assert_eq!(field(&refused, "shutting_down").as_bool(), Some(true));

    // health keeps answering during the drain (it bypasses admission)...
    let health = client.round_trip(r#"{"op":"health"}"#);
    assert_eq!(field(&health, "draining").as_bool(), Some(true));

    // ...new connections are told off rather than silently refused...
    let mut late = Client::connect(&addr);
    let told = late.recv();
    assert_eq!(
        field(field(&told, "error"), "kind").as_str(),
        Some("shutting_down")
    );

    // ...and shutdown completes without losing anything.
    handle.shutdown();
}

#[test]
fn stats_reports_lifecycle_scheduler_and_per_tenant_lanes() {
    let config = ServerConfig {
        tenant_rate_qps: Some(1000.0),
        tenant_burst: 512.0,
        tenant_weights: vec![("alice".to_string(), 4)],
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(
        r#"{{"op":"register_dtd","dtd":"{DTD}","tenant":"alice"}}"#
    ));
    client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]","tenant":"alice"}"#);

    let stats = client.round_trip(r#"{"op":"stats","tenant":"alice"}"#);
    assert_eq!(field(&stats, "server_phase").as_str(), Some("running"));
    assert!(field(&stats, "server_uptime_ms").as_u64().is_some());
    assert_eq!(field(&stats, "server_queued_jobs").as_u64(), Some(0));
    assert_eq!(field(&stats, "server_requests_shed").as_u64(), Some(0));
    assert_eq!(field(&stats, "server_watchdog_trips").as_u64(), Some(0));
    let lanes = field(&stats, "tenant_lanes").as_array().unwrap();
    let alice = lanes
        .iter()
        .find(|lane| lane.get("tenant").and_then(Json::as_str) == Some("alice"))
        .expect("alice has a lane");
    assert_eq!(field(alice, "weight").as_u64(), Some(4));
    assert!(field(alice, "served").as_u64().unwrap() >= 2);
    assert!(field(alice, "tokens_remaining").as_u64().unwrap() <= 512);
    handle.shutdown();
}

#[test]
fn inflight_gate_sheds_oversized_batches() {
    let config = ServerConfig {
        max_inflight_queries: 4,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    // A batch costing more than the whole gate is refused immediately with the
    // explicit backpressure marker...
    let shed = client
        .round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a","a","a","a","a"],"threads":1}"#);
    assert_eq!(field(&shed, "ok").as_bool(), Some(false));
    assert_eq!(field(&shed, "overloaded").as_bool(), Some(true));

    // ...while a batch within the bound is served on the same connection.
    let fine = client.round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a","a[b]"]}"#);
    assert_eq!(field(&fine, "ok").as_bool(), Some(true));
    assert!(handle.stats().requests_overloaded >= 1);
    handle.shutdown();
}

#[test]
fn resident_bound_applies_per_tenant_workspace() {
    let dir = scratch_dir("resident");
    let config = ServerConfig {
        cache_dir: Some(dir.clone()),
        max_resident_dtds: Some(1),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    client.round_trip(r#"{"op":"register_dtd","dtd":"r -> c?; c -> #;"}"#);

    // Only one artifact stays resident; the first DTD still answers (rematerialised
    // from the shared store, not recompiled).
    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
    assert_eq!(field(&check, "result").as_str(), Some("satisfiable"));
    let stats = client.round_trip(r#"{"op":"stats"}"#);
    assert_eq!(field(&stats, "resident_dtds").as_u64(), Some(1));
    assert!(field(&stats, "dtd_evictions").as_u64().unwrap() >= 1);
    assert!(field(&stats, "artifact_rebuilds").as_u64().unwrap() >= 1);
    assert_eq!(field(&stats, "classifications").as_u64(), Some(2));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_request_answers_internal_error_and_pool_survives() {
    let config = ServerConfig {
        debug_ops: true,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    // The fault-injection op panics inside request handling; the worker answers a
    // structured internal_error instead of dying.
    let boom = client.round_trip(r#"{"op":"debug_panic"}"#);
    assert_eq!(field(&boom, "ok").as_bool(), Some(false));
    let error = field(&boom, "error");
    assert_eq!(field(error, "kind").as_str(), Some("internal_error"));
    assert_eq!(field(error, "retryable").as_bool(), Some(false));

    // The same connection, the same tenant and fresh connections all keep serving.
    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
    assert_eq!(field(&check, "result").as_str(), Some("satisfiable"));
    let mut other = Client::connect(&addr);
    let check2 = other.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
    assert_eq!(field(&check2, "cached").as_bool(), Some(true));
    assert!(handle.stats().requests_panicked >= 1);
    handle.shutdown();
}

#[test]
fn debug_ops_are_refused_unless_enabled() {
    let (handle, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr);
    let refused = client.round_trip(r#"{"op":"debug_panic"}"#);
    assert_eq!(field(&refused, "ok").as_bool(), Some(false));
    assert_eq!(
        field(field(&refused, "error"), "kind").as_str(),
        Some("unknown_op")
    );
    assert_eq!(handle.stats().requests_panicked, 0);
    handle.shutdown();
}

#[test]
fn server_default_max_steps_governs_decisions() {
    let config = ServerConfig {
        default_max_steps: Some(1),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut client = Client::connect(&addr);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    // The negation engine cannot finish inside one step: structured, retryable:false.
    let capped = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[not(b)]"}"#);
    assert_eq!(field(&capped, "ok").as_bool(), Some(false));
    let error = field(&capped, "error");
    assert_eq!(field(error, "kind").as_str(), Some("resource_exhausted"));
    assert_eq!(field(error, "retryable").as_bool(), Some(false));

    // A per-request budget overrides the server default upward.
    let fine =
        client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[not(b)]","max_steps":100000000}"#);
    assert_eq!(field(&fine, "ok").as_bool(), Some(true));
    assert_eq!(field(&fine, "result").as_str(), Some("satisfiable"));
    handle.shutdown();
}

#[test]
fn mid_line_stall_drops_the_connection() {
    let config = ServerConfig {
        stalled_read_timeout_ms: Some(200),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);

    // A slow-loris client: send half a request line, then stall.
    let mut loris = Client::connect(&addr);
    loris.writer.write_all(b"{\"op\":\"che").expect("send");
    loris.writer.flush().expect("flush");
    let mut response = String::new();
    let n = loris.reader.read_line(&mut response).expect("read EOF");
    assert_eq!(n, 0, "stalled connection should be closed, got {response}");
    assert!(handle.stats().connections_stalled >= 1);

    // An idle connection (no bytes at all) is NOT affected by the stall guard.
    let mut idle = Client::connect(&addr);
    std::thread::sleep(std::time::Duration::from_millis(400));
    let check = idle.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    assert_eq!(field(&check, "ok").as_bool(), Some(true));
    handle.shutdown();
}
