//! Seeded chaos soak: mixed tenant floods, worker panic/stall storms, drains
//! under load, mid-drain restarts and slow-loris clients, all against live
//! servers on ephemeral ports.
//!
//! Iteration count is tunable the same way as the fuzz harness: set
//! `XPSAT_CHAOS_ITERS` (default 1 round per scenario) — CI runs a bounded soak,
//! a developer chasing a flake can run thousands.  Everything is seeded; the
//! only nondeterminism left is OS scheduling, which is exactly what the
//! scenarios are meant to survive.
//!
//! The invariants asserted here are the PR's headline guarantees:
//!   * a tenant flooding at 10x its rate limit is the one shed — victims keep
//!     completing, with a sane p99;
//!   * every request a client managed to send before shutdown draws exactly one
//!     response — accepted work is never silently dropped;
//!   * worker panics and stalls never take the server down: the watchdog
//!     restores capacity and the requester gets a structured answer;
//!   * a drained server restarted over the same artifact store serves compiled
//!     DTDs from disk.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};
use xpsat_server::{Bind, Server, ServerConfig, ServerHandle};
use xpsat_service::Json;

const DTD: &str = "r -> a*; a -> b?; b -> #;";

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn rounds() -> u64 {
    std::env::var("XPSAT_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xpsat-chaos-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny deterministic xorshift; the soak must be reproducible from its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn start(mut config: ServerConfig) -> (ServerHandle, String) {
    config.bind = Bind::Tcp("127.0.0.1:0".to_string());
    let handle = Server::start(config).expect("server starts");
    let addr = handle.local_addr().expect("tcp server has an address");
    (handle, addr.to_string())
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// What one request drew back, from the client's point of view.
enum Outcome {
    Ok(Json),
    Err(Json),
    /// The connection closed before a response line arrived.
    Closed,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Outcome {
        if writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .is_err()
        {
            return Outcome::Closed;
        }
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) | Err(_) => Outcome::Closed,
            Ok(_) => {
                let parsed = Json::parse(response.trim()).expect("response parses");
                if parsed.get("ok").and_then(Json::as_bool) == Some(true) {
                    Outcome::Ok(parsed)
                } else {
                    Outcome::Err(parsed)
                }
            }
        }
    }

    fn expect_ok(&mut self, line: &str) -> Json {
        match self.request(line) {
            Outcome::Ok(json) => json,
            Outcome::Err(json) => panic!("request failed: {line} -> {json}"),
            Outcome::Closed => panic!("connection closed on: {line}"),
        }
    }
}

fn error_kind(response: &Json) -> &str {
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("unstructured")
}

/// A flooding tenant capped at ~50 cost/s hammers as fast as it can (an order of
/// magnitude over its refill) while a victim tenant trickles well under its own
/// limit.  The victim must complete every request with a sane p99; only the
/// flooder sees `overloaded`.
#[test]
fn flooding_tenant_is_shed_while_victims_keep_their_p99() {
    for round in 0..rounds() {
        let config = ServerConfig {
            tenant_rate_qps: Some(50.0),
            tenant_burst: 10.0,
            decide_workers: 4,
            ..ServerConfig::default()
        };
        let (handle, addr) = start(config);

        // Both tenants register inside their burst allowance.
        let mut setup = Client::connect(&addr);
        setup.expect_ok(&format!(
            r#"{{"op":"register_dtd","dtd":"{DTD}","tenant":"flood"}}"#
        ));
        setup.expect_ok(&format!(
            r#"{{"op":"register_dtd","dtd":"{DTD}","tenant":"victim"}}"#
        ));
        drop(setup);

        let deadline = Instant::now() + Duration::from_millis(900);
        let flooders: Vec<_> = (0..3)
            .map(|f| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr);
                    let mut rng = Rng(0x5eed_2005 + round * 31 + f);
                    let (mut sent, mut answered, mut refused) = (0u64, 0u64, 0u64);
                    while Instant::now() < deadline {
                        let query = ["a", "a[b]", "b/.."][rng.below(3) as usize];
                        sent += 1;
                        match client.request(&format!(
                            r#"{{"op":"check","dtd_id":0,"query":"{query}","tenant":"flood"}}"#
                        )) {
                            Outcome::Ok(_) => answered += 1,
                            Outcome::Err(response) => {
                                assert_eq!(error_kind(&response), "overloaded", "{response}");
                                answered += 1;
                                refused += 1;
                            }
                            Outcome::Closed => panic!("flooder connection closed"),
                        }
                    }
                    (sent, answered, refused)
                })
            })
            .collect();

        let victim = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let mut latencies = Vec::new();
                // 20 requests at ~20/s: well inside the 50/s refill.
                for i in 0..20 {
                    let sent_at = Instant::now();
                    let line = format!(
                        r#"{{"op":"check","dtd_id":0,"query":"a[b]","tenant":"victim","seq":{i}}}"#
                    );
                    match client.request(&line) {
                        Outcome::Ok(_) => latencies.push(sent_at.elapsed()),
                        Outcome::Err(response) => {
                            panic!("victim refused while flooder should be shed: {response}")
                        }
                        Outcome::Closed => panic!("victim connection closed"),
                    }
                    std::thread::sleep(Duration::from_millis(45));
                }
                latencies
            })
        };

        let mut latencies = victim.join().expect("victim thread");
        latencies.sort();
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        assert!(
            p99 < Duration::from_millis(500),
            "victim p99 {p99:?} under flood (round {round})"
        );

        let (mut sent, mut answered, mut refused) = (0, 0, 0);
        for flooder in flooders {
            let (s, a, r) = flooder.join().expect("flooder thread");
            sent += s;
            answered += a;
            refused += r;
        }
        assert_eq!(sent, answered, "every flooder request drew a response");
        assert!(
            refused > 0,
            "a tenant at 10x its refill rate must see overloaded \
             (round {round}: sent {sent}, answered {answered})"
        );
        assert!(handle.stats().requests_rate_limited >= refused);
        handle.shutdown();
    }
}

/// Clients hammer the server while it drains.  The invariant is accounting:
/// every request that was sent draws exactly one response — success before the
/// drain, a retryable `shutting_down` after — and the connection only ever
/// closes *between* requests (after the server reached Stopped), never inside
/// one.
#[test]
fn drain_under_load_answers_every_accepted_request() {
    for round in 0..rounds() {
        let config = ServerConfig {
            decide_workers: 2,
            drain_deadline_ms: 3_000,
            ..ServerConfig::default()
        };
        let (handle, addr) = start(config);
        let mut setup = Client::connect(&addr);
        setup.expect_ok(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

        let clients: Vec<_> = (0..4)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr);
                    let mut rng = Rng(0xc4a0_5eed + round * 17 + c);
                    let (mut served, mut told_shutdown) = (0u64, 0u64);
                    // Loop until the drain notice arrives (bounded only as a
                    // hang backstop): the drain always lands within ~200ms.
                    for _ in 0..1_000_000 {
                        let line = if rng.below(4) == 0 {
                            r#"{"op":"batch","dtd_id":0,"queries":["a","a[b]","b/.."]}"#
                        } else {
                            r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#
                        };
                        match client.request(line) {
                            Outcome::Ok(_) => served += 1,
                            Outcome::Err(response) => {
                                // The only acceptable refusal mid-soak is the drain
                                // announcement, and it must be marked retryable.
                                assert_eq!(error_kind(&response), "shutting_down", "{response}");
                                assert_eq!(
                                    response
                                        .get("error")
                                        .and_then(|e| e.get("retryable"))
                                        .and_then(Json::as_bool),
                                    Some(true),
                                    "{response}"
                                );
                                told_shutdown += 1;
                                break;
                            }
                            // Closed before any shutdown notice would mean a lost
                            // accepted request.
                            Outcome::Closed => break,
                        }
                    }
                    (served, told_shutdown)
                })
            })
            .collect();

        // Let the load establish, then drain mid-flight over a live connection.
        std::thread::sleep(Duration::from_millis(50 + (round % 3) * 40));
        let drain = setup.expect_ok(r#"{"op":"drain"}"#);
        assert_eq!(drain.get("draining").and_then(Json::as_bool), Some(true));

        let (mut served, mut told_shutdown) = (0, 0);
        for client in clients {
            let (s, t) = client.join().expect("client thread");
            served += s;
            told_shutdown += t;
        }
        assert!(served > 0, "some requests completed before the drain");
        assert!(
            told_shutdown > 0,
            "at least one client observed the drain notice (round {round})"
        );
        handle.shutdown();
    }
}

/// Stalled and panicking decide workers: the watchdog declares the stuck ones
/// dead, answers their requesters, restores pool capacity, and ordinary traffic
/// keeps flowing throughout.
#[test]
fn panic_and_stall_storm_trips_the_watchdog_and_recovers() {
    let config = ServerConfig {
        debug_ops: true,
        decide_workers: 2,
        watchdog_stuck_ms: Some(250),
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);
    let mut setup = Client::connect(&addr);
    setup.expect_ok(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    for round in 0..rounds() {
        // Two stallers wedge the whole decide pool.  Each stalls under its own
        // tenant: a tenant's requests serialise on its workspace, so a stalled
        // "public" request would block the normal client below on the tenant
        // lock no matter how many workers the watchdog restores.
        let stallers: Vec<_> = (0..2)
            .map(|s| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr);
                    match client.request(&format!(
                        r#"{{"op":"debug_stall","stall_ms":1500,"tenant":"stall{s}"}}"#
                    )) {
                        // The stall either outlives the watchdog (abandoned =>
                        // structured internal_error) or finishes first on a slow
                        // scheduler — both are answered, neither is a hang.
                        Outcome::Ok(_) => {}
                        Outcome::Err(response) => {
                            assert_eq!(error_kind(&response), "internal_error", "{response}")
                        }
                        Outcome::Closed => panic!("staller connection closed"),
                    }
                })
            })
            .collect();

        // ...a panicker answers structured internal_error...
        let panicker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                match client.request(r#"{"op":"debug_panic"}"#) {
                    Outcome::Err(response) => {
                        assert_eq!(error_kind(&response), "internal_error", "{response}")
                    }
                    Outcome::Ok(response) => panic!("debug_panic answered ok: {response}"),
                    Outcome::Closed => panic!("panicker connection closed"),
                }
            })
        };

        // ...and plain traffic still completes because the watchdog replaces the
        // wedged workers instead of letting the pool drain to zero.
        std::thread::sleep(Duration::from_millis(50));
        let mut client = Client::connect(&addr);
        for _ in 0..5 {
            client.expect_ok(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
        }

        for staller in stallers {
            staller.join().expect("staller thread");
        }
        panicker.join().expect("panicker thread");
        let _ = round;
    }

    assert!(
        handle.watchdog_trips() >= 1,
        "watchdog never tripped despite 1500ms stalls over a 250ms budget"
    );
    assert!(handle.stats().requests_panicked >= rounds());
    handle.shutdown();
}

/// A server drained mid-load and restarted over the same artifact store must
/// serve the compiled DTD from disk (`cached:true`, zero classifications) —
/// the amortisation the paper's cost model argues for survives the chaos.
#[test]
fn mid_drain_restart_reuses_the_artifact_store() {
    let dir = scratch_dir("restart");
    for _ in 0..rounds() {
        let config = ServerConfig {
            cache_dir: Some(dir.clone()),
            drain_deadline_ms: 2_000,
            ..ServerConfig::default()
        };
        let (first, addr) = start(config.clone());
        let mut client = Client::connect(&addr);
        client.expect_ok(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

        // Load in flight while the drain lands.
        let load = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let mut served = 0u64;
                loop {
                    match client.request(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#) {
                        Outcome::Ok(_) => served += 1,
                        Outcome::Err(response) => {
                            assert_eq!(error_kind(&response), "shutting_down", "{response}");
                            break;
                        }
                        Outcome::Closed => break,
                    }
                }
                served
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        client.expect_ok(r#"{"op":"drain"}"#);
        load.join().expect("load thread");
        first.shutdown();

        // The restarted server finds everything on disk.
        let config = ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let (second, addr) = start(config);
        let mut client = Client::connect(&addr);
        let reg = client.expect_ok(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
        assert_eq!(reg.get("cached").and_then(Json::as_bool), Some(true));
        let stats = client.expect_ok(r#"{"op":"stats"}"#);
        assert_eq!(
            stats.get("classifications").and_then(Json::as_u64),
            Some(0),
            "restart recompiled instead of loading the store"
        );
        second.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slow-loris connections (bytes trickling in, never a newline) mixed with real
/// traffic and a drain: the stall guard reaps them, honest clients are served,
/// and shutdown does not wait on the loris.
#[test]
fn slow_loris_does_not_block_service_or_shutdown() {
    let config = ServerConfig {
        stalled_read_timeout_ms: Some(200),
        workers: 3,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);

    // Two lorises pin two connection threads with half-written requests.
    let lorises: Vec<_> = (0..2)
        .map(|_| {
            let mut client = Client::connect(&addr);
            client.writer.write_all(b"{\"op\":\"che").expect("partial");
            client.writer.flush().expect("flush");
            client
        })
        .collect();

    // Honest traffic on the remaining capacity is unaffected.
    let mut client = Client::connect(&addr);
    client.expect_ok(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    client.expect_ok(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);

    // The guard reaps the lorises (EOF, no response bytes).
    for mut loris in lorises {
        let mut buffer = String::new();
        let n = loris.reader.read_line(&mut buffer).expect("read EOF");
        assert_eq!(n, 0, "loris should be dropped, got {buffer:?}");
    }
    assert!(handle.stats().connections_stalled >= 2);

    // Shutdown remains prompt with a fresh loris mid-stall.
    let mut late = Client::connect(&addr);
    late.writer.write_all(b"{\"op").expect("partial");
    late.writer.flush().expect("flush");
    let begun = Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(10),
        "shutdown blocked on a slow-loris connection"
    );
}
