//! Unix-domain-socket parity for the lifecycle and fairness features: `health`,
//! `drain`/shutdown and quota shedding must behave exactly as they do over TCP —
//! the transport is framing, never semantics.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use xpsat_server::{Bind, Server, ServerConfig, ServerHandle};
use xpsat_service::Json;

static SOCK_SEQ: AtomicU32 = AtomicU32::new(0);

const DTD: &str = "r -> a*; a -> b?; b -> #;";

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "xpsat-unix-{tag}-{}-{}.sock",
        std::process::id(),
        SOCK_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(tag: &str, mut config: ServerConfig) -> (ServerHandle, PathBuf) {
    let path = socket_path(tag);
    let _ = std::fs::remove_file(&path);
    config.bind = Bind::Unix(path.clone());
    let handle = Server::start(config).expect("unix server starts");
    (handle, path)
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &PathBuf) -> Client {
        let stream = UnixStream::connect(path).expect("connect unix socket");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn recv(&mut self) -> Json {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("recv");
        assert!(n > 0, "server closed the connection");
        Json::parse(response.trim()).expect("response parses")
    }

    fn round_trip(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.recv()
    }
}

fn field<'a>(response: &'a Json, key: &str) -> &'a Json {
    response
        .get(key)
        .unwrap_or_else(|| panic!("missing {key} in {response}"))
}

#[test]
fn health_answers_over_unix_socket() {
    let (handle, path) = start("health", ServerConfig::default());
    let mut client = Client::connect(&path);
    let health = client.round_trip(r#"{"op":"health"}"#);
    assert_eq!(field(&health, "ok").as_bool(), Some(true));
    assert_eq!(field(&health, "op").as_str(), Some("health"));
    assert_eq!(field(&health, "phase").as_str(), Some("running"));
    assert_eq!(field(&health, "draining").as_bool(), Some(false));
    assert!(field(&health, "uptime_ms").as_u64().is_some());
    assert_eq!(field(&health, "watchdog_trips").as_u64(), Some(0));
    handle.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn drain_and_shutdown_remove_the_socket_and_lose_nothing() {
    let (handle, path) = start("drain", ServerConfig::default());
    let mut client = Client::connect(&path);
    let reg = client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));
    assert_eq!(field(&reg, "ok").as_bool(), Some(true));
    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]"}"#);
    assert_eq!(field(&check, "result").as_str(), Some("satisfiable"));

    // drain acks over the same socket, exactly as it does over TCP.
    let drain = client.round_trip(r#"{"op":"drain"}"#);
    assert_eq!(field(&drain, "ok").as_bool(), Some(true));
    assert_eq!(field(&drain, "draining").as_bool(), Some(true));
    assert!(handle.draining());

    // Post-drain requests on a live connection answer retryable shutting_down.
    let refused = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a"}"#);
    let error = field(&refused, "error");
    assert_eq!(field(error, "kind").as_str(), Some("shutting_down"));
    assert_eq!(field(error, "retryable").as_bool(), Some(true));

    // New connections during the drain get an explicit answer, not a hang.
    let mut late = Client::connect(&path);
    let told = late.recv();
    assert_eq!(
        field(field(&told, "error"), "kind").as_str(),
        Some("shutting_down")
    );

    handle.shutdown();
    assert!(!path.exists(), "socket file removed after drain + shutdown");
}

#[test]
fn tenant_quota_sheds_over_unix_socket() {
    let config = ServerConfig {
        max_inflight_queries: 4,
        ..ServerConfig::default()
    };
    let (handle, path) = start("quota", config);
    let mut client = Client::connect(&path);
    client.round_trip(&format!(r#"{{"op":"register_dtd","dtd":"{DTD}"}}"#));

    // A batch costing more than the whole in-flight bound answers overloaded,
    // byte-compatible with the TCP behaviour...
    let shed = client
        .round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a","a","a","a","a"],"threads":1}"#);
    assert_eq!(field(&shed, "ok").as_bool(), Some(false));
    assert_eq!(field(&shed, "overloaded").as_bool(), Some(true));
    let error = field(&shed, "error");
    assert_eq!(field(error, "kind").as_str(), Some("overloaded"));
    assert_eq!(field(error, "retryable").as_bool(), Some(true));

    // ...while in-bound work keeps flowing on the same connection.
    let fine = client.round_trip(r#"{"op":"batch","dtd_id":0,"queries":["a","a[b]"]}"#);
    assert_eq!(field(&fine, "ok").as_bool(), Some(true));
    assert!(handle.stats().requests_overloaded >= 1);
    handle.shutdown();
}

#[test]
fn rate_limited_tenant_is_shed_while_others_serve_over_unix_socket() {
    // A tiny token bucket: burst 2, trickle refill.  The third same-tenant
    // request in quick succession is rate-limited; an unrelated tenant with its
    // own bucket is untouched.
    let config = ServerConfig {
        tenant_rate_qps: Some(0.5),
        tenant_burst: 2.0,
        ..ServerConfig::default()
    };
    let (handle, path) = start("rate", config);
    let mut client = Client::connect(&path);
    client.round_trip(&format!(
        r#"{{"op":"register_dtd","dtd":"{DTD}","tenant":"flood"}}"#
    ));
    client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]","tenant":"flood"}"#);
    let limited = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a","tenant":"flood"}"#);
    assert_eq!(field(&limited, "ok").as_bool(), Some(false));
    assert_eq!(field(&limited, "overloaded").as_bool(), Some(true));
    let error = field(&limited, "error");
    assert_eq!(field(error, "retryable").as_bool(), Some(true));
    assert!(
        field(error, "message").as_str().unwrap().contains("rate"),
        "{limited}"
    );

    // The victim tenant's own bucket is full: same instant, full service.
    let victim = client.round_trip(&format!(
        r#"{{"op":"register_dtd","dtd":"{DTD}","tenant":"victim"}}"#
    ));
    assert_eq!(field(&victim, "ok").as_bool(), Some(true));
    let check = client.round_trip(r#"{"op":"check","dtd_id":0,"query":"a[b]","tenant":"victim"}"#);
    assert_eq!(field(&check, "result").as_str(), Some("satisfiable"));
    assert!(handle.stats().requests_rate_limited >= 1);
    handle.shutdown();
}
