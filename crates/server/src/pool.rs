//! A bounded multi-producer/multi-consumer queue (`Mutex` + `Condvar`, no
//! dependencies) — the hand-off between the accept loop and the worker pool.
//!
//! The bound is the backpressure mechanism: [`BoundedQueue::try_push`] never blocks,
//! so the accept loop can answer "queue full" *immediately* (the server writes an
//! `overloaded` response and closes) instead of letting pending connections pile up
//! invisibly in kernel buffers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. Producers never block; consumers block in
/// [`BoundedQueue::pop`] until an item arrives or the queue is closed and drained.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; refuses when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives; `None` once the queue is closed and
    /// empty (the worker-pool shutdown signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Close the queue: producers are refused from now on, consumers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_pop_and_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn consumers_wake_across_threads() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        };
        for i in 0..5 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
