//! Per-tenant isolation: every tenant name maps to its own
//! [`xpsat_service::Workspace`] behind its own [`ProtocolServer`].
//!
//! Isolation is at the *workspace* level — DTD ids, the query interner and the
//! decision cache are all per-tenant, so one client can never observe (or collide
//! with) another's registrations.  Two things are deliberately *shared* because
//! they are content-addressed and therefore leak nothing tenant-specific:
//!
//! * the persistent [`ArtifactStore`], keyed by the hash of a DTD's canonical
//!   text — a cross-tenant hit means "someone compiled this exact DTD before"
//!   and saves the full compilation;
//! * the in-memory [`CanonicalCache`] of decisions, keyed by
//!   `(DTD fingerprint, canonical query text)` — a cross-tenant hit means
//!   "someone already decided this exact instance" (up to qualifier reordering
//!   and the other structural rewrites) and saves the solve entirely.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use xpsat_service::{ArtifactStore, CanonicalCache, ProtocolServer, Workspace};

use crate::ServerConfig;

/// The tenant used by requests that carry no `"tenant"` field.
pub const DEFAULT_TENANT: &str = "public";

/// One tenant: its protocol server (and thus workspace).  Request handling is
/// `&self` all the way down — the protocol server locks internally, and only for
/// the moments that actually mutate the workspace (registering a DTD, interning a
/// query).  Decides from many connections of one tenant therefore run
/// *concurrently*; the old design serialised every request of a tenant behind one
/// outer mutex.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    proto: ProtocolServer,
}

impl Tenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's protocol server; handlers take `&self`, so no outer lock.
    pub fn proto(&self) -> &ProtocolServer {
        &self.proto
    }
}

/// Lazily-created tenants, keyed by validated name.
#[derive(Debug)]
pub struct TenantMap {
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    store: Option<ArtifactStore>,
    canonical: Arc<CanonicalCache>,
    config: ServerConfig,
}

impl TenantMap {
    /// A tenant map for the given server configuration; opens (and creates) the
    /// shared artifact store when a cache directory is configured.
    pub fn new(config: ServerConfig) -> std::io::Result<TenantMap> {
        let store = match &config.cache_dir {
            Some(dir) => Some(ArtifactStore::open(dir)?),
            None => None,
        };
        Ok(TenantMap {
            tenants: Mutex::new(HashMap::new()),
            store,
            canonical: Arc::new(CanonicalCache::new()),
            config,
        })
    }

    /// The shared artifact store, if persistence is configured.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// The decision cache shared by every tenant's workspace.
    pub fn canonical_cache(&self) -> &Arc<CanonicalCache> {
        &self.canonical
    }

    /// Look up (or create) a tenant.  Returns `Err` with a reason for names that
    /// fail validation.
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>, String> {
        validate_tenant_name(name)?;
        // Recover from poisoning: the map only ever grows, so a panic while holding
        // the lock cannot leave it inconsistent.
        let mut tenants = self
            .tenants
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(tenant) = tenants.get(name) {
            return Ok(Arc::clone(tenant));
        }
        let mut workspace = Workspace::default().with_canonical_cache(Arc::clone(&self.canonical));
        if let Some(store) = &self.store {
            workspace = workspace.with_store(store.clone());
        }
        if let Some(bound) = self.config.max_resident_dtds {
            workspace = workspace.with_resident_bound(bound);
        }
        let mut proto = ProtocolServer::with_workspace(workspace, self.config.default_threads);
        proto.set_default_deadline_ms(self.config.default_deadline_ms);
        proto.set_default_max_steps(self.config.default_max_steps);
        proto.set_max_line_bytes(self.config.max_line_bytes);
        proto.set_debug_ops(self.config.debug_ops);
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            proto,
        });
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Number of tenants created so far.
    pub fn tenant_count(&self) -> usize {
        self.tenants
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

/// Tenant names are short identifiers: 1–64 chars from `[A-Za-z0-9._-]`, not
/// starting with a dot or dash (no path games, no hidden files, shell-safe).
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("tenant name must be 1-64 characters".to_string());
    }
    if name.starts_with(['.', '-']) {
        return Err("tenant name must not start with '.' or '-'".to_string());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(
            "tenant name may contain only ASCII letters, digits, '.', '_' and '-'".to_string(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_are_isolated_workspaces() {
        let map = TenantMap::new(ServerConfig::default()).unwrap();
        let a = map.tenant("alice").unwrap();
        let b = map.tenant("bob").unwrap();
        let again = map.tenant("alice").unwrap();
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(map.tenant_count(), 2);

        // A DTD registered for alice is invisible to bob.
        let reg = a
            .proto()
            .handle_line(r#"{"op":"register_dtd","dtd":"r -> a?; a -> #;"}"#);
        assert!(reg.contains(r#""dtd_id":0"#), "{reg}");
        let check = b
            .proto()
            .handle_line(r#"{"op":"check","dtd_id":0,"query":"a"}"#);
        assert!(check.contains(r#""ok":false"#), "{check}");
        assert!(check.contains("unknown DTD id 0"), "{check}");
    }

    #[test]
    fn structurally_identical_queries_hit_across_tenants() {
        let map = TenantMap::new(ServerConfig::default()).unwrap();
        let a = map.tenant("alice").unwrap();
        let b = map.tenant("bob").unwrap();
        let dtd = r#"{"op":"register_dtd","dtd":"r -> a*; a -> b, c; b -> #; c -> #;"}"#;

        // Alice decides a[b and c]; the verdict is published to the shared cache.
        let reg = a.proto().handle_line(dtd);
        assert!(reg.contains(r#""ok":true"#), "{reg}");
        let first = a
            .proto()
            .handle_line(r#"{"op":"check","dtd_id":0,"query":"a[b and c]"}"#);
        assert!(first.contains(r#""cached":false"#), "{first}");
        assert_eq!(map.canonical_cache().len(), 1);

        // Bob asks the structurally identical question spelled differently: the
        // answer comes straight from the shared cache — no solve, no compile.
        let reg = b.proto().handle_line(dtd);
        assert!(reg.contains(r#""ok":true"#), "{reg}");
        let second = b
            .proto()
            .handle_line(r#"{"op":"check","dtd_id":0,"query":"a[c][b]"}"#);
        assert!(second.contains(r#""cached":true"#), "{second}");
        assert!(second.contains(r#""result":"satisfiable""#), "{second}");
        let stats = b.proto().handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""canonical_hits":1"#), "{stats}");
        assert!(stats.contains(r#""decisions_computed":0"#), "{stats}");
        assert!(stats.contains(r#""programs_compiled":0"#), "{stats}");
    }

    #[test]
    fn tenant_names_are_validated() {
        assert!(validate_tenant_name("team-a.prod_2").is_ok());
        for bad in ["", ".hidden", "-flag", "a/b", "a b", "ü", &"x".repeat(65)] {
            assert!(validate_tenant_name(bad).is_err(), "{bad:?}");
        }
    }
}
