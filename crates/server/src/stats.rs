//! Server-wide counters (connection and admission level — the per-workspace cache
//! counters live in [`xpsat_service::CacheStats`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters updated by the accept loop and the workers; relaxed ordering
/// (diagnostics, never synchronisation).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) requests_served: AtomicU64,
    pub(crate) requests_overloaded: AtomicU64,
    pub(crate) requests_rate_limited: AtomicU64,
    pub(crate) requests_malformed: AtomicU64,
    pub(crate) requests_oversized: AtomicU64,
    pub(crate) requests_panicked: AtomicU64,
    pub(crate) connections_stalled: AtomicU64,
}

impl ServerStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            requests_overloaded: self.requests_overloaded.load(Ordering::Relaxed),
            requests_rate_limited: self.requests_rate_limited.load(Ordering::Relaxed),
            requests_malformed: self.requests_malformed.load(Ordering::Relaxed),
            requests_oversized: self.requests_oversized.load(Ordering::Relaxed),
            requests_panicked: self.requests_panicked.load(Ordering::Relaxed),
            connections_stalled: self.connections_stalled.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatsSnapshot {
    /// Connections handed to the worker pool.
    pub connections_accepted: u64,
    /// Connections refused because the pending queue was full (answered with an
    /// `overloaded` response and closed).
    pub connections_rejected: u64,
    /// Requests answered (any outcome other than overload/malformed/oversized).
    pub requests_served: u64,
    /// Requests refused at admission (rate limit, quota, global in-flight bound or
    /// a full request queue) — every one answered `overloaded`.
    pub requests_overloaded: u64,
    /// The subset of `requests_overloaded` refused by a tenant token bucket.
    pub requests_rate_limited: u64,
    /// Lines that failed to parse as JSON.
    pub requests_malformed: u64,
    /// Lines rejected by the line-length cap.
    pub requests_oversized: u64,
    /// Requests whose handling panicked; each was answered `internal_error` and the
    /// worker kept serving.
    pub requests_panicked: u64,
    /// Connections dropped by the mid-line stall timeout (slow-loris guard).
    pub connections_stalled: u64,
}

impl std::fmt::Display for ServerStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "connections: {} accepted, {} rejected, {} stalled; requests: {} served, \
             {} overloaded ({} rate-limited), {} malformed, {} oversized, {} panicked",
            self.connections_accepted,
            self.connections_rejected,
            self.connections_stalled,
            self.requests_served,
            self.requests_overloaded,
            self.requests_rate_limited,
            self.requests_malformed,
            self.requests_oversized,
            self.requests_panicked,
        )
    }
}
