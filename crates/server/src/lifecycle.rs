//! Graceful-lifecycle primitives: the server state machine and per-worker
//! liveness hearts for the watchdog.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The server's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepting and serving normally.
    Running,
    /// Drain initiated: no new work admitted; queued + in-flight work finishing.
    Draining,
    /// Drain complete (or deadline-aborted): every thread told to exit.
    Stopped,
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Shared lifecycle state: a monotone `Running → Draining → Stopped` machine.
#[derive(Debug)]
pub struct Lifecycle {
    phase: AtomicU8,
    started: Instant,
    drain_started: Mutex<Option<Instant>>,
    watchdog_trips: AtomicU64,
}

impl Default for Lifecycle {
    fn default() -> Lifecycle {
        Lifecycle {
            phase: AtomicU8::new(RUNNING),
            started: Instant::now(),
            drain_started: Mutex::new(None),
            watchdog_trips: AtomicU64::new(0),
        }
    }
}

impl Lifecycle {
    pub fn phase(&self) -> Phase {
        match self.phase.load(Ordering::Acquire) {
            RUNNING => Phase::Running,
            DRAINING => Phase::Draining,
            _ => Phase::Stopped,
        }
    }

    /// How long the server has been up.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Move to `Draining` (monotone: a later `Running` can never reappear).
    /// Returns `true` on the first call, `false` if already draining/stopped.
    pub fn begin_drain(&self) -> bool {
        let first = self
            .phase
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if first {
            let mut started = self
                .drain_started
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *started = Some(Instant::now());
        }
        first
    }

    /// When drain began, if it has.
    pub fn drain_started(&self) -> Option<Instant> {
        *self
            .drain_started
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Move to `Stopped` (from any phase).
    pub fn stop(&self) {
        self.phase.store(STOPPED, Ordering::Release);
    }

    /// Record a watchdog trip (a stuck worker replaced).
    pub fn record_watchdog_trip(&self) {
        self.watchdog_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Watchdog trips so far.
    pub fn watchdog_trips(&self) -> u64 {
        self.watchdog_trips.load(Ordering::Relaxed)
    }
}

/// A decide worker's liveness heart.  The worker stamps `begin`/`finish` around
/// each job; the watchdog reads `busy_since` and, past the stuck threshold, marks
/// the heart `abandoned` and spawns a replacement.  An abandoned worker exits as
/// soon as its current job returns (its late result is discarded by the
/// first-write-wins [`crate::fair::ResponseSlot`]).
#[derive(Debug, Default)]
pub struct WorkerHeart {
    busy_since: Mutex<Option<Instant>>,
    abandoned: AtomicBool,
}

impl WorkerHeart {
    /// Stamp the start of a job.
    pub fn begin(&self) {
        let mut busy = self
            .busy_since
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *busy = Some(Instant::now());
    }

    /// Stamp the end of a job.
    pub fn finish(&self) {
        let mut busy = self
            .busy_since
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *busy = None;
    }

    /// How long the worker has been on its current job, if it is on one.
    pub fn busy_for(&self) -> Option<Duration> {
        self.busy_since
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .map(|since| since.elapsed())
    }

    /// Declared stuck by the watchdog; the worker must exit after its current job.
    pub fn abandon(&self) {
        self.abandoned.store(true, Ordering::Release);
    }

    pub fn is_abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_is_monotone() {
        let lc = Lifecycle::default();
        assert_eq!(lc.phase(), Phase::Running);
        assert!(lc.drain_started().is_none());
        assert!(lc.begin_drain());
        assert!(!lc.begin_drain(), "second drain call is a no-op");
        assert_eq!(lc.phase(), Phase::Draining);
        assert!(lc.drain_started().is_some());
        lc.stop();
        assert_eq!(lc.phase(), Phase::Stopped);
        assert!(!lc.begin_drain(), "cannot drain a stopped server");
        assert_eq!(lc.phase(), Phase::Stopped);
    }

    #[test]
    fn heart_tracks_busy_spans_and_abandonment() {
        let heart = WorkerHeart::default();
        assert!(heart.busy_for().is_none());
        heart.begin();
        assert!(heart.busy_for().is_some());
        heart.finish();
        assert!(heart.busy_for().is_none());
        assert!(!heart.is_abandoned());
        heart.abandon();
        assert!(heart.is_abandoned());
    }
}
