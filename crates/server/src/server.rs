//! The network front-end: accept loop, worker pool and per-request admission.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * One **accept thread** polls the listener (non-blocking, ~10 ms cadence so it
//!   notices shutdown) and pushes accepted connections into a [`BoundedQueue`].
//!   When the queue is full the connection is answered with an `overloaded` JSON
//!   response and closed immediately — callers see backpressure as data, not as a
//!   hung connect.
//! * `workers` **worker threads** each pop a connection and own it until it
//!   disconnects, speaking the same JSON-lines protocol as stdio mode.  Socket reads
//!   use a short timeout so workers poll the shutdown flag without corrupting
//!   framing (the [`LineReader`] resumes mid-line after a timeout).
//! * Per request, the worker extracts the `"tenant"` field, charges the request's
//!   query cost against the [`InflightGate`], and — only if admitted — locks that
//!   tenant's [`ProtocolServer`] for the duration of one request.  Distinct tenants
//!   never contend; connections of one tenant interleave at request granularity.

use crate::gate::InflightGate;
use crate::pool::{BoundedQueue, PushError};
use crate::stats::{ServerStats, ServerStatsSnapshot};
use crate::tenant::{TenantMap, DEFAULT_TENANT};
use crate::{Bind, ServerConfig};
use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xpsat_service::{error_response, oversized_response, Json, LineRead, LineReader};

/// How long a worker blocks in one socket read before re-checking shutdown.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long the accept thread sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// One accepted connection (TCP or Unix), unified for the worker pool.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The listener half, unified over both bind modes.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }
}

/// The running server's shared state.
#[derive(Debug)]
struct Shared {
    tenants: TenantMap,
    gate: InflightGate,
    stats: ServerStats,
    shutdown: AtomicBool,
    max_line_bytes: usize,
    write_timeout: Option<Duration>,
    stalled_read_timeout: Option<Duration>,
}

/// The server: binds, spawns the pool, hands back a [`ServerHandle`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Bind and start serving in background threads.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = match &config.bind {
            Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run would make bind fail.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        listener.set_nonblocking(true)?;
        let local_addr = match &listener {
            Listener::Tcp(l) => Some(l.local_addr()?),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        };
        #[cfg(unix)]
        let socket_path = match &config.bind {
            Bind::Unix(path) => Some(path.clone()),
            _ => None,
        };

        let workers = if config.workers > 0 {
            config.workers
        } else {
            crate::default_workers()
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let max_line_bytes = config.max_line_bytes.max(1);
        let shared = Arc::new(Shared {
            gate: InflightGate::new(config.max_inflight_queries),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            max_line_bytes,
            write_timeout: config.write_timeout_ms.map(Duration::from_millis),
            stalled_read_timeout: config.stalled_read_timeout_ms.map(Duration::from_millis),
            tenants: TenantMap::new(config)?,
        });

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || accept_loop(listener, &shared, &queue))
        };
        let worker_threads: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        handle_connection(conn, &shared);
                    }
                })
            })
            .collect();

        Ok(ServerHandle {
            shared,
            queue,
            local_addr,
            accept_thread: Some(accept_thread),
            worker_threads,
            #[cfg(unix)]
            socket_path,
        })
    }
}

/// Handle to a running server: inspect it, then shut it down.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Conn>>,
    local_addr: Option<SocketAddr>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    #[cfg(unix)]
    socket_path: Option<std::path::PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (`None` for Unix-socket servers) — with port `0` in the
    /// config, this is where clients actually connect.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Server-level counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Tenants created so far.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.tenant_count()
    }

    /// Stop accepting, drain the pool and join all threads.  In-flight requests
    /// finish; idle connections are dropped at the next read poll.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle still stops the threads (they are detached otherwise);
        // `shutdown()` is the graceful path that also joins them.
        self.begin_shutdown();
    }
}

fn accept_loop(listener: Listener, shared: &Shared, queue: &BoundedQueue<Conn>) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(conn) => match queue.try_push(conn) {
                Ok(()) => ServerStats::bump(&shared.stats.connections_accepted),
                Err(PushError::Full(mut conn) | PushError::Closed(mut conn)) => {
                    ServerStats::bump(&shared.stats.connections_rejected);
                    let refusal = overloaded_response("connection queue full");
                    let _ = writeln!(conn, "{refusal}");
                    // Dropping `conn` closes it.
                }
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serve one connection until EOF, error or shutdown.
fn handle_connection(conn: Conn, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(READ_POLL));
    let _ = conn.set_write_timeout(shared.write_timeout);
    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(conn);
    let mut line_reader = LineReader::new(shared.max_line_bytes);
    // Slow-loris guard: set when the reader is mid-line (bytes received, no newline
    // yet); a client that stalls there past the configured timeout is dropped.  Idle
    // connections *between* requests never trip it.
    let mut line_started: Option<Instant> = None;
    loop {
        match line_reader.read_from(&mut reader) {
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if line_reader.mid_line() {
                    let started = *line_started.get_or_insert_with(Instant::now);
                    if let Some(limit) = shared.stalled_read_timeout {
                        if started.elapsed() >= limit {
                            ServerStats::bump(&shared.stats.connections_stalled);
                            return;
                        }
                    }
                } else {
                    line_started = None;
                }
            }
            Err(_) | Ok(LineRead::Eof) => return,
            Ok(LineRead::Oversized) => {
                line_started = None;
                ServerStats::bump(&shared.stats.requests_oversized);
                let response = oversized_response(shared.max_line_bytes);
                if writeln!(writer, "{response}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Ok(LineRead::Line) => {
                line_started = None;
                let line = String::from_utf8_lossy(line_reader.line()).into_owned();
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_request_line(&line, shared);
                if writeln!(writer, "{response}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Process one request line: parse, resolve tenant, admit through the gate, serve.
fn handle_request_line(line: &str, shared: &Shared) -> Json {
    let request = match Json::parse(line.trim_end_matches(['\n', '\r'])) {
        Ok(request) => request,
        Err(e) => {
            ServerStats::bump(&shared.stats.requests_malformed);
            return error_response(
                "malformed_request",
                &format!("malformed request: {e}"),
                None,
                false,
            );
        }
    };
    let tenant_name = request
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or(DEFAULT_TENANT)
        .to_string();
    let tenant = match shared.tenants.tenant(&tenant_name) {
        Ok(tenant) => tenant,
        Err(reason) => {
            return error_response(
                "invalid_tenant",
                &format!("invalid tenant: {reason}"),
                None,
                false,
            )
        }
    };

    // Admission: a batch of n queries costs n permits, anything else costs 1.
    let cost = request
        .get("queries")
        .and_then(Json::as_array)
        .map(|qs| qs.len() as u64)
        .unwrap_or(1);
    let Some(_permit) = shared.gate.try_acquire(cost) else {
        ServerStats::bump(&shared.stats.requests_overloaded);
        return overloaded_response("in-flight query limit reached");
    };

    // Panic isolation: a request that panics (a solver bug, a hostile input that
    // found a hole in the resource governor) answers `internal_error` and leaves the
    // worker — and every other tenant — serving.  The per-tenant protocol lock
    // recovers from poisoning for the same reason: the tenant state is monotone
    // (registrations and caches), so a panic mid-request cannot corrupt it.
    let mut response = std::panic::catch_unwind(AssertUnwindSafe(|| {
        tenant
            .proto()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .handle_request(&request)
    }))
    .unwrap_or_else(|panic| {
        ServerStats::bump(&shared.stats.requests_panicked);
        let detail = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        error_response(
            "internal_error",
            &format!("request handling panicked: {detail}"),
            None,
            false,
        )
    });
    ServerStats::bump(&shared.stats.requests_served);

    // `stats` responses additionally report the server-wide view.
    if request.get("op").and_then(Json::as_str) == Some("stats") {
        if let Json::Obj(fields) = &mut response {
            let server = shared.stats.snapshot();
            fields.push(("tenant".to_string(), Json::Str(tenant_name)));
            fields.push((
                "tenants".to_string(),
                Json::Num(shared.tenants.tenant_count() as f64),
            ));
            fields.push((
                "server_connections_accepted".to_string(),
                Json::Num(server.connections_accepted as f64),
            ));
            fields.push((
                "server_connections_rejected".to_string(),
                Json::Num(server.connections_rejected as f64),
            ));
            fields.push((
                "server_requests_served".to_string(),
                Json::Num(server.requests_served as f64),
            ));
            fields.push((
                "server_requests_overloaded".to_string(),
                Json::Num(server.requests_overloaded as f64),
            ));
            fields.push((
                "server_requests_malformed".to_string(),
                Json::Num(server.requests_malformed as f64),
            ));
            fields.push((
                "server_requests_oversized".to_string(),
                Json::Num(server.requests_oversized as f64),
            ));
            fields.push((
                "server_requests_panicked".to_string(),
                Json::Num(server.requests_panicked as f64),
            ));
            fields.push((
                "server_connections_stalled".to_string(),
                Json::Num(server.connections_stalled as f64),
            ));
        }
    }
    response
}

/// The explicit backpressure response: `"overloaded":true` tells a well-behaved
/// client to back off and retry, distinguishing load shedding from request errors.
/// Kept as a top-level flag alongside the structured error object for older clients.
fn overloaded_response(reason: &str) -> Json {
    let mut response = error_response(
        "overloaded",
        &format!("server overloaded: {reason}"),
        None,
        true,
    );
    if let Json::Obj(fields) = &mut response {
        fields.push(("overloaded".to_string(), Json::Bool(true)));
    }
    response
}
