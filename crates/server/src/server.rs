//! The network front-end: accept loop, connection pool, tenant-fair decide
//! workers, watchdog, and the graceful drain lifecycle.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * One **accept thread** polls the listener (non-blocking, ~10 ms cadence so it
//!   notices lifecycle changes) and pushes accepted connections into a
//!   [`BoundedQueue`].  When the queue is full the connection is answered with an
//!   `overloaded` JSON response and closed immediately; once the server is
//!   draining, new connections are answered `shutting_down` instead — callers see
//!   backpressure and lifecycle as data, not as a hung connect.
//! * **Connection threads** (`workers` of them) each pop a connection and own it
//!   until it disconnects: framing ([`LineReader`], size caps, the slow-loris
//!   mid-line stall guard), parsing, tenant resolution and admission.  They do *no*
//!   decide work: an admitted request becomes a [`Job`] submitted to the
//!   [`FairScheduler`] and the connection thread blocks on the job's
//!   [`ResponseSlot`].
//! * **Decide workers** (`decide_workers` of them) pull jobs from the scheduler in
//!   deficit-round-robin order across tenants — a flooding tenant's backlog cannot
//!   starve anyone else — execute them under `catch_unwind`, and fulfill the slot.
//!   Every admitted job is answered exactly once: by its worker, by the shedder,
//!   or by the drain-abort path.
//! * A **watchdog thread** samples each decide worker's [`WorkerHeart`]; a worker
//!   stuck on one job past the threshold is abandoned (it exits after the job, its
//!   late result discarded by the first-write-wins slot) and a replacement is
//!   spawned, restoring pool capacity.  Connection threads waiting on a slot give
//!   up after ~2× the threshold and answer `internal_error`.
//!
//! Lifecycle: `Running → Draining → Stopped` (see [`Lifecycle`]).  Drain — via
//! [`ServerHandle::drain`], [`ServerHandle::shutdown`] or the `drain` protocol op —
//! stops admission (new requests answer `shutting_down`), lets queued and
//! in-flight jobs finish up to the drain deadline, then aborts what remains (each
//! aborted job still gets a `shutting_down` answer), flushes the artifact store,
//! and joins every thread that can be joined.

use crate::fair::{FairConfig, FairScheduler, Job, Refusal, ResponseSlot};
use crate::lifecycle::{Lifecycle, Phase, WorkerHeart};
use crate::pool::{BoundedQueue, PushError};
use crate::responses::{abandoned_response, overloaded_response, shutting_down_response};
use crate::stats::{ServerStats, ServerStatsSnapshot};
use crate::tenant::{TenantMap, DEFAULT_TENANT};
use crate::{Bind, ServerConfig};
use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xpsat_service::{error_response, oversized_response, Json, LineRead, LineReader};

/// How long a connection thread blocks in one socket read before re-checking the
/// lifecycle phase.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long the accept thread sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How long a connection thread waits on a response slot per poll (it interleaves
/// lifecycle and abandonment checks between polls).
const SLOT_POLL: Duration = Duration::from_millis(25);
/// How long after observing `Stopped` a connection thread keeps waiting for an
/// unfulfilled slot before answering `internal_error` (covers a worker that is
/// stuck at force-close time).
const STOPPED_SLOT_GRACE: Duration = Duration::from_secs(2);

/// One accepted connection (TCP or Unix), unified for the worker pool.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The listener half, unified over both bind modes.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                // Strict request/response over small JSON lines: Nagle + delayed
                // ACK would add ~40ms per turn, dwarfing the decide time.
                let _ = stream.set_nodelay(true);
                Conn::Tcp(stream)
            }
            #[cfg(unix)]
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }
}

/// One decide worker's heart + thread handle; the watchdog appends replacements.
#[derive(Debug)]
struct WorkerSlot {
    heart: Arc<WorkerHeart>,
    handle: JoinHandle<()>,
}

/// The running server's shared state.
#[derive(Debug)]
struct Shared {
    tenants: TenantMap,
    scheduler: FairScheduler,
    stats: ServerStats,
    lifecycle: Lifecycle,
    conn_queue: BoundedQueue<Conn>,
    decide_workers: Mutex<Vec<WorkerSlot>>,
    max_line_bytes: usize,
    write_timeout: Option<Duration>,
    stalled_read_timeout: Option<Duration>,
    watchdog_stuck: Option<Duration>,
}

impl Shared {
    /// Initiate drain (idempotent): stop admitting requests and connections.
    /// Queued and in-flight work keeps running; the finalizer enforces the deadline.
    fn drain(&self) {
        if self.lifecycle.begin_drain() {
            self.scheduler.begin_drain();
            self.conn_queue.close();
        }
    }
}

/// The server: binds, spawns the pools, hands back a [`ServerHandle`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Bind and start serving in background threads.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = match &config.bind {
            Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run would make bind fail.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        listener.set_nonblocking(true)?;
        let local_addr = match &listener {
            Listener::Tcp(l) => Some(l.local_addr()?),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        };
        #[cfg(unix)]
        let socket_path = match &config.bind {
            Bind::Unix(path) => Some(path.clone()),
            _ => None,
        };

        let conn_workers = if config.workers > 0 {
            config.workers
        } else {
            crate::default_workers()
        };
        let decide_workers = if config.decide_workers > 0 {
            config.decide_workers
        } else {
            crate::default_decide_workers()
        };
        let fair = FairConfig {
            max_inflight: config.max_inflight_queries,
            max_queued_jobs: config.request_queue_depth.max(1),
            quantum: 4,
            weights: config.tenant_weights.iter().cloned().collect(),
            rate_qps: config.tenant_rate_qps,
            burst: config.tenant_burst.max(1.0),
            tenant_quota: config.tenant_max_inflight,
            shed_target: config.shed_target_ms.map(Duration::from_millis),
            shed_interval: Duration::from_millis(config.shed_interval_ms.max(1)),
        };
        let drain_deadline = Duration::from_millis(config.drain_deadline_ms.max(1));
        let max_line_bytes = config.max_line_bytes.max(1);
        let shared = Arc::new(Shared {
            scheduler: FairScheduler::new(fair),
            stats: ServerStats::default(),
            lifecycle: Lifecycle::default(),
            conn_queue: BoundedQueue::new(config.queue_depth),
            decide_workers: Mutex::new(Vec::new()),
            max_line_bytes,
            write_timeout: config.write_timeout_ms.map(Duration::from_millis),
            stalled_read_timeout: config.stalled_read_timeout_ms.map(Duration::from_millis),
            watchdog_stuck: config.watchdog_stuck_ms.map(Duration::from_millis),
            tenants: TenantMap::new(config)?,
        });

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        let conn_threads: Vec<JoinHandle<()>> = (0..conn_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(conn) = shared.conn_queue.pop() {
                        handle_connection(conn, &shared);
                    }
                })
            })
            .collect();
        for _ in 0..decide_workers {
            spawn_decide_worker(&shared);
        }
        let watchdog_thread = shared.watchdog_stuck.map(|stuck| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || watchdog_loop(&shared, stuck))
        });

        Ok(ServerHandle {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            conn_threads,
            watchdog_thread,
            drain_deadline,
            finalized: false,
            #[cfg(unix)]
            socket_path,
        })
    }
}

/// Spawn one decide worker and register its heart with the watchdog list.
///
/// Workers get a deep stack: the positive engine recurses to its Lemma 4.5 depth
/// bound on schema-sized DTDs, and a stack overflow aborts the process — the one
/// failure the catch-unwind panic isolation in [`execute_job`] cannot contain.
fn spawn_decide_worker(shared: &Arc<Shared>) {
    let heart = Arc::new(WorkerHeart::default());
    let handle = {
        let shared = Arc::clone(shared);
        let heart = Arc::clone(&heart);
        std::thread::Builder::new()
            .name("xpsat-decide".into())
            .stack_size(xpsat_core::DECIDE_STACK_BYTES)
            .spawn(move || decide_loop(&shared, &heart))
            .expect("spawn decide worker")
    };
    shared
        .decide_workers
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .push(WorkerSlot { heart, handle });
}

/// A decide worker: pull fair-scheduled jobs until the scheduler signals drain.
fn decide_loop(shared: &Arc<Shared>, heart: &Arc<WorkerHeart>) {
    while let Some(job) = shared.scheduler.next_job() {
        heart.begin();
        let response = execute_job(&job, shared);
        heart.finish();
        shared.scheduler.complete(job.tenant.name(), job.cost);
        job.slot.fulfill(response);
        // Declared stuck by the watchdog while on that job: a replacement already
        // runs, so this (now surplus) worker exits instead of doubling capacity.
        if heart.is_abandoned() {
            return;
        }
    }
}

/// Run one job under panic isolation against its tenant's protocol server.
fn execute_job(job: &Job, shared: &Shared) -> Json {
    // Panic isolation: a request that panics (a solver bug, a hostile input that
    // found a hole in the resource governor) answers `internal_error` and leaves the
    // worker — and every other tenant — serving.  `handle_request` takes `&self`
    // (the protocol server locks internally, and only around workspace mutation),
    // so jobs of one tenant execute concurrently across workers; the internal
    // locks recover from poisoning because tenant state is monotone
    // (registrations and caches), so a panic mid-request cannot corrupt it.
    let response = std::panic::catch_unwind(AssertUnwindSafe(|| {
        job.tenant.proto().handle_request(&job.request)
    }))
    .unwrap_or_else(|panic| {
        ServerStats::bump(&shared.stats.requests_panicked);
        let detail = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        error_response(
            "internal_error",
            &format!("request handling panicked: {detail}"),
            None,
            false,
        )
    });
    ServerStats::bump(&shared.stats.requests_served);
    response
}

/// The watchdog: sample every decide worker's heart; abandon + replace the stuck.
fn watchdog_loop(shared: &Arc<Shared>, stuck: Duration) {
    let tick = (stuck / 8).clamp(Duration::from_millis(10), Duration::from_millis(250));
    while shared.lifecycle.phase() != Phase::Stopped {
        std::thread::sleep(tick);
        let mut replacements = 0;
        {
            let slots = shared
                .decide_workers
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for slot in slots.iter() {
                if slot.heart.is_abandoned() {
                    continue;
                }
                if slot.heart.busy_for().is_some_and(|busy| busy >= stuck) {
                    slot.heart.abandon();
                    shared.lifecycle.record_watchdog_trip();
                    replacements += 1;
                }
            }
        }
        // Spawn outside the lock: spawn_decide_worker reacquires it to register.
        // Don't replace capacity the drain is about to retire anyway.
        if shared.lifecycle.phase() == Phase::Running {
            for _ in 0..replacements {
                spawn_decide_worker(shared);
            }
        }
    }
}

/// Handle to a running server: inspect it, drain it, shut it down.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: Option<SocketAddr>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Vec<JoinHandle<()>>,
    watchdog_thread: Option<JoinHandle<()>>,
    drain_deadline: Duration,
    finalized: bool,
    #[cfg(unix)]
    socket_path: Option<std::path::PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (`None` for Unix-socket servers) — with port `0` in the
    /// config, this is where clients actually connect.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Server-level counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Tenants created so far.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.tenant_count()
    }

    /// Whether drain has begun (via this handle or the `drain` protocol op).
    pub fn draining(&self) -> bool {
        self.shared.lifecycle.phase() != Phase::Running
    }

    /// Stuck-worker replacements performed by the watchdog so far.
    pub fn watchdog_trips(&self) -> u64 {
        self.shared.lifecycle.watchdog_trips()
    }

    /// Begin drain without blocking: stop admitting, let in-flight work finish.
    /// Follow with [`ServerHandle::shutdown`] (or [`ServerHandle::wait`]) to
    /// enforce the deadline and join threads.
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Graceful shutdown: drain, wait for in-flight and queued work up to the
    /// drain deadline, abort (with `shutting_down` answers) what remains, flush
    /// the artifact store, join every thread.  Zero accepted requests are lost:
    /// each is answered by a worker, the shedder, or the abort path.
    pub fn shutdown(mut self) {
        self.finalize();
    }

    /// Block until something requests drain — the `drain` protocol op, typically —
    /// then run the same finalization as [`ServerHandle::shutdown`].  This is what
    /// `xpathsat serve` sits in, so a remote `drain` brings the process down
    /// cleanly.
    pub fn wait(mut self) {
        while self.shared.lifecycle.phase() == Phase::Running {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.finalize();
    }

    fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.shared.drain();

        // Phase 1: let decide workers finish queued + in-flight jobs, bounded by
        // the drain deadline.
        let deadline = Instant::now() + self.drain_deadline;
        loop {
            let all_done = self
                .shared
                .decide_workers
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .iter()
                .all(|slot| slot.handle.is_finished());
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Phase 2: deadline (or no-op if already empty) — answer every still-queued
        // job `shutting_down` and force `next_job` to `None`.
        self.shared.scheduler.abort_queued();
        self.shared.lifecycle.stop();

        // Phase 3: join what can be joined.  Workers wedged on a stuck job (the
        // watchdog already answered for their capacity) are detached, not waited on.
        let worker_handles: Vec<JoinHandle<()>> = self
            .shared
            .decide_workers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .drain(..)
            .map(|slot| slot.handle)
            .collect();
        join_with_grace(worker_handles, Duration::from_secs(1));
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        join_with_grace(
            std::mem::take(&mut self.conn_threads),
            STOPPED_SLOT_GRACE + Duration::from_secs(1),
        );
        if let Some(watchdog) = self.watchdog_thread.take() {
            let _ = watchdog.join();
        }

        // Phase 4: durability + cleanup.
        if let Some(store) = self.shared.tenants.store() {
            let _ = store.flush();
        }
        #[cfg(unix)]
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Join every handle that finishes within `grace`; detach the rest (they exit on
/// their own once their blocking call returns — there is no force-join in std).
fn join_with_grace(mut handles: Vec<JoinHandle<()>>, grace: Duration) {
    let deadline = Instant::now() + grace;
    loop {
        let mut pending = Vec::new();
        for handle in handles.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                pending.push(handle);
            }
        }
        if pending.is_empty() || Instant::now() >= deadline {
            return;
        }
        handles = pending;
        std::thread::sleep(Duration::from_millis(10));
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.finalized {
            return;
        }
        // A dropped handle still stops every thread promptly (without joining):
        // abort queued work so no connection thread is left waiting on a slot, then
        // flip to Stopped so read polls and the accept loop exit.
        self.shared.drain();
        self.shared.scheduler.abort_queued();
        self.shared.lifecycle.stop();
        #[cfg(unix)]
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>) {
    loop {
        match shared.lifecycle.phase() {
            Phase::Stopped => return,
            phase => match listener.accept() {
                Ok(mut conn) => {
                    if phase != Phase::Running {
                        // Draining: tell the client to go elsewhere, then close.
                        let refusal = shutting_down_response("drain in progress");
                        let _ = writeln!(conn, "{refusal}");
                        continue;
                    }
                    match shared.conn_queue.try_push(conn) {
                        Ok(()) => ServerStats::bump(&shared.stats.connections_accepted),
                        Err(PushError::Full(mut conn)) => {
                            ServerStats::bump(&shared.stats.connections_rejected);
                            let refusal = overloaded_response("connection queue full");
                            let _ = writeln!(conn, "{refusal}");
                            // Dropping `conn` closes it.
                        }
                        Err(PushError::Closed(mut conn)) => {
                            let refusal = shutting_down_response("drain in progress");
                            let _ = writeln!(conn, "{refusal}");
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            },
        }
    }
}

/// Serve one connection until EOF, error or server stop.
fn handle_connection(conn: Conn, shared: &Arc<Shared>) {
    let _ = conn.set_read_timeout(Some(READ_POLL));
    let _ = conn.set_write_timeout(shared.write_timeout);
    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(conn);
    let mut line_reader = LineReader::new(shared.max_line_bytes);
    // Slow-loris guard: set when the reader is mid-line (bytes received, no newline
    // yet); a client that stalls there past the configured timeout is dropped.  Idle
    // connections *between* requests never trip it.
    let mut line_started: Option<Instant> = None;
    loop {
        match line_reader.read_from(&mut reader) {
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.lifecycle.phase() == Phase::Stopped {
                    return;
                }
                if line_reader.mid_line() {
                    let started = *line_started.get_or_insert_with(Instant::now);
                    if let Some(limit) = shared.stalled_read_timeout {
                        if started.elapsed() >= limit {
                            ServerStats::bump(&shared.stats.connections_stalled);
                            return;
                        }
                    }
                } else {
                    line_started = None;
                }
            }
            Err(_) | Ok(LineRead::Eof) => return,
            Ok(LineRead::Oversized) => {
                line_started = None;
                ServerStats::bump(&shared.stats.requests_oversized);
                let response = oversized_response(shared.max_line_bytes);
                if writeln!(writer, "{response}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Ok(LineRead::Line) => {
                line_started = None;
                let line = String::from_utf8_lossy(line_reader.line()).into_owned();
                if line.trim().is_empty() {
                    continue;
                }
                let response = handle_request_line(&line, shared);
                if writeln!(writer, "{response}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if shared.lifecycle.phase() == Phase::Stopped {
                    return;
                }
            }
        }
    }
}

/// Process one request line: parse, intercept lifecycle ops, resolve tenant,
/// submit to the fair scheduler, wait for the answer.
fn handle_request_line(line: &str, shared: &Arc<Shared>) -> Json {
    let request = match Json::parse(line.trim_end_matches(['\n', '\r'])) {
        Ok(request) => request,
        Err(e) => {
            ServerStats::bump(&shared.stats.requests_malformed);
            return error_response(
                "malformed_request",
                &format!("malformed request: {e}"),
                None,
                false,
            );
        }
    };
    let op = request.get("op").and_then(Json::as_str);

    // Lifecycle ops are served by the front-end itself (no tenant, no queueing):
    // they must answer even when the decide pool is saturated or draining.
    match op {
        Some("health") => return health_response(shared),
        Some("drain") => {
            shared.drain();
            return Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::Str("drain".into())),
                ("phase", Json::Str(phase_name(shared).into())),
                ("draining", Json::Bool(true)),
            ]);
        }
        _ => {}
    }

    let tenant_name = request
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or(DEFAULT_TENANT)
        .to_string();
    let tenant = match shared.tenants.tenant(&tenant_name) {
        Ok(tenant) => tenant,
        Err(reason) => {
            return error_response(
                "invalid_tenant",
                &format!("invalid tenant: {reason}"),
                None,
                false,
            )
        }
    };

    // Admission cost: a batch of n queries costs n, anything else costs 1.
    let cost = request
        .get("queries")
        .and_then(Json::as_array)
        .map(|qs| qs.len().max(1) as u64)
        .unwrap_or(1);
    let is_stats = op == Some("stats");
    let slot = Arc::new(ResponseSlot::default());
    let job = Job {
        request,
        tenant,
        cost,
        enqueued: Instant::now(),
        slot: Arc::clone(&slot),
    };
    let mut response = match shared.scheduler.submit(job) {
        Ok(()) => wait_for_slot(&slot, shared),
        Err((_job, refusal)) => refusal_response(refusal, shared),
    };

    // `stats` responses additionally report the server-wide view.
    if is_stats {
        append_server_stats(&mut response, &tenant_name, shared);
    }
    response
}

/// Map an admission refusal to its response (and counters).
fn refusal_response(refusal: Refusal, shared: &Shared) -> Json {
    match refusal {
        Refusal::Draining => shutting_down_response("drain in progress"),
        Refusal::RateLimited => {
            ServerStats::bump(&shared.stats.requests_overloaded);
            ServerStats::bump(&shared.stats.requests_rate_limited);
            overloaded_response("tenant rate limit exceeded, slow down")
        }
        Refusal::OverQuota => {
            ServerStats::bump(&shared.stats.requests_overloaded);
            overloaded_response("tenant in-flight quota reached")
        }
        Refusal::Saturated => {
            ServerStats::bump(&shared.stats.requests_overloaded);
            overloaded_response("in-flight query limit reached")
        }
        Refusal::QueueFull => {
            ServerStats::bump(&shared.stats.requests_overloaded);
            overloaded_response("request queue full")
        }
    }
}

/// Block until the job's answer arrives, with two backstops: the watchdog-stuck
/// abandonment (~2× the stuck threshold) and the post-stop grace.
fn wait_for_slot(slot: &ResponseSlot, shared: &Shared) -> Json {
    let abandon_after = shared.watchdog_stuck.map(|stuck| stuck * 2);
    let started = Instant::now();
    let mut stopped_seen: Option<Instant> = None;
    loop {
        if let Some(response) = slot.wait_for(SLOT_POLL) {
            return response;
        }
        if let Some(limit) = abandon_after {
            if started.elapsed() >= limit {
                return abandoned_response();
            }
        }
        if shared.lifecycle.phase() == Phase::Stopped {
            let seen = *stopped_seen.get_or_insert_with(Instant::now);
            if seen.elapsed() >= STOPPED_SLOT_GRACE {
                return abandoned_response();
            }
        }
    }
}

fn phase_name(shared: &Shared) -> &'static str {
    match shared.lifecycle.phase() {
        Phase::Running => "running",
        Phase::Draining => "draining",
        Phase::Stopped => "stopped",
    }
}

/// The `health` op: liveness + a cheap load summary, served without queueing.
fn health_response(shared: &Shared) -> Json {
    let totals = shared.scheduler.totals();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("health".into())),
        ("phase", Json::Str(phase_name(shared).into())),
        (
            "draining",
            Json::Bool(shared.lifecycle.phase() != Phase::Running),
        ),
        (
            "uptime_ms",
            Json::Num(shared.lifecycle.uptime().as_millis() as f64),
        ),
        ("queued_jobs", Json::Num(totals.queued_jobs as f64)),
        ("inflight_cost", Json::Num(totals.inflight_cost as f64)),
        (
            "watchdog_trips",
            Json::Num(shared.lifecycle.watchdog_trips() as f64),
        ),
    ])
}

/// Enrich a tenant's `stats` response with the server-wide view: counters,
/// lifecycle, scheduler totals and the per-tenant lanes.
fn append_server_stats(response: &mut Json, tenant_name: &str, shared: &Shared) {
    let Json::Obj(fields) = response else { return };
    let server = shared.stats.snapshot();
    let totals = shared.scheduler.totals();
    let mut push = |key: &str, value: Json| fields.push((key.to_string(), value));
    push("tenant", Json::Str(tenant_name.to_string()));
    push("tenants", Json::Num(shared.tenants.tenant_count() as f64));
    push("server_phase", Json::Str(phase_name(shared).to_string()));
    push(
        "server_uptime_ms",
        Json::Num(shared.lifecycle.uptime().as_millis() as f64),
    );
    push(
        "server_connections_accepted",
        Json::Num(server.connections_accepted as f64),
    );
    push(
        "server_connections_rejected",
        Json::Num(server.connections_rejected as f64),
    );
    push(
        "server_requests_served",
        Json::Num(server.requests_served as f64),
    );
    push(
        "server_requests_overloaded",
        Json::Num(server.requests_overloaded as f64),
    );
    push(
        "server_requests_rate_limited",
        Json::Num(server.requests_rate_limited as f64),
    );
    push(
        "server_requests_malformed",
        Json::Num(server.requests_malformed as f64),
    );
    push(
        "server_requests_oversized",
        Json::Num(server.requests_oversized as f64),
    );
    push(
        "server_requests_panicked",
        Json::Num(server.requests_panicked as f64),
    );
    push(
        "server_connections_stalled",
        Json::Num(server.connections_stalled as f64),
    );
    push("server_requests_shed", Json::Num(totals.shed as f64));
    push(
        "server_requests_aborted_at_drain",
        Json::Num(totals.aborted_at_drain as f64),
    );
    push(
        "server_requests_drained",
        Json::Num(totals.drained_after_drain as f64),
    );
    push("server_queued_jobs", Json::Num(totals.queued_jobs as f64));
    push(
        "server_inflight_cost",
        Json::Num(totals.inflight_cost as f64),
    );
    push(
        "server_watchdog_trips",
        Json::Num(shared.lifecycle.watchdog_trips() as f64),
    );
    let lanes: Vec<Json> = shared
        .scheduler
        .lane_snapshots()
        .into_iter()
        .map(|lane| {
            Json::obj(vec![
                ("tenant", Json::Str(lane.tenant)),
                ("weight", Json::Num(lane.weight as f64)),
                ("queued_jobs", Json::Num(lane.queued_jobs as f64)),
                ("queued_cost", Json::Num(lane.queued_cost as f64)),
                ("inflight_cost", Json::Num(lane.inflight_cost as f64)),
                (
                    "tokens_remaining",
                    lane.tokens_remaining
                        .map(|t| Json::Num(t.floor()))
                        .unwrap_or(Json::Null),
                ),
                ("served", Json::Num(lane.served as f64)),
                ("shed", Json::Num(lane.shed as f64)),
                ("rate_limited", Json::Num(lane.rate_limited as f64)),
                ("over_quota", Json::Num(lane.over_quota as f64)),
            ])
        })
        .collect();
    push("tenant_lanes", Json::Arr(lanes));
}
