//! `xpathsat` — command-line front-end of the satisfiability service.
//!
//! ```text
//! xpathsat check --dtd <file|-> [--witness] <query>...
//! xpathsat batch [--threads N] [--input <file>]
//! xpathsat classify --dtd <file|-> [<query>...]
//! xpathsat bench-gen [--depth D] [--width W] [--queries N] [--seed S] [--threads T]
//! xpathsat serve [--addr A | --unix PATH] [--cache-dir DIR] [...]
//! xpathsat connect (--addr A | --unix PATH) [--input <file>]
//! xpathsat stats (--addr A | --unix PATH) [--tenant NAME]
//! ```
//!
//! `check` decides each query against one DTD and prints a human-readable verdict per
//! line.  `batch` runs the JSON-lines protocol (stdin or `--input` file → stdout), which
//! is the service's machine endpoint.  `classify` prints the DTD's structural class and
//! preprocessing summary, plus — for each query given — its canonical form, structural
//! hashes and compiled decision-program size.  `bench-gen` emits a reproducible JSON-lines workload
//! (`register_dtd` + a large `batch` + `stats`) ready to pipe back into `xpathsat
//! batch`.  `serve` runs the same protocol as a persistent multi-tenant TCP (or
//! Unix-socket) daemon with an on-disk artifact cache, tenant-fair scheduling and a
//! graceful drain lifecycle; `connect` pipes a script to a running daemon; `stats`
//! asks one for its counters; `health` probes liveness; `drain` asks it to shut
//! down gracefully (finish in-flight work, refuse new work, flush, exit).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;
use xpsat_server::{Bind, Server, ServerConfig};
use xpsat_service::{effective_threads, Json, ProtocolServer, ServiceError, Session};

const USAGE: &str = "xpathsat — XPath-satisfiability service CLI

USAGE:
    xpathsat check --dtd <file|-> [--witness] <query>...
    xpathsat batch [--threads N] [--input <file>]
    xpathsat classify --dtd <file|-> [<query>...]
    xpathsat bench-gen [--depth D] [--width W] [--queries N] [--seed S] [--threads T]
    xpathsat serve [--addr A | --unix PATH] [--workers N] [--queue N]
                   [--decide-workers N] [--request-queue N]
                   [--max-inflight N] [--deadline-ms MS] [--max-steps N]
                   [--tenant-rate QPS] [--tenant-burst N] [--tenant-inflight N]
                   [--tenant-weight NAME=W]... [--shed-target-ms MS]
                   [--drain-deadline-ms MS] [--watchdog-ms MS]
                   [--cache-dir DIR] [--max-resident N] [--max-line-bytes N]
                   [--threads T]
    xpathsat connect (--addr A | --unix PATH) [--input <file>]
    xpathsat stats (--addr A | --unix PATH) [--tenant NAME]
    xpathsat health (--addr A | --unix PATH)
    xpathsat drain (--addr A | --unix PATH)

SUBCOMMANDS:
    check       Decide queries against a DTD, one verdict per line
    batch       Serve the JSON-lines protocol (one request per line on stdin)
    classify    Print the DTD's structural classification and artifact summary;
                with queries, also each query's canonical form, structural
                hashes and compiled decision-program size
    bench-gen   Emit a reproducible JSON-lines workload for `xpathsat batch`
    serve       Run the protocol as a persistent TCP/Unix-socket daemon
    connect     Pipe protocol lines (stdin or --input) to a running daemon
    stats       Print a running daemon's counters as one JSON line
    health      Print a running daemon's lifecycle phase and load as one JSON line
    drain       Gracefully shut a running daemon down (it finishes in-flight work)

OPTIONS:
    --dtd <file|->     DTD in the workspace's textual syntax ('-' reads stdin)
    --witness          Include witness documents in `check` output
    --threads N        Worker threads for batch dispatch (default: CPU count)
    --input <file>     Read protocol lines from a file instead of stdin
    --depth D          bench-gen: layered-DTD depth (default 4)
    --width W          bench-gen: sibling types per level (default 3)
    --queries N        bench-gen: number of random queries (default 100)
    --seed S           bench-gen: RNG seed (default 2005)
    --addr A           serve/connect/stats: TCP address (default 127.0.0.1:7878;
                       serve with port 0 picks an ephemeral port and prints it)
    --unix PATH        serve/connect/stats: Unix-socket path instead of TCP
    --workers N        serve: connection worker threads (default: CPUs, min 4)
    --queue N          serve: pending-connection queue bound (default 32)
    --decide-workers N serve: decide worker threads (default: CPUs, min 2)
    --request-queue N  serve: fair-scheduler request queue bound (default 256)
    --max-inflight N   serve: in-flight query admission bound (default 256)
    --tenant-rate QPS  serve: per-tenant token-bucket refill rate in query cost
                       per second (default: unlimited)
    --tenant-burst N   serve: token-bucket burst capacity (default 64)
    --tenant-inflight N serve: per-tenant queued+executing cost quota (default:
                       unbounded)
    --tenant-weight NAME=W serve: scheduling weight for a tenant (repeatable;
                       unlisted tenants weigh 1)
    --shed-target-ms MS serve: CoDel shed target for queue delay (default 200;
                       0 disables adaptive shedding)
    --drain-deadline-ms MS serve: graceful-shutdown drain deadline (default 5000)
    --watchdog-ms MS   serve: stuck-worker watchdog threshold (default 30000;
                       0 disables the watchdog)
    --deadline-ms MS   serve: default per-request deadline (default: none)
    --max-steps N      serve: default per-decision solver step budget; a decision
                       that spends it answers resource_exhausted (default: none)
    --cache-dir DIR    serve: persistent artifact cache root (default: none)
    --max-resident N   serve: per-tenant resident compiled-DTD bound (default: none)
    --max-line-bytes N serve: request line length cap (default 1048576)
    --tenant NAME      stats: tenant to report workspace counters for
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((subcommand, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match subcommand.as_str() {
        "check" => cmd_check(rest),
        "batch" => cmd_batch(rest),
        "classify" => cmd_classify(rest),
        "bench-gen" => cmd_bench_gen(rest),
        "serve" => cmd_serve(rest),
        "connect" => cmd_connect(rest),
        "stats" => cmd_stats(rest),
        "health" => cmd_one_shot_op(rest, "health"),
        "drain" => cmd_one_shot_op(rest, "drain"),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Runtime(e.to_string())
    }
}

/// Parsed `--flag value` / `--switch` options plus positional arguments.
struct Options {
    dtd: Option<String>,
    witness: bool,
    threads: usize,
    input: Option<String>,
    depth: usize,
    width: usize,
    queries: usize,
    seed: u64,
    addr: Option<String>,
    unix: Option<String>,
    workers: usize,
    queue: usize,
    decide_workers: usize,
    request_queue: usize,
    max_inflight: u64,
    tenant_rate: Option<f64>,
    tenant_burst: f64,
    tenant_inflight: Option<u64>,
    tenant_weights: Vec<(String, u64)>,
    shed_target_ms: Option<u64>,
    drain_deadline_ms: u64,
    watchdog_ms: Option<u64>,
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
    cache_dir: Option<String>,
    max_resident: Option<usize>,
    max_line_bytes: usize,
    tenant: Option<String>,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut options = Options {
        dtd: None,
        witness: false,
        threads: 0,
        input: None,
        depth: 4,
        width: 3,
        queries: 100,
        seed: 2005,
        addr: None,
        unix: None,
        workers: 0,
        queue: 32,
        decide_workers: 0,
        request_queue: 256,
        max_inflight: 256,
        tenant_rate: None,
        tenant_burst: 64.0,
        tenant_inflight: None,
        tenant_weights: Vec::new(),
        shed_target_ms: Some(200),
        drain_deadline_ms: 5_000,
        watchdog_ms: Some(30_000),
        deadline_ms: None,
        max_steps: None,
        cache_dir: None,
        max_resident: None,
        max_line_bytes: xpsat_service::DEFAULT_MAX_LINE_BYTES,
        tenant: None,
        positional: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        fn numeric<T: std::str::FromStr>(flag: &str, value: String) -> Result<T, CliError> {
            value
                .parse()
                .map_err(|_| CliError::Usage(format!("{flag} needs a number")))
        }
        match arg.as_str() {
            "--dtd" => options.dtd = Some(value_of("--dtd")?),
            "--witness" => options.witness = true,
            "--threads" => options.threads = numeric("--threads", value_of("--threads")?)?,
            "--input" => options.input = Some(value_of("--input")?),
            "--depth" => options.depth = numeric("--depth", value_of("--depth")?)?,
            "--width" => options.width = numeric("--width", value_of("--width")?)?,
            "--queries" => options.queries = numeric("--queries", value_of("--queries")?)?,
            "--seed" => options.seed = numeric("--seed", value_of("--seed")?)?,
            "--addr" => options.addr = Some(value_of("--addr")?),
            "--unix" => options.unix = Some(value_of("--unix")?),
            "--workers" => options.workers = numeric("--workers", value_of("--workers")?)?,
            "--queue" => options.queue = numeric("--queue", value_of("--queue")?)?,
            "--decide-workers" => {
                options.decide_workers = numeric("--decide-workers", value_of("--decide-workers")?)?
            }
            "--request-queue" => {
                options.request_queue = numeric("--request-queue", value_of("--request-queue")?)?
            }
            "--max-inflight" => {
                options.max_inflight = numeric("--max-inflight", value_of("--max-inflight")?)?
            }
            "--tenant-rate" => {
                options.tenant_rate = Some(numeric("--tenant-rate", value_of("--tenant-rate")?)?)
            }
            "--tenant-burst" => {
                options.tenant_burst = numeric("--tenant-burst", value_of("--tenant-burst")?)?
            }
            "--tenant-inflight" => {
                options.tenant_inflight = Some(numeric(
                    "--tenant-inflight",
                    value_of("--tenant-inflight")?,
                )?)
            }
            "--tenant-weight" => {
                let spec = value_of("--tenant-weight")?;
                let (name, weight) = spec.split_once('=').ok_or_else(|| {
                    CliError::Usage("--tenant-weight needs NAME=WEIGHT".to_string())
                })?;
                let weight: u64 = weight.parse().map_err(|_| {
                    CliError::Usage("--tenant-weight needs an integer weight".to_string())
                })?;
                options
                    .tenant_weights
                    .push((name.to_string(), weight.max(1)));
            }
            "--shed-target-ms" => {
                let ms: u64 = numeric("--shed-target-ms", value_of("--shed-target-ms")?)?;
                options.shed_target_ms = (ms > 0).then_some(ms);
            }
            "--drain-deadline-ms" => {
                options.drain_deadline_ms =
                    numeric("--drain-deadline-ms", value_of("--drain-deadline-ms")?)?
            }
            "--watchdog-ms" => {
                let ms: u64 = numeric("--watchdog-ms", value_of("--watchdog-ms")?)?;
                options.watchdog_ms = (ms > 0).then_some(ms);
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(numeric("--deadline-ms", value_of("--deadline-ms")?)?)
            }
            "--max-steps" => {
                options.max_steps = Some(numeric("--max-steps", value_of("--max-steps")?)?)
            }
            "--cache-dir" => options.cache_dir = Some(value_of("--cache-dir")?),
            "--max-resident" => {
                options.max_resident = Some(numeric("--max-resident", value_of("--max-resident")?)?)
            }
            "--max-line-bytes" => {
                options.max_line_bytes = numeric("--max-line-bytes", value_of("--max-line-bytes")?)?
            }
            "--tenant" => options.tenant = Some(value_of("--tenant")?),
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{other}'")))
            }
            other => options.positional.push(other.to_string()),
        }
    }
    Ok(options)
}

fn read_dtd(options: &Options) -> Result<String, CliError> {
    let source = options
        .dtd
        .as_deref()
        .ok_or_else(|| CliError::Usage("--dtd is required".into()))?;
    if source == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        std::fs::read_to_string(source)
            .map_err(|e| CliError::Runtime(format!("cannot read {source}: {e}")))
    }
}

/// Render the source line containing a parse-error span with a caret run under the
/// offending bytes.  Pathologically long lines (hostile single-line inputs) are
/// windowed around the span so the terminal stays readable.
fn caret_snippet(source: &str, offset: usize, len: usize) -> String {
    let offset = offset.min(source.len());
    let line_start = source[..offset].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[offset..]
        .find('\n')
        .map_or(source.len(), |i| offset + i);
    const WINDOW: usize = 60;
    let mut start = line_start.max(offset.saturating_sub(WINDOW));
    while !source.is_char_boundary(start) {
        start -= 1;
    }
    let mut end = line_end.min(offset.saturating_add(len.max(1)).saturating_add(WINDOW));
    while end < line_end && !source.is_char_boundary(end) {
        end += 1;
    }
    let prefix = if start > line_start { "…" } else { "" };
    let suffix = if end < line_end { "…" } else { "" };
    let caret_col = prefix.chars().count() + source[start..offset].chars().count();
    let caret_len = source[offset..(offset + len).min(end).max(offset)]
        .chars()
        .count()
        .max(1);
    format!(
        "  {prefix}{}{suffix}\n  {:caret_col$}{}",
        &source[start..end],
        "",
        "^".repeat(caret_len),
    )
}

/// Turn a service error into a CLI error, attaching a caret snippet against `source`
/// when the error carries a span into it.
fn service_error_to_cli(e: ServiceError, source: &str) -> CliError {
    match &e {
        ServiceError::DtdParse { span, .. } | ServiceError::QueryParse { span, .. } => {
            CliError::Runtime(format!("{e}\n{}", caret_snippet(source, span.0, span.1)))
        }
        _ => CliError::Runtime(e.to_string()),
    }
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    if options.positional.is_empty() {
        return Err(CliError::Usage("check needs at least one query".into()));
    }
    let dtd_text = read_dtd(&options)?;
    let mut session = Session::new();
    session
        .load_dtd(&dtd_text)
        .map_err(|e| service_error_to_cli(e, &dtd_text))?;
    let threads = effective_threads(options.threads);
    let served = session
        .check_batch(&options.positional, threads)
        .map_err(|e| {
            // A batch parse error does not say which query failed; re-parse to find it
            // so the caret lands on the right source text.
            if matches!(e, ServiceError::QueryParse { .. }) {
                if let Some(query) = options
                    .positional
                    .iter()
                    .find(|q| xpsat_xpath::parse_path(q).is_err())
                {
                    return service_error_to_cli(e, query);
                }
            }
            CliError::Runtime(e.to_string())
        })?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut any_unknown = false;
    for (query, one) in options.positional.iter().zip(&served) {
        let decision = &one.decision;
        writeln!(
            out,
            "{query}: {} [engine: {}; complete: {}; cached: {}]",
            decision.result,
            xpsat_service::engine_slug(decision.engine),
            decision.complete,
            one.cached,
        )?;
        if options.witness {
            if let xpsat_core::Satisfiability::Satisfiable(doc) = &decision.result {
                writeln!(out, "  witness: {}", xpsat_xmltree::serialize::to_xml(doc))?;
            }
        }
        any_unknown |= !decision.result.is_definite();
    }
    if any_unknown {
        Err(CliError::Runtime("some verdicts were 'unknown'".into()))
    } else {
        Ok(())
    }
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    if !options.positional.is_empty() {
        return Err(CliError::Usage(
            "batch takes no positional arguments".into(),
        ));
    }
    let server = ProtocolServer::new(options.threads);
    let stdout = std::io::stdout();
    match &options.input {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
            server.serve(BufReader::new(file), stdout.lock())?;
        }
        None => {
            let stdin = std::io::stdin();
            server.serve(stdin.lock(), stdout.lock())?;
        }
    }
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let dtd_text = read_dtd(&options)?;
    let mut session = Session::new();
    let id = session
        .load_dtd(&dtd_text)
        .map_err(|e| service_error_to_cli(e, &dtd_text))?;
    let artifacts = session
        .workspace()
        .artifacts(id)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let class = &artifacts.class;
    println!("root:               {}", artifacts.dtd.root());
    println!(
        "element types:      {}",
        artifacts.dtd.element_names().len()
    );
    println!("size |D|:           {}", artifacts.dtd.size());
    println!("recursive:          {}", class.recursive);
    println!("disjunction-free:   {}", class.disjunction_free);
    println!("has star:           {}", class.has_star);
    println!("normalized:         {}", class.normalized);
    match class.depth_bound {
        Some(depth) => println!("depth bound:        {depth}"),
        None => println!("depth bound:        unbounded (recursive)"),
    }
    println!(
        "normalisation N(D): {} fresh types",
        artifacts.normalization.new_types.len()
    );
    println!(
        "content automata:   {}",
        artifacts.compiled.automata_count()
    );
    for text in &options.positional {
        let q = session
            .workspace_mut()
            .intern(text)
            .map_err(|e| service_error_to_cli(e, text))?;
        let program = session
            .workspace()
            .compiled_program(id, q)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let query = session
            .workspace()
            .query(q)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        println!();
        println!("query:              {}", query.canonical);
        println!("canonical form:     {}", query.canon_text);
        println!("canonical hash:     {:016x}", query.canonical_hash);
        println!("structural hash:    {:016x}", query.structural_hash);
        match program {
            Some(program) => println!("compiled program:   {} ops", program.ops.len()),
            None => println!("compiled program:   none (outside the compiled fragment)"),
        }
    }
    Ok(())
}

fn cmd_bench_gen(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    if !options.positional.is_empty() {
        return Err(CliError::Usage(
            "bench-gen takes no positional arguments".into(),
        ));
    }
    let dtd = xpsat_core::corpus::layered_dtd(options.depth, options.width);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let queries: Vec<Json> = (0..options.queries)
        .map(|_| {
            Json::Str(xpsat_core::corpus::random_positive_query(&mut rng, &dtd, 3).to_string())
        })
        .collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "{}",
        Json::obj(vec![
            ("op", Json::Str("register_dtd".into())),
            ("dtd", Json::Str(dtd.to_string())),
        ])
    )?;
    let mut batch = vec![
        ("op", Json::Str("batch".into())),
        ("dtd_id", Json::Num(0.0)),
        ("queries", Json::Arr(queries)),
    ];
    if options.threads > 0 {
        batch.push(("threads", Json::Num(options.threads as f64)));
    }
    writeln!(out, "{}", Json::obj(batch))?;
    writeln!(
        out,
        "{}",
        Json::obj(vec![("op", Json::Str("stats".into()))])
    )?;
    Ok(())
}

/// A client connection to a running daemon (TCP or Unix socket).
enum ClientConn {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

/// A buffered reader plus writer over the same server connection.
type ClientHalves = (Box<dyn BufRead>, Box<dyn Write>);

impl ClientConn {
    fn open(options: &Options) -> Result<ClientConn, CliError> {
        if let Some(path) = &options.unix {
            #[cfg(unix)]
            {
                return Ok(ClientConn::Unix(
                    std::os::unix::net::UnixStream::connect(path)
                        .map_err(|e| CliError::Runtime(format!("cannot connect to {path}: {e}")))?,
                ));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(CliError::Usage(
                    "--unix is only supported on Unix platforms".into(),
                ));
            }
        }
        let addr = options.addr.as_deref().unwrap_or("127.0.0.1:7878");
        Ok(ClientConn::Tcp(
            std::net::TcpStream::connect(addr)
                .map_err(|e| CliError::Runtime(format!("cannot connect to {addr}: {e}")))?,
        ))
    }

    fn split(self) -> Result<ClientHalves, CliError> {
        Ok(match self {
            ClientConn::Tcp(stream) => {
                let reader = stream.try_clone().map_err(CliError::from)?;
                (
                    Box::new(BufReader::new(reader)) as Box<dyn BufRead>,
                    Box::new(stream) as Box<dyn Write>,
                )
            }
            #[cfg(unix)]
            ClientConn::Unix(stream) => {
                let reader = stream.try_clone().map_err(CliError::from)?;
                (
                    Box::new(BufReader::new(reader)) as Box<dyn BufRead>,
                    Box::new(stream) as Box<dyn Write>,
                )
            }
        })
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    if !options.positional.is_empty() {
        return Err(CliError::Usage(
            "serve takes no positional arguments".into(),
        ));
    }
    if options.addr.is_some() && options.unix.is_some() {
        return Err(CliError::Usage("--addr and --unix are exclusive".into()));
    }
    let bind = if let Some(path) = &options.unix {
        #[cfg(unix)]
        {
            Bind::Unix(std::path::PathBuf::from(path))
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(CliError::Usage(
                "--unix is only supported on Unix platforms".into(),
            ));
        }
    } else {
        Bind::Tcp(
            options
                .addr
                .clone()
                .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        )
    };
    let config = ServerConfig {
        bind,
        workers: options.workers,
        queue_depth: options.queue,
        decide_workers: options.decide_workers,
        max_inflight_queries: options.max_inflight,
        request_queue_depth: options.request_queue,
        tenant_rate_qps: options.tenant_rate,
        tenant_burst: options.tenant_burst,
        tenant_max_inflight: options.tenant_inflight,
        tenant_weights: options.tenant_weights.clone(),
        shed_target_ms: options.shed_target_ms,
        drain_deadline_ms: options.drain_deadline_ms,
        watchdog_stuck_ms: options.watchdog_ms,
        default_deadline_ms: options.deadline_ms,
        default_max_steps: options.max_steps,
        max_line_bytes: options.max_line_bytes,
        cache_dir: options.cache_dir.as_ref().map(std::path::PathBuf::from),
        max_resident_dtds: options.max_resident,
        default_threads: options.threads,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).map_err(|e| CliError::Runtime(e.to_string()))?;
    // One machine-readable line announcing readiness (and the ephemeral port when
    // the caller bound port 0), then serve until killed.
    let mut ready = vec![("serving", Json::Bool(true))];
    let addr_text = handle.local_addr().map(|a| a.to_string());
    if let Some(addr) = &addr_text {
        ready.push(("addr", Json::Str(addr.clone())));
    }
    if let Some(path) = &options.unix {
        ready.push(("unix", Json::Str(path.clone())));
    }
    if let Some(dir) = &options.cache_dir {
        ready.push(("cache_dir", Json::Str(dir.clone())));
    }
    println!("{}", Json::obj(ready));
    std::io::stdout().flush()?;
    // Serve until something initiates drain (the `drain` protocol op, typically) —
    // then finish in-flight work, abort the rest at the drain deadline, flush the
    // artifact store, and exit cleanly.
    handle.wait();
    Ok(())
}

fn cmd_connect(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    if !options.positional.is_empty() {
        return Err(CliError::Usage(
            "connect takes no positional arguments".into(),
        ));
    }
    let (mut reader, mut writer) = ClientConn::open(&options)?.split()?;
    let input: Box<dyn BufRead> = match &options.input {
        Some(path) => {
            Box::new(BufReader::new(std::fs::File::open(path).map_err(|e| {
                CliError::Runtime(format!("cannot read {path}: {e}"))
            })?))
        }
        None => Box::new(BufReader::new(std::io::stdin())),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut response = String::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        response.clear();
        if reader.read_line(&mut response)? == 0 {
            return Err(CliError::Runtime(
                "server closed the connection mid-script".into(),
            ));
        }
        out.write_all(response.as_bytes())?;
    }
    Ok(())
}

/// `health` / `drain`: send one lifecycle op, print the one-line answer.
fn cmd_one_shot_op(args: &[String], op: &str) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let (mut reader, mut writer) = ClientConn::open(&options)?.split()?;
    writeln!(writer, "{}", Json::obj(vec![("op", Json::Str(op.into()))]))?;
    writer.flush()?;
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(CliError::Runtime("server closed the connection".into()));
    }
    print!("{response}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let (mut reader, mut writer) = ClientConn::open(&options)?.split()?;
    let mut request = vec![("op", Json::Str("stats".into()))];
    if let Some(tenant) = &options.tenant {
        request.push(("tenant", Json::Str(tenant.clone())));
    }
    writeln!(writer, "{}", Json::obj(request))?;
    writer.flush()?;
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(CliError::Runtime("server closed the connection".into()));
    }
    print!("{response}");
    Ok(())
}
