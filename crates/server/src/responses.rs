//! Canned server-level refusal responses.
//!
//! These are the answers the *admission and lifecycle* layer gives before (or
//! instead of) a tenant's [`xpsat_service::ProtocolServer`] ever sees the request.
//! Each carries the structured error object from the PR 5 taxonomy plus a legacy
//! top-level flag so pre-taxonomy clients keep working.

use xpsat_service::{error_response, Json};

/// The explicit backpressure response: `"overloaded":true` tells a well-behaved
/// client to back off and retry, distinguishing load shedding from request errors.
/// Kept as a top-level flag alongside the structured error object for older clients.
pub fn overloaded_response(reason: &str) -> Json {
    let mut response = error_response(
        "overloaded",
        &format!("server overloaded: {reason}"),
        None,
        true,
    );
    if let Json::Obj(fields) = &mut response {
        fields.push(("overloaded".to_string(), Json::Bool(true)));
    }
    response
}

/// An *admitted* request that was dropped by the shedder (queue-full eviction or
/// CoDel delay control).  Same `overloaded` kind — clients treat it identically —
/// plus `"shed":true` so load tooling can tell admission refusals from sheds.
pub fn shed_response(reason: &str) -> Json {
    let mut response = overloaded_response(reason);
    if let Json::Obj(fields) = &mut response {
        fields.push(("shed".to_string(), Json::Bool(true)));
    }
    response
}

/// The drain-time answer: the server is going away; retry against a replacement.
pub fn shutting_down_response(reason: &str) -> Json {
    let mut response = error_response(
        "shutting_down",
        &format!("server shutting down: {reason}"),
        None,
        true,
    );
    if let Json::Obj(fields) = &mut response {
        fields.push(("shutting_down".to_string(), Json::Bool(true)));
    }
    response
}

/// The backstop answer when a request's worker was declared stuck by the watchdog
/// and its connection thread gave up waiting.  Not retryable by default: the same
/// request would likely wedge the replacement worker too.
pub fn abandoned_response() -> Json {
    error_response(
        "internal_error",
        "request abandoned: its worker was declared stuck by the watchdog",
        None,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(response: &Json) -> Option<&str> {
        response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
    }

    #[test]
    fn refusals_carry_taxonomy_and_legacy_flags() {
        let over = overloaded_response("test");
        assert_eq!(kind(&over), Some("overloaded"));
        assert_eq!(over.get("overloaded").and_then(Json::as_bool), Some(true));
        assert_eq!(over.get("shed"), None);

        let shed = shed_response("test");
        assert_eq!(kind(&shed), Some("overloaded"));
        assert_eq!(shed.get("overloaded").and_then(Json::as_bool), Some(true));
        assert_eq!(shed.get("shed").and_then(Json::as_bool), Some(true));

        let down = shutting_down_response("test");
        assert_eq!(kind(&down), Some("shutting_down"));
        assert_eq!(
            down.get("shutting_down").and_then(Json::as_bool),
            Some(true)
        );
        let retryable = down
            .get("error")
            .and_then(|e| e.get("retryable"))
            .and_then(Json::as_bool);
        assert_eq!(retryable, Some(true));

        assert_eq!(kind(&abandoned_response()), Some("internal_error"));
    }
}
