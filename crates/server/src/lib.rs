//! `xpsat-server` — a persistent, multi-tenant network front-end for the
//! [`xpsat_service`] satisfiability stack.
//!
//! The service crate turned the paper's per-DTD-heavy cost model into an in-process
//! workspace; this crate turns that workspace into a long-running daemon so the
//! amortisation survives *across processes and machines*:
//!
//! * [`Server`] — a `std::net` TCP (or Unix-socket) listener speaking the same
//!   JSON-lines protocol as `xpathsat` stdio mode, with hand-rolled thread pools
//!   (no async runtime, no extra dependencies).  Connections beyond the connection
//!   pool wait in a bounded queue ([`pool::BoundedQueue`]); connections beyond
//!   *that* are refused with an explicit `overloaded` response — backpressure is a
//!   protocol feature, not a TCP accident.
//! * Tenants — each request may carry a `"tenant"` field; every tenant gets its own
//!   [`xpsat_service::Workspace`] (own DTD ids, interner, decision cache), so two
//!   clients sharing a server cannot observe each other's registrations.  Resident
//!   compiled artifacts are bounded per tenant (LRU eviction + transparent
//!   rematerialisation).
//! * Fairness — requests are dispatched by a tenant-fair scheduler
//!   ([`fair::FairScheduler`]): deficit round-robin over per-tenant sub-queues
//!   (weighted via `tenant_weights`), per-tenant token-bucket rate limits and
//!   in-flight quotas, CoDel-style shedding when queue delay stays above target,
//!   and queue-full eviction from the *largest* backlog.  A flooding tenant is the
//!   one that sees `overloaded`; everyone else keeps their latency.
//! * Lifecycle — `health` and `drain` protocol ops, a drain-aware
//!   [`ServerHandle::shutdown`] (stop admitting, finish or deadline-abort in-flight
//!   work with `shutting_down` answers, flush the artifact store, join threads) and
//!   a watchdog that replaces decide workers stuck past `watchdog_stuck_ms`.
//! * Persistence — with a cache directory configured, every tenant workspace is
//!   backed by an [`xpsat_service::ArtifactStore`]: a restarted (or sibling) server
//!   loads compiled artifacts from disk instead of re-running classification,
//!   normalisation and automata construction, and `register_dtd` reports
//!   `"cached":true`.
//! * Deadlines — a server-wide default deadline (and per-request `"deadline_ms"`)
//!   bounds tail latency; expired requests answer `"deadline_exceeded":true` while
//!   still publishing partial progress to the decision cache.
//!
//! The `xpathsat` binary (in this crate) fronts both modes: `serve` runs the daemon,
//! `connect` pipes a script to a running server, and the stdio subcommands from the
//! service crate continue to work unchanged.

pub mod fair;
pub mod lifecycle;
pub mod pool;
pub mod responses;
pub mod server;
pub mod stats;
pub mod tenant;

pub use fair::{FairConfig, FairScheduler, LaneSnapshot, SchedulerTotals};
pub use lifecycle::{Lifecycle, Phase, WorkerHeart};
pub use pool::{BoundedQueue, PushError};
pub use server::{Server, ServerHandle};
pub use stats::{ServerStats, ServerStatsSnapshot};
pub use tenant::{Tenant, TenantMap, DEFAULT_TENANT};

use std::path::PathBuf;

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address such as `127.0.0.1:7878` (use port `0` for an ephemeral port —
    /// [`ServerHandle::local_addr`] reports what was bound).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Connection threads (each owns one connection at a time, doing framing and
    /// admission, never decide work); `0` means [`default_workers`].
    pub workers: usize,
    /// Bound on connections waiting for a free connection thread; connections
    /// arriving beyond it are answered with an `overloaded` error and closed.
    pub queue_depth: usize,
    /// Decide worker threads executing fair-scheduled requests; `0` means
    /// [`default_decide_workers`].
    pub decide_workers: usize,
    /// Bound on the total queries admitted at once across all tenants, queued +
    /// executing (a batch of `n` costs `n`); requests that would exceed it answer
    /// `overloaded`.
    pub max_inflight_queries: u64,
    /// Bound on *requests* waiting in the fair scheduler across all tenants.  At
    /// the bound, the newest job of the most-backlogged tenant is shed (answered
    /// `overloaded`) to admit other tenants' arrivals.
    pub request_queue_depth: usize,
    /// Per-tenant token-bucket refill rate in query-cost units per second; a tenant
    /// submitting faster answers `overloaded` (rate-limited) without affecting
    /// anyone else.  `None` disables rate limiting.
    pub tenant_rate_qps: Option<f64>,
    /// Token-bucket capacity (burst allowance) when `tenant_rate_qps` is set.
    pub tenant_burst: f64,
    /// Per-tenant bound on queued + executing query cost; `None` = unbounded.
    pub tenant_max_inflight: Option<u64>,
    /// Per-tenant scheduling weights (name, weight); unlisted tenants weigh 1.  A
    /// weight-4 tenant drains 4× the query cost of a weight-1 tenant per round when
    /// both are backlogged.
    pub tenant_weights: Vec<(String, u64)>,
    /// CoDel-style shed target: when measured queue delay stays above this for
    /// `shed_interval_ms`, over-fair-share backlog is shed until delay recovers.
    /// `None` disables adaptive shedding.
    pub shed_target_ms: Option<u64>,
    /// How long queue delay must stay above `shed_target_ms` before shedding.
    pub shed_interval_ms: u64,
    /// How long a graceful shutdown waits for queued + in-flight work before
    /// aborting the remainder with `shutting_down` answers.
    pub drain_deadline_ms: u64,
    /// A decide worker on one job longer than this is declared stuck: the watchdog
    /// replaces it (restoring pool capacity) and its requester is answered
    /// `internal_error`.  `None` disables the watchdog.
    pub watchdog_stuck_ms: Option<u64>,
    /// Deadline applied to `check`/`batch` requests that carry no `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Per-decision solver step budget applied to `check`/`batch` requests that carry
    /// no `max_steps` of their own; a decision that spends it is answered as
    /// `resource_exhausted` instead of spinning on an EXPTIME-shaped input.
    /// `None` = unlimited.
    pub default_max_steps: Option<u64>,
    /// Per-request line-length cap (bytes).
    pub max_line_bytes: usize,
    /// Socket write timeout: a client that stops draining its responses for this long
    /// gets its connection dropped instead of pinning a worker. `None` = block forever.
    pub write_timeout_ms: Option<u64>,
    /// How long a client may stall *mid-request-line* (bytes sent, no newline) before
    /// the connection is dropped — the slow-loris guard.  Idle connections between
    /// requests are never affected.  `None` = no limit.
    pub stalled_read_timeout_ms: Option<u64>,
    /// Enable the fault-injection protocol ops (`debug_panic`) on every tenant; used
    /// by resilience tests, never in production.
    pub debug_ops: bool,
    /// Root of the persistent artifact cache; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Per-tenant bound on resident compiled DTD artifacts; `None` = unbounded.
    pub max_resident_dtds: Option<usize>,
    /// Default `threads` for `batch` requests that do not specify their own
    /// (`0` = number of CPUs).
    pub default_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:7878".to_string()),
            workers: 0,
            queue_depth: 32,
            decide_workers: 0,
            max_inflight_queries: 256,
            request_queue_depth: 256,
            tenant_rate_qps: None,
            tenant_burst: 64.0,
            tenant_max_inflight: None,
            tenant_weights: Vec::new(),
            shed_target_ms: Some(200),
            shed_interval_ms: 100,
            drain_deadline_ms: 5_000,
            watchdog_stuck_ms: Some(30_000),
            default_deadline_ms: None,
            default_max_steps: None,
            max_line_bytes: xpsat_service::DEFAULT_MAX_LINE_BYTES,
            write_timeout_ms: Some(10_000),
            stalled_read_timeout_ms: Some(30_000),
            debug_ops: false,
            cache_dir: None,
            max_resident_dtds: None,
            default_threads: 0,
        }
    }
}

/// Default connection-pool width: enough to serve a handful of concurrent
/// connections even on small hosts (connection threads block on socket reads most
/// of the time; the decide work runs in the decide pool).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

/// Default decide-pool width: hardware parallelism, floored at 2 so a single
/// long-running request cannot monopolise the whole decide pool on a 1-CPU host.
pub fn default_decide_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}
