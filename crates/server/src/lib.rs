//! `xpsat-server` — a persistent, multi-tenant network front-end for the
//! [`xpsat_service`] satisfiability stack.
//!
//! The service crate turned the paper's per-DTD-heavy cost model into an in-process
//! workspace; this crate turns that workspace into a long-running daemon so the
//! amortisation survives *across processes and machines*:
//!
//! * [`Server`] — a `std::net` TCP (or Unix-socket) listener speaking the same
//!   JSON-lines protocol as `xpathsat` stdio mode, with a hand-rolled worker pool
//!   (no async runtime, no extra dependencies).  Connections beyond the worker pool
//!   wait in a bounded queue ([`pool::BoundedQueue`]); connections beyond *that*
//!   are refused with an explicit `overloaded` response — backpressure is a protocol
//!   feature, not a TCP accident.
//! * Tenants — each request may carry a `"tenant"` field; every tenant gets its own
//!   [`xpsat_service::Workspace`] (own DTD ids, interner, decision cache), so two
//!   clients sharing a server cannot observe each other's registrations.  Resident
//!   compiled artifacts are bounded per tenant (LRU eviction + transparent
//!   rematerialisation).
//! * Persistence — with a cache directory configured, every tenant workspace is
//!   backed by an [`xpsat_service::ArtifactStore`]: a restarted (or sibling) server
//!   loads compiled artifacts from disk instead of re-running classification,
//!   normalisation and automata construction, and `register_dtd` reports
//!   `"cached":true`.
//! * Deadlines — a server-wide default deadline (and per-request `"deadline_ms"`)
//!   bounds tail latency; expired requests answer `"deadline_exceeded":true` while
//!   still publishing partial progress to the decision cache.
//! * An in-flight query gate ([`gate::InflightGate`]) bounds the total decide work
//!   admitted at once (a batch of `n` queries costs `n` permits); requests beyond
//!   the bound answer `"overloaded":true` immediately instead of queueing without
//!   bound.
//!
//! The `xpathsat` binary (in this crate) fronts both modes: `serve` runs the daemon,
//! `connect` pipes a script to a running server, and the stdio subcommands from the
//! service crate continue to work unchanged.

pub mod gate;
pub mod pool;
pub mod server;
pub mod stats;
pub mod tenant;

pub use gate::InflightGate;
pub use pool::{BoundedQueue, PushError};
pub use server::{Server, ServerHandle};
pub use stats::{ServerStats, ServerStatsSnapshot};
pub use tenant::{Tenant, TenantMap, DEFAULT_TENANT};

use std::path::PathBuf;

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address such as `127.0.0.1:7878` (use port `0` for an ephemeral port —
    /// [`ServerHandle::local_addr`] reports what was bound).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads serving connections (each worker owns one connection at a
    /// time); `0` means [`default_workers`].
    pub workers: usize,
    /// Bound on connections waiting for a free worker; connections arriving beyond
    /// it are answered with an `overloaded` error and closed.
    pub queue_depth: usize,
    /// Bound on the total queries being decided at once across all workers (a batch
    /// of `n` costs `n`); requests that would exceed it answer `overloaded`.
    pub max_inflight_queries: u64,
    /// Deadline applied to `check`/`batch` requests that carry no `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Per-decision solver step budget applied to `check`/`batch` requests that carry
    /// no `max_steps` of their own; a decision that spends it is answered as
    /// `resource_exhausted` instead of spinning on an EXPTIME-shaped input.
    /// `None` = unlimited.
    pub default_max_steps: Option<u64>,
    /// Per-request line-length cap (bytes).
    pub max_line_bytes: usize,
    /// Socket write timeout: a client that stops draining its responses for this long
    /// gets its connection dropped instead of pinning a worker. `None` = block forever.
    pub write_timeout_ms: Option<u64>,
    /// How long a client may stall *mid-request-line* (bytes sent, no newline) before
    /// the connection is dropped — the slow-loris guard.  Idle connections between
    /// requests are never affected.  `None` = no limit.
    pub stalled_read_timeout_ms: Option<u64>,
    /// Enable the fault-injection protocol ops (`debug_panic`) on every tenant; used
    /// by resilience tests, never in production.
    pub debug_ops: bool,
    /// Root of the persistent artifact cache; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Per-tenant bound on resident compiled DTD artifacts; `None` = unbounded.
    pub max_resident_dtds: Option<usize>,
    /// Default `threads` for `batch` requests that do not specify their own
    /// (`0` = number of CPUs).
    pub default_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:7878".to_string()),
            workers: 0,
            queue_depth: 32,
            max_inflight_queries: 256,
            default_deadline_ms: None,
            default_max_steps: None,
            max_line_bytes: xpsat_service::DEFAULT_MAX_LINE_BYTES,
            write_timeout_ms: Some(10_000),
            stalled_read_timeout_ms: Some(30_000),
            debug_ops: false,
            cache_dir: None,
            max_resident_dtds: None,
            default_threads: 0,
        }
    }
}

/// Default worker-pool width: enough to serve a handful of concurrent connections
/// even on small hosts (workers block on socket reads most of the time; the decide
/// work itself is capped at hardware parallelism inside the workspace).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}
