//! Tenant-fair request dispatch: deficit round-robin over per-tenant sub-queues,
//! per-tenant token buckets and in-flight quotas, and CoDel-style adaptive shedding.
//!
//! PR 4's dispatch was *connection*-FIFO: whichever connection a worker happened to
//! own got served, and the only admission control was one global in-flight counter —
//! a single flooding tenant could occupy every worker and starve the rest.  This
//! module moves the dispatch unit from the connection to the *request*:
//!
//! * Every admitted request becomes a [`Job`] in its tenant's **sub-queue**; decide
//!   workers pull jobs by **deficit round-robin** (each visit grants a tenant
//!   `quantum × weight` cost credits), so a tenant with 50 queued batches and a
//!   tenant with one queued check alternate at their weight ratio instead of FIFO
//!   order.
//! * Admission is per-tenant first: a **token bucket** (rate + burst) and an
//!   **in-flight quota** (queued + executing cost) refuse the flooding tenant with
//!   `overloaded` while other tenants' admission is untouched.
//! * When the global queue is full, the scheduler **sheds from the largest queue**
//!   (newest job of the most-backlogged tenant) instead of tail-dropping whoever
//!   arrived last — the victim of overload is the tenant causing it.
//! * When measured queue delay stays above a target for a full interval
//!   (CoDel-style), dequeued jobs of over-fair-share tenants are shed until the
//!   delay drops back under the target.
//!
//! Every job that enters the scheduler is **guaranteed a response**: it is either
//! executed by a worker, shed with an `overloaded` answer, or — during drain
//! abort — answered `shutting_down`.  Nothing admitted is ever silently dropped.

use crate::responses::{shed_response, shutting_down_response};
use crate::tenant::Tenant;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xpsat_service::Json;

/// A single admitted request: parsed, tenant-resolved, waiting for a decide worker.
#[derive(Debug)]
pub struct Job {
    /// The parsed request line.
    pub request: Json,
    /// The tenant the request belongs to (already resolved and validated).
    pub tenant: Arc<Tenant>,
    /// Admission cost: a batch of `n` queries costs `n`, anything else costs 1.
    pub cost: u64,
    /// When the job entered the scheduler (the CoDel sojourn clock).
    pub enqueued: Instant,
    /// Where the connection thread waits for the answer.
    pub slot: Arc<ResponseSlot>,
}

/// A one-shot response cell: the connection thread blocks on it, a decide worker
/// (or the scheduler itself, for shed/aborted jobs) fulfills it exactly once —
/// later fulfillments are ignored, so a watchdog-abandoned worker finishing late
/// cannot clobber the answer the client already got.
#[derive(Debug, Default)]
pub struct ResponseSlot {
    cell: Mutex<Option<Json>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// Deliver the response; first write wins.
    pub fn fulfill(&self, response: Json) {
        let mut cell = self
            .cell
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if cell.is_none() {
            *cell = Some(response);
            self.ready.notify_all();
        }
    }

    /// Wait up to `poll` for the response; `None` means not ready yet (the caller
    /// loops, interleaving its own liveness checks).
    pub fn wait_for(&self, poll: Duration) -> Option<Json> {
        let cell = self
            .cell
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if cell.is_some() {
            return self.take(cell);
        }
        let (cell, _timeout) = self
            .ready
            .wait_timeout(cell, poll)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.take(cell)
    }

    fn take(&self, mut cell: std::sync::MutexGuard<'_, Option<Json>>) -> Option<Json> {
        cell.take()
    }
}

/// Why a submission was refused (the job is handed back so the caller can answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The server is draining; new work answers `shutting_down`.
    Draining,
    /// The tenant's token bucket is empty (it exceeds its configured rate).
    RateLimited,
    /// The tenant's queued + executing cost would exceed its in-flight quota.
    OverQuota,
    /// Global admitted cost (queued + executing) would exceed the in-flight bound.
    Saturated,
    /// The request queue is full and this tenant holds the largest backlog.
    QueueFull,
}

/// A lazily-refilled token bucket; `None` rate means unlimited.
#[derive(Debug)]
pub struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second, holding at most `burst`.
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let burst = burst.max(1.0);
        TokenBucket {
            tokens: burst,
            burst,
            rate: rate.max(0.0),
            last_refill: now,
        }
    }

    /// Refill for elapsed time, then try to spend `cost` tokens.
    pub fn try_charge(&mut self, cost: f64, now: Instant) -> bool {
        let elapsed = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after a refill to `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        let elapsed = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.tokens
    }
}

/// Fairness and admission configuration (derived from `ServerConfig`).
#[derive(Debug, Clone)]
pub struct FairConfig {
    /// Global bound on admitted cost (queued + executing).
    pub max_inflight: u64,
    /// Global bound on *queued jobs* before overload shedding kicks in.
    pub max_queued_jobs: usize,
    /// Base DRR quantum in cost units; a tenant earns `quantum × weight` per visit.
    pub quantum: u64,
    /// Per-tenant weights (default 1): a weight-4 tenant drains 4× the cost of a
    /// weight-1 tenant per round when both are backlogged.
    pub weights: HashMap<String, u64>,
    /// Per-tenant token refill rate in query-cost units per second; `None` = off.
    pub rate_qps: Option<f64>,
    /// Token bucket capacity (burst) when rate limiting is on.
    pub burst: f64,
    /// Per-tenant bound on queued + executing cost; `None` = unbounded.
    pub tenant_quota: Option<u64>,
    /// CoDel delay target: queue delay persistently above it triggers shedding;
    /// `None` disables adaptive shedding.
    pub shed_target: Option<Duration>,
    /// How long delay must stay above the target before shedding starts.
    pub shed_interval: Duration,
}

impl Default for FairConfig {
    fn default() -> FairConfig {
        FairConfig {
            max_inflight: 256,
            max_queued_jobs: 256,
            quantum: 4,
            weights: HashMap::new(),
            rate_qps: None,
            burst: 64.0,
            tenant_quota: None,
            shed_target: Some(Duration::from_millis(200)),
            shed_interval: Duration::from_millis(100),
        }
    }
}

/// One tenant's lane: its sub-queue, DRR deficit, bucket, and counters.
#[derive(Debug)]
struct Lane {
    jobs: VecDeque<Job>,
    deficit: u64,
    /// True while the lane sits at the *front* of the round as a continuation of
    /// its current service turn — it is not granted another quantum until it
    /// rotates to the back (a fresh round).
    in_service: bool,
    weight: u64,
    queued_cost: u64,
    inflight_cost: u64,
    bucket: Option<TokenBucket>,
    served: u64,
    shed: u64,
    rate_limited: u64,
    over_quota: u64,
}

impl Lane {
    fn new(weight: u64, config: &FairConfig, now: Instant) -> Lane {
        Lane {
            jobs: VecDeque::new(),
            deficit: 0,
            in_service: false,
            weight: weight.max(1),
            queued_cost: 0,
            inflight_cost: 0,
            bucket: config
                .rate_qps
                .map(|rate| TokenBucket::new(rate, config.burst, now)),
            served: 0,
            shed: 0,
            rate_limited: 0,
            over_quota: 0,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    lanes: HashMap<String, Lane>,
    /// Round-robin order over tenants with a non-empty sub-queue.
    active: VecDeque<String>,
    queued_jobs: usize,
    queued_cost: u64,
    inflight_cost: u64,
    draining: bool,
    /// Set after the drain deadline: `next_job` returns `None` even if non-empty.
    force_closed: bool,
    /// CoDel state: when queue delay first went above the target.
    first_above_target: Option<Instant>,
    shedding: bool,
    shed_total: u64,
    aborted_total: u64,
    drained_after_drain: u64,
}

/// Point-in-time view of one tenant's lane, for the `stats` verb.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSnapshot {
    pub tenant: String,
    pub weight: u64,
    pub queued_jobs: usize,
    pub queued_cost: u64,
    pub inflight_cost: u64,
    /// Tokens remaining in the bucket; `None` when rate limiting is off.
    pub tokens_remaining: Option<f64>,
    pub served: u64,
    pub shed: u64,
    pub rate_limited: u64,
    pub over_quota: u64,
}

/// Scheduler-level totals, for the `stats`/`health` verbs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerTotals {
    pub queued_jobs: usize,
    pub queued_cost: u64,
    pub inflight_cost: u64,
    pub shed: u64,
    pub aborted_at_drain: u64,
    pub drained_after_drain: u64,
}

/// The tenant-fair request scheduler shared by connection threads (producers) and
/// decide workers (consumers).
#[derive(Debug)]
pub struct FairScheduler {
    inner: Mutex<Inner>,
    ready: Condvar,
    config: FairConfig,
}

impl FairScheduler {
    pub fn new(config: FairConfig) -> FairScheduler {
        FairScheduler {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            config,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Every mutation is transactional (queue + counters move together), so
        // recovering from a poisoned lock cannot observe a half-applied update.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admit a job into its tenant's sub-queue, or hand it back with the refusal
    /// reason.  May shed a *different* tenant's newest job to make room when the
    /// global queue is full and the submitter is not the largest backlog.
    pub fn submit(&self, job: Job) -> Result<(), (Job, Refusal)> {
        let now = Instant::now();
        let name = job.tenant.name().to_string();
        let mut inner = self.lock();
        if inner.draining {
            return Err((job, Refusal::Draining));
        }
        if !inner.lanes.contains_key(&name) {
            let weight = self.config.weights.get(&name).copied().unwrap_or(1);
            let lane = Lane::new(weight, &self.config, now);
            inner.lanes.insert(name.clone(), lane);
        }

        // Per-tenant quota first: the refusal only ever hits the tenant itself.
        let lane = inner.lanes.get_mut(&name).expect("lane just ensured");
        if let Some(quota) = self.config.tenant_quota {
            if lane.queued_cost + lane.inflight_cost + job.cost > quota {
                lane.over_quota += 1;
                return Err((job, Refusal::OverQuota));
            }
        }
        // Global admitted-cost bound (the old in-flight gate, still a backstop).
        if inner.queued_cost + inner.inflight_cost + job.cost > self.config.max_inflight {
            return Err((job, Refusal::Saturated));
        }
        // Token bucket last, so a refusal above never burns this tenant's tokens.
        let lane = inner.lanes.get_mut(&name).expect("lane exists");
        if let Some(bucket) = &mut lane.bucket {
            if !bucket.try_charge(job.cost as f64, now) {
                lane.rate_limited += 1;
                return Err((job, Refusal::RateLimited));
            }
        }

        // Queue-full: shed the newest job of the most-backlogged tenant instead of
        // tail-dropping the arrival — unless the arrival IS the largest backlog.
        if inner.queued_jobs >= self.config.max_queued_jobs.max(1) {
            let largest = inner
                .lanes
                .iter()
                .filter(|(_, lane)| !lane.jobs.is_empty())
                .max_by_key(|(_, lane)| lane.queued_cost)
                .map(|(tenant, _)| tenant.clone());
            match largest {
                Some(largest) if largest != name => {
                    let lane = inner.lanes.get_mut(&largest).expect("largest lane");
                    if let Some(victim) = lane.jobs.pop_back() {
                        lane.queued_cost -= victim.cost;
                        lane.shed += 1;
                        if lane.jobs.is_empty() {
                            lane.deficit = 0;
                            lane.in_service = false;
                            inner.active.retain(|t| t != &largest);
                        }
                        inner.queued_jobs -= 1;
                        inner.queued_cost -= victim.cost;
                        inner.shed_total += 1;
                        victim
                            .slot
                            .fulfill(shed_response("request queue full, backlog shed"));
                    }
                }
                _ => return Err((job, Refusal::QueueFull)),
            }
        }

        let cost = job.cost;
        let lane = inner.lanes.get_mut(&name).expect("lane exists");
        let was_empty = lane.jobs.is_empty();
        lane.jobs.push_back(job);
        lane.queued_cost += cost;
        if was_empty {
            inner.active.push_back(name);
        }
        inner.queued_jobs += 1;
        inner.queued_cost += cost;
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Deficit-round-robin pick of the next job to execute; blocks until one is
    /// available.  Returns `None` once the scheduler is draining and empty (or
    /// force-closed): the worker-pool exit signal.  Jobs whose queue delay tripped
    /// the CoDel shedder are answered `overloaded` here and never returned.
    pub fn next_job(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if inner.force_closed {
                return None;
            }
            while inner.queued_jobs > 0 {
                let name = inner.active.pop_front().expect("active tracks queued");
                let quantum = self.config.quantum.max(1);
                let lane = inner.lanes.get_mut(&name).expect("active lane exists");
                // Classic DRR: one quantum grant per *round*.  A lane re-visited as
                // a continuation of its service turn (pushed to the front below)
                // spends leftover deficit without earning more.
                if !lane.in_service {
                    lane.deficit = lane.deficit.saturating_add(quantum * lane.weight);
                }
                let head_cost = lane.jobs.front().expect("active lane non-empty").cost;
                if lane.deficit < head_cost {
                    lane.in_service = false;
                    inner.active.push_back(name);
                    continue;
                }
                let job = lane.jobs.pop_front().expect("head exists");
                lane.deficit -= head_cost;
                lane.queued_cost -= job.cost;
                if lane.jobs.is_empty() {
                    lane.deficit = 0;
                    lane.in_service = false;
                } else if lane.deficit >= lane.jobs.front().expect("non-empty").cost {
                    // Turn continues: serve this lane again before rotating.
                    lane.in_service = true;
                    inner.active.push_front(name.clone());
                } else {
                    lane.in_service = false;
                    inner.active.push_back(name.clone());
                }
                inner.queued_jobs -= 1;
                inner.queued_cost -= job.cost;

                if self.codel_sheds(&mut inner, &name, &job) {
                    let lane = inner.lanes.get_mut(&name).expect("lane exists");
                    lane.shed += 1;
                    inner.shed_total += 1;
                    job.slot
                        .fulfill(shed_response("queue delay above target, load shed"));
                    continue;
                }

                let lane = inner.lanes.get_mut(&name).expect("lane exists");
                lane.inflight_cost += job.cost;
                lane.served += 1;
                inner.inflight_cost += job.cost;
                if inner.draining {
                    inner.drained_after_drain += 1;
                }
                return Some(job);
            }
            if inner.draining {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// CoDel-style decision: delay persistently above target ⇒ shedding mode; in
    /// shedding mode, jobs of tenants at or above their fair share of the backlog
    /// are dropped (lowest-priority-first, where priority = being under-share).
    fn codel_sheds(&self, inner: &mut Inner, tenant: &str, job: &Job) -> bool {
        let Some(target) = self.config.shed_target else {
            return false;
        };
        let delay = job.enqueued.elapsed();
        if delay <= target {
            inner.first_above_target = None;
            inner.shedding = false;
            return false;
        }
        let now = Instant::now();
        let first = *inner.first_above_target.get_or_insert(now);
        if !inner.shedding && now.saturating_duration_since(first) < self.config.shed_interval {
            return false;
        }
        inner.shedding = true;
        // Fair share over the tenants that still have work queued (plus this one).
        let lane = inner.lanes.get(tenant).expect("lane exists");
        let backlog = lane.queued_cost + job.cost;
        let total = inner.queued_cost + job.cost;
        let active = inner.active.len().max(1) as u64;
        backlog.saturating_mul(active) >= total
    }

    /// Return a finished job's cost to the tenant's and the global in-flight
    /// accounts.
    pub fn complete(&self, tenant: &str, cost: u64) {
        let mut inner = self.lock();
        if let Some(lane) = inner.lanes.get_mut(tenant) {
            lane.inflight_cost = lane.inflight_cost.saturating_sub(cost);
        }
        inner.inflight_cost = inner.inflight_cost.saturating_sub(cost);
    }

    /// Stop admitting; queued jobs keep draining.  Idempotent.
    pub fn begin_drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        drop(inner);
        // Wake every worker so idle ones observe the drain and exit when empty.
        self.ready.notify_all();
    }

    /// Answer every still-queued job `shutting_down` (they were accepted, so they
    /// are *answered*, not dropped) and make `next_job` return `None` immediately.
    /// The drain-deadline backstop.  Returns how many were aborted.
    pub fn abort_queued(&self) -> u64 {
        let mut inner = self.lock();
        inner.draining = true;
        inner.force_closed = true;
        let mut aborted = 0;
        let lanes: Vec<String> = inner.lanes.keys().cloned().collect();
        for name in lanes {
            let lane = inner.lanes.get_mut(&name).expect("lane exists");
            let jobs: Vec<Job> = lane.jobs.drain(..).collect();
            lane.queued_cost = 0;
            lane.deficit = 0;
            lane.in_service = false;
            for job in jobs {
                aborted += 1;
                job.slot.fulfill(shutting_down_response(
                    "server drain deadline reached before this request was served",
                ));
            }
        }
        inner.active.clear();
        inner.queued_jobs = 0;
        inner.queued_cost = 0;
        inner.aborted_total += aborted;
        drop(inner);
        self.ready.notify_all();
        aborted
    }

    /// Whether drain has been initiated.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Per-tenant lane snapshots, sorted by tenant name.
    pub fn lane_snapshots(&self) -> Vec<LaneSnapshot> {
        let now = Instant::now();
        let mut inner = self.lock();
        let mut lanes: Vec<LaneSnapshot> = inner
            .lanes
            .iter_mut()
            .map(|(name, lane)| LaneSnapshot {
                tenant: name.clone(),
                weight: lane.weight,
                queued_jobs: lane.jobs.len(),
                queued_cost: lane.queued_cost,
                inflight_cost: lane.inflight_cost,
                tokens_remaining: lane.bucket.as_mut().map(|b| b.available(now)),
                served: lane.served,
                shed: lane.shed,
                rate_limited: lane.rate_limited,
                over_quota: lane.over_quota,
            })
            .collect();
        lanes.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        lanes
    }

    /// Scheduler-level totals.
    pub fn totals(&self) -> SchedulerTotals {
        let inner = self.lock();
        SchedulerTotals {
            queued_jobs: inner.queued_jobs,
            queued_cost: inner.queued_cost,
            inflight_cost: inner.inflight_cost,
            shed: inner.shed_total,
            aborted_at_drain: inner.aborted_total,
            drained_after_drain: inner.drained_after_drain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantMap;
    use crate::ServerConfig;

    fn job(map: &TenantMap, tenant: &str, cost: u64) -> Job {
        Job {
            request: Json::obj(vec![("op", Json::Str("check".into()))]),
            tenant: map.tenant(tenant).unwrap(),
            cost,
            enqueued: Instant::now(),
            slot: Arc::new(ResponseSlot::default()),
        }
    }

    fn scheduler(config: FairConfig) -> (FairScheduler, TenantMap) {
        (
            FairScheduler::new(config),
            TenantMap::new(ServerConfig::default()).unwrap(),
        )
    }

    #[test]
    fn drr_interleaves_backlogged_tenants() {
        let (sched, map) = scheduler(FairConfig {
            shed_target: None,
            quantum: 1,
            ..FairConfig::default()
        });
        // Flood 6 jobs for "flood", then 2 for "victim": FIFO would serve all six
        // flood jobs first; DRR alternates.
        for _ in 0..6 {
            sched.submit(job(&map, "flood", 1)).unwrap();
        }
        for _ in 0..2 {
            sched.submit(job(&map, "victim", 1)).unwrap();
        }
        let order: Vec<String> = (0..8)
            .map(|_| {
                let j = sched.next_job().unwrap();
                let name = j.tenant.name().to_string();
                sched.complete(&name, j.cost);
                name
            })
            .collect();
        // Victim's two jobs are both served within the first four picks.
        let victim_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, n)| n.as_str() == "victim")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(victim_positions.len(), 2, "{order:?}");
        assert!(victim_positions[1] <= 3, "victim starved: {order:?}");
    }

    #[test]
    fn weights_scale_the_share() {
        let (sched, map) = scheduler(FairConfig {
            shed_target: None,
            quantum: 1,
            weights: HashMap::from([("gold".to_string(), 3)]),
            ..FairConfig::default()
        });
        for _ in 0..9 {
            sched.submit(job(&map, "gold", 1)).unwrap();
            sched.submit(job(&map, "bronze", 1)).unwrap();
        }
        let first_eight: Vec<String> = (0..8)
            .map(|_| {
                let j = sched.next_job().unwrap();
                let name = j.tenant.name().to_string();
                sched.complete(&name, j.cost);
                name
            })
            .collect();
        let gold = first_eight.iter().filter(|n| n.as_str() == "gold").count();
        // Weight 3 vs 1 ⇒ roughly 3:1 service ratio over any window.
        assert!(gold >= 5, "gold got {gold}/8: {first_eight:?}");
    }

    #[test]
    fn token_bucket_rate_limits_per_tenant() {
        let (sched, map) = scheduler(FairConfig {
            rate_qps: Some(1.0),
            burst: 2.0,
            shed_target: None,
            ..FairConfig::default()
        });
        // Burst of 2 admits two cost-1 jobs; the third is rate-limited — but only
        // for this tenant.
        sched.submit(job(&map, "flood", 1)).unwrap();
        sched.submit(job(&map, "flood", 1)).unwrap();
        let refused = sched.submit(job(&map, "flood", 1)).unwrap_err();
        assert_eq!(refused.1, Refusal::RateLimited);
        sched.submit(job(&map, "victim", 1)).unwrap();
        let lanes = sched.lane_snapshots();
        let flood = lanes.iter().find(|l| l.tenant == "flood").unwrap();
        assert_eq!(flood.rate_limited, 1);
        assert!(flood.tokens_remaining.unwrap() < 1.0);
        let victim = lanes.iter().find(|l| l.tenant == "victim").unwrap();
        assert_eq!(victim.rate_limited, 0);
    }

    #[test]
    fn tenant_quota_bounds_queued_plus_inflight() {
        let (sched, map) = scheduler(FairConfig {
            tenant_quota: Some(3),
            shed_target: None,
            ..FairConfig::default()
        });
        sched.submit(job(&map, "a", 2)).unwrap();
        let refused = sched.submit(job(&map, "a", 2)).unwrap_err();
        assert_eq!(refused.1, Refusal::OverQuota);
        // The executing job still counts against the quota until complete().
        let j = sched.next_job().unwrap();
        assert_eq!(
            sched.submit(job(&map, "a", 2)).unwrap_err().1,
            Refusal::OverQuota
        );
        sched.complete("a", j.cost);
        sched.submit(job(&map, "a", 2)).unwrap();
        // Another tenant was never affected.
        sched.submit(job(&map, "b", 2)).unwrap();
    }

    #[test]
    fn queue_full_sheds_largest_backlog_not_arrival() {
        let (sched, map) = scheduler(FairConfig {
            max_queued_jobs: 4,
            shed_target: None,
            ..FairConfig::default()
        });
        let mut flood_slots = Vec::new();
        for _ in 0..4 {
            let j = job(&map, "flood", 4);
            flood_slots.push(Arc::clone(&j.slot));
            sched.submit(j).unwrap();
        }
        // The queue is full; a small victim arrival evicts flood's newest job.
        sched.submit(job(&map, "victim", 1)).unwrap();
        let evicted = flood_slots[3].wait_for(Duration::from_millis(10));
        let evicted = evicted.expect("evicted job was answered, not dropped");
        assert_eq!(evicted.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            evicted.get("overloaded").and_then(Json::as_bool),
            Some(true)
        );
        // A further flood arrival (it holds the largest backlog) is refused.
        assert_eq!(
            sched.submit(job(&map, "flood", 4)).unwrap_err().1,
            Refusal::QueueFull
        );
        assert_eq!(sched.totals().shed, 1);
    }

    #[test]
    fn codel_sheds_over_share_backlog_when_delay_exceeds_target() {
        let (sched, map) = scheduler(FairConfig {
            shed_target: Some(Duration::ZERO),
            shed_interval: Duration::ZERO,
            ..FairConfig::default()
        });
        let j = job(&map, "flood", 1);
        let slot = Arc::clone(&j.slot);
        sched.submit(j).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        // Drain first so next_job returns None (instead of blocking) once the
        // shedder consumes the only queued job.
        sched.begin_drain();
        // Delay > 0-target with a 0 interval ⇒ shedding mode; the sole tenant holds
        // 100% of the backlog, so its job is shed rather than returned.
        assert!(sched.next_job().is_none());
        let shed = slot
            .wait_for(Duration::from_millis(10))
            .expect("shed job was answered, not dropped");
        assert_eq!(shed.get("overloaded").and_then(Json::as_bool), Some(true));
        assert_eq!(shed.get("shed").and_then(Json::as_bool), Some(true));
        assert_eq!(sched.totals().shed, 1);
    }

    #[test]
    fn drain_refuses_new_serves_queued_then_signals_none() {
        let (sched, map) = scheduler(FairConfig {
            shed_target: None,
            ..FairConfig::default()
        });
        sched.submit(job(&map, "a", 1)).unwrap();
        sched.begin_drain();
        assert_eq!(
            sched.submit(job(&map, "a", 1)).unwrap_err().1,
            Refusal::Draining
        );
        let j = sched.next_job().expect("queued job drains");
        sched.complete("a", j.cost);
        assert!(sched.next_job().is_none(), "drained + empty = worker exit");
    }

    #[test]
    fn abort_answers_every_queued_job_shutting_down() {
        let (sched, map) = scheduler(FairConfig {
            shed_target: None,
            ..FairConfig::default()
        });
        let mut slots = Vec::new();
        for _ in 0..3 {
            let j = job(&map, "a", 1);
            slots.push(Arc::clone(&j.slot));
            sched.submit(j).unwrap();
        }
        assert_eq!(sched.abort_queued(), 3);
        for slot in slots {
            let response = slot.wait_for(Duration::from_millis(10)).expect("answered");
            assert_eq!(
                response
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("shutting_down")
            );
        }
        assert!(sched.next_job().is_none());
        assert_eq!(sched.totals().aborted_at_drain, 3);
    }
}
