//! The in-flight query gate: a counting semaphore that *fails fast*.
//!
//! Backpressure at the connection layer (the bounded accept queue) is not enough:
//! one connection can ship a 10 000-query batch.  The gate bounds the total decide
//! work admitted at once, measured in queries, so an overloaded server answers
//! `overloaded` in microseconds instead of queueing work it cannot finish before
//! every caller's deadline.

use std::sync::atomic::{AtomicI64, Ordering};

/// A fail-fast counting semaphore over query permits.
#[derive(Debug)]
pub struct InflightGate {
    permits: AtomicI64,
}

impl InflightGate {
    /// A gate admitting at most `max` queries at once (at least 1).
    pub fn new(max: u64) -> InflightGate {
        InflightGate {
            permits: AtomicI64::new((max.max(1)).min(i64::MAX as u64) as i64),
        }
    }

    /// Try to admit `cost` queries; `None` means the server is saturated (nothing
    /// was acquired).  The permit releases on drop.
    pub fn try_acquire(&self, cost: u64) -> Option<InflightPermit<'_>> {
        let cost = cost.max(1).min(i64::MAX as u64) as i64;
        let before = self.permits.fetch_sub(cost, Ordering::AcqRel);
        if before < cost {
            self.permits.fetch_add(cost, Ordering::AcqRel);
            return None;
        }
        Some(InflightPermit { gate: self, cost })
    }

    /// Permits currently available (may be transiently negative mid-acquire).
    pub fn available(&self) -> i64 {
        self.permits.load(Ordering::Acquire)
    }
}

/// An admitted request's permits; released on drop.
#[derive(Debug)]
pub struct InflightPermit<'a> {
    gate: &'a InflightGate,
    cost: i64,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.gate.permits.fetch_add(self.cost, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_and_saturation() {
        let gate = InflightGate::new(3);
        let a = gate.try_acquire(2).expect("2 of 3");
        assert!(gate.try_acquire(2).is_none(), "only 1 left");
        let b = gate.try_acquire(1).expect("exactly the last");
        assert!(gate.try_acquire(1).is_none());
        drop(a);
        assert!(gate.try_acquire(2).is_some());
        drop(b);
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn oversized_cost_never_wedges_the_gate() {
        let gate = InflightGate::new(4);
        assert!(gate.try_acquire(100).is_none());
        // A failed acquire must leave the permits untouched.
        assert_eq!(gate.available(), 4);
        assert!(gate.try_acquire(4).is_some());
    }

    #[test]
    fn zero_cost_counts_as_one() {
        let gate = InflightGate::new(1);
        let permit = gate.try_acquire(0).unwrap();
        assert!(gate.try_acquire(0).is_none());
        drop(permit);
        assert_eq!(gate.available(), 1);
    }
}
