//! Nondeterministic finite automata and the Glushkov (position) construction.
//!
//! The Glushkov automaton of a regular expression has one state per symbol *occurrence*
//! (plus a distinguished initial state) and no epsilon transitions.  Two properties make
//! it the right representation here:
//!
//! * its size is linear in the size of the content model, so DTD validation and witness
//!   construction stay polynomial, and
//! * its states *are* the positions of the content model, which is exactly the structure
//!   the sibling-axis satisfiability algorithm of Theorem 7.1 walks over (a `→` move is
//!   a forward transition between positions, a `←` move a backward one).
//!
//! Transitions are stored densely: per state a sorted `Vec<(symbol, successor list)>`
//! rather than a `BTreeMap<S, BTreeSet<StateId>>`.  The automaton is immutable after
//! construction, so the sorted-vector form gives binary-search lookup, cache-friendly
//! iteration and no per-edge allocation — this matters because the satisfiability
//! engines walk these automata in their innermost loops.

use crate::bitset::BitSet;
use crate::regex::Regex;
use crate::Symbol;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of an NFA state.  State `0` is always the unique initial state.
pub type StateId = usize;

/// A nondeterministic finite automaton without epsilon transitions.
#[derive(Debug, Clone)]
pub struct Nfa<S> {
    /// `transitions[q]` lists `(symbol, successors)` pairs sorted by symbol; the
    /// successor lists are sorted and deduplicated.
    transitions: Vec<Vec<(S, Vec<StateId>)>>,
    /// Accepting states.
    accepting: BitSet,
    /// For Glushkov automata: the symbol whose occurrence a state represents
    /// (`None` for the initial state).
    state_symbol: Vec<Option<S>>,
}

impl<S: Symbol> Nfa<S> {
    /// Build the Glushkov automaton of `re`.
    ///
    /// The automaton accepts exactly `L(re)`, has `1 + (number of symbol occurrences)`
    /// states and carries, for every non-initial state, the symbol it reads.
    pub fn glushkov(re: &Regex<S>) -> Nfa<S> {
        // Linearise: assign position indices 1..=m to symbol occurrences, left to right.
        let mut positions: Vec<S> = Vec::new();
        let lin = linearise(re, &mut positions);
        let m = positions.len();

        let first = first_set(&lin);
        let last = last_set(&lin);
        let nullable = lin.nullable();
        let mut follow: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m + 1];
        follow_sets(&lin, &mut follow);

        // Assemble into ordered maps first, then freeze into the dense form.
        let mut building: Vec<BTreeMap<S, BTreeSet<StateId>>> = vec![BTreeMap::new(); m + 1];
        for &p in &first {
            let sym = positions[p - 1].clone();
            building[0].entry(sym).or_default().insert(p);
        }
        for (p, follow_p) in follow.iter().enumerate().take(m + 1).skip(1) {
            for &q in follow_p {
                let sym = positions[q - 1].clone();
                building[p].entry(sym).or_default().insert(q);
            }
        }
        let mut accepting = BitSet::with_capacity(m + 1);
        if nullable {
            accepting.insert(0);
        }
        for &p in &last {
            accepting.insert(p);
        }
        let mut state_symbol = vec![None; m + 1];
        for (i, sym) in positions.iter().enumerate() {
            state_symbol[i + 1] = Some(sym.clone());
        }
        Nfa {
            transitions: building
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|(sym, succs)| (sym, succs.into_iter().collect()))
                        .collect()
                })
                .collect(),
            accepting,
            state_symbol,
        }
    }

    /// Reassemble an automaton from previously extracted parts (the inverse of reading
    /// it back out through [`Nfa::transitions_from`], [`Nfa::accepting_states`] and
    /// [`Nfa::symbol_of`]).  Used by persistent artifact stores to rehydrate compiled
    /// automata without re-running the Glushkov construction.
    ///
    /// Rows are normalised (sorted by symbol, successor lists sorted and deduplicated)
    /// so lookups by binary search keep working even if the caller hands rows back in a
    /// different order.
    ///
    /// # Panics
    /// Panics when `transitions`, `state_symbol` and the accepting set disagree on the
    /// number of states, or when a successor index is out of range.
    pub fn from_parts(
        mut transitions: Vec<Vec<(S, Vec<StateId>)>>,
        accepting: impl IntoIterator<Item = StateId>,
        state_symbol: Vec<Option<S>>,
    ) -> Nfa<S> {
        let n = transitions.len();
        assert_eq!(
            state_symbol.len(),
            n,
            "from_parts: state_symbol length must equal the number of states"
        );
        let mut acc = BitSet::with_capacity(n);
        for q in accepting {
            assert!(q < n, "from_parts: accepting state {q} out of range");
            acc.insert(q);
        }
        for row in &mut transitions {
            row.sort_by(|(a, _), (b, _)| a.cmp(b));
            for (_, succs) in row.iter_mut() {
                succs.sort_unstable();
                succs.dedup();
                assert!(
                    succs.iter().all(|&t| t < n),
                    "from_parts: successor out of range"
                );
            }
        }
        Nfa {
            transitions,
            accepting: acc,
            state_symbol,
        }
    }

    /// Number of states (including the initial state).
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The unique initial state.
    pub fn start(&self) -> StateId {
        0
    }

    /// Is `q` an accepting state?
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q)
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting.iter()
    }

    /// The symbol read to enter state `q` (None for the initial state).
    pub fn symbol_of(&self, q: StateId) -> Option<&S> {
        self.state_symbol[q].as_ref()
    }

    /// Outgoing transitions of `q`, sorted by symbol.
    pub fn transitions_from(&self, q: StateId) -> impl Iterator<Item = (&S, &[StateId])> {
        self.transitions[q]
            .iter()
            .map(|(sym, succs)| (sym, succs.as_slice()))
    }

    /// Successor states of `q` on `sym` (binary search over the sorted row).
    pub fn step(&self, q: StateId, sym: &S) -> impl Iterator<Item = StateId> + '_ {
        let row = &self.transitions[q];
        row.binary_search_by(|(s, _)| s.cmp(sym))
            .ok()
            .map(|i| row[i].1.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// All symbols appearing on some transition.
    pub fn alphabet(&self) -> BTreeSet<S> {
        let mut out = BTreeSet::new();
        for row in &self.transitions {
            for (sym, _) in row {
                out.insert(sym.clone());
            }
        }
        out
    }

    /// Does the automaton accept `word`?
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut current = BitSet::with_capacity(self.num_states());
        current.insert(0);
        for sym in word {
            let mut next = BitSet::with_capacity(self.num_states());
            for q in current.iter() {
                for t in self.step(q, sym) {
                    next.insert(t);
                }
            }
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        current.intersects(&self.accepting)
    }

    /// Is the accepted language empty?
    pub fn is_empty(&self) -> bool {
        self.shortest_word().is_none()
    }

    /// A shortest accepted word, if the language is nonempty (BFS over states).
    pub fn shortest_word(&self) -> Option<Vec<S>> {
        let n = self.num_states();
        let mut pred: Vec<Option<(StateId, S)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[0] = true;
        queue.push_back(0);
        let mut goal = if self.accepting.contains(0) {
            Some(0)
        } else {
            None
        };
        while goal.is_none() {
            let Some(q) = queue.pop_front() else { break };
            for (sym, succ) in self.transitions_from(q) {
                for &t in succ {
                    if !visited[t] {
                        visited[t] = true;
                        pred[t] = Some((q, sym.clone()));
                        if self.accepting.contains(t) {
                            goal = Some(t);
                        }
                        queue.push_back(t);
                    }
                }
                if goal.is_some() {
                    break;
                }
            }
        }
        let mut cur = goal?;
        let mut word = Vec::new();
        while let Some((prev, sym)) = pred[cur].clone() {
            word.push(sym);
            cur = prev;
        }
        word.reverse();
        Some(word)
    }

    /// States from which an accepting state is reachable (co-accessible states).
    pub fn coaccessible(&self) -> BitSet {
        // Reverse reachability from accepting states.
        let n = self.num_states();
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for (q, row) in self.transitions.iter().enumerate() {
            for (_, succ) in row {
                for &t in succ {
                    rev[t].push(q);
                }
            }
        }
        let mut seen = self.accepting.clone();
        let mut queue: VecDeque<StateId> = self.accepting.iter().collect();
        while let Some(q) = queue.pop_front() {
            for &p in &rev[q] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// States reachable from the initial state.
    pub fn accessible(&self) -> BitSet {
        let mut seen = BitSet::with_capacity(self.num_states());
        seen.insert(0);
        let mut queue = VecDeque::new();
        queue.push_back(0);
        while let Some(q) = queue.pop_front() {
            for (_, succ) in self.transitions_from(q) {
                for &t in succ {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// States that lie on some accepting run (accessible and co-accessible).
    pub fn useful_states(&self) -> BitSet {
        let acc = self.accessible();
        let mut out = BitSet::with_capacity(self.num_states());
        for q in self.coaccessible().iter() {
            if acc.contains(q) {
                out.insert(q);
            }
        }
        out
    }
}

/// A regular expression whose symbols have been replaced by position indices, keeping
/// the original symbol alongside for the follow computation.
type Lin<S> = Regex<(usize, S)>;

fn linearise<S: Symbol>(re: &Regex<S>, positions: &mut Vec<S>) -> Lin<S> {
    match re {
        Regex::Epsilon => Regex::Epsilon,
        Regex::Empty => Regex::Empty,
        Regex::Sym(s) => {
            positions.push(s.clone());
            Regex::Sym((positions.len(), s.clone()))
        }
        Regex::Concat(parts) => {
            Regex::Concat(parts.iter().map(|p| linearise(p, positions)).collect())
        }
        Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| linearise(p, positions)).collect()),
        Regex::Star(inner) => Regex::Star(Box::new(linearise(inner, positions))),
        Regex::Plus(inner) => Regex::Plus(Box::new(linearise(inner, positions))),
        Regex::Opt(inner) => Regex::Opt(Box::new(linearise(inner, positions))),
    }
}

fn first_set<S: Symbol>(re: &Lin<S>) -> BTreeSet<usize> {
    match re {
        Regex::Epsilon | Regex::Empty => BTreeSet::new(),
        Regex::Sym((i, _)) => [*i].into_iter().collect(),
        Regex::Concat(parts) => {
            let mut out = BTreeSet::new();
            for p in parts {
                out.extend(first_set(p));
                if !p.nullable() {
                    break;
                }
            }
            out
        }
        Regex::Alt(parts) => parts.iter().flat_map(first_set).collect(),
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => first_set(inner),
    }
}

fn last_set<S: Symbol>(re: &Lin<S>) -> BTreeSet<usize> {
    match re {
        Regex::Epsilon | Regex::Empty => BTreeSet::new(),
        Regex::Sym((i, _)) => [*i].into_iter().collect(),
        Regex::Concat(parts) => {
            let mut out = BTreeSet::new();
            for p in parts.iter().rev() {
                out.extend(last_set(p));
                if !p.nullable() {
                    break;
                }
            }
            out
        }
        Regex::Alt(parts) => parts.iter().flat_map(last_set).collect(),
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => last_set(inner),
    }
}

fn follow_sets<S: Symbol>(re: &Lin<S>, follow: &mut Vec<BTreeSet<usize>>) {
    match re {
        Regex::Epsilon | Regex::Empty | Regex::Sym(_) => {}
        Regex::Concat(parts) => {
            for p in parts {
                follow_sets(p, follow);
            }
            // For each adjacent pair, last(prefix up to i) x first(suffix starting at i+1)
            for i in 0..parts.len().saturating_sub(1) {
                let lasts = last_set(&parts[i]);
                // first of the remaining sequence, respecting nullability
                let mut firsts = BTreeSet::new();
                for p in &parts[i + 1..] {
                    firsts.extend(first_set(p));
                    if !p.nullable() {
                        break;
                    }
                }
                for &l in &lasts {
                    follow[l].extend(firsts.iter().copied());
                }
            }
        }
        Regex::Alt(parts) => {
            for p in parts {
                follow_sets(p, follow);
            }
        }
        Regex::Star(inner) | Regex::Plus(inner) => {
            follow_sets(inner, follow);
            let lasts = last_set(inner);
            let firsts = first_set(inner);
            for &l in &lasts {
                follow[l].extend(firsts.iter().copied());
            }
        }
        Regex::Opt(inner) => follow_sets(inner, follow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ch: char) -> Regex<char> {
        Regex::sym(ch)
    }

    #[test]
    fn glushkov_accepts_same_language_as_derivatives() {
        // ((a|b)*,c) and (a+,b?)
        let cases = vec![
            Regex::concat(vec![Regex::star(Regex::alt(vec![c('a'), c('b')])), c('c')]),
            Regex::concat(vec![Regex::plus(c('a')), Regex::opt(c('b'))]),
            Regex::alt(vec![Regex::Epsilon, Regex::concat(vec![c('a'), c('b')])]),
            Regex::star(Regex::concat(vec![c('a'), Regex::opt(c('b'))])),
        ];
        let words: Vec<Vec<char>> = vec![
            vec![],
            vec!['a'],
            vec!['b'],
            vec!['c'],
            vec!['a', 'b'],
            vec!['a', 'c'],
            vec!['b', 'c'],
            vec!['a', 'b', 'c'],
            vec!['a', 'a', 'b'],
            vec!['a', 'b', 'a', 'b'],
            vec!['c', 'a'],
        ];
        for re in &cases {
            let nfa = Nfa::glushkov(re);
            for w in &words {
                assert_eq!(nfa.accepts(w), re.matches(w), "regex {re:?} word {w:?}");
            }
        }
    }

    #[test]
    fn shortest_word_of_nonempty_language() {
        let re = Regex::concat(vec![Regex::star(c('a')), c('b'), Regex::opt(c('c'))]);
        let nfa = Nfa::glushkov(&re);
        let w = nfa.shortest_word().unwrap();
        assert_eq!(w, vec!['b']);
        assert!(re.matches(&w));
    }

    #[test]
    fn empty_language_has_no_word() {
        let re: Regex<char> = Regex::Empty;
        let nfa = Nfa::glushkov(&re);
        assert!(nfa.is_empty());
        assert!(nfa.shortest_word().is_none());
    }

    #[test]
    fn epsilon_language_accepts_empty_word_only() {
        let re: Regex<char> = Regex::Epsilon;
        let nfa = Nfa::glushkov(&re);
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&['a']));
        assert_eq!(nfa.shortest_word().unwrap(), Vec::<char>::new());
    }

    #[test]
    fn state_symbols_track_positions() {
        let re = Regex::concat(vec![c('a'), Regex::star(c('b'))]);
        let nfa = Nfa::glushkov(&re);
        assert_eq!(nfa.num_states(), 3);
        assert_eq!(nfa.symbol_of(0), None);
        assert_eq!(nfa.symbol_of(1), Some(&'a'));
        assert_eq!(nfa.symbol_of(2), Some(&'b'));
    }

    #[test]
    fn useful_states_excludes_dead_branches() {
        // a,! : the whole language is empty, nothing except maybe state 0 is useful.
        let re = Regex::Concat(vec![c('a'), Regex::Empty]);
        let nfa = Nfa::glushkov(&re);
        assert!(nfa.useful_states().is_empty());
    }

    #[test]
    fn from_parts_round_trips() {
        let re = Regex::concat(vec![
            Regex::star(Regex::alt(vec![c('a'), c('b')])),
            c('c'),
            Regex::opt(c('d')),
        ]);
        let nfa = Nfa::glushkov(&re);
        let transitions: Vec<Vec<(char, Vec<StateId>)>> = (0..nfa.num_states())
            .map(|q| {
                nfa.transitions_from(q)
                    .map(|(sym, succs)| (*sym, succs.to_vec()))
                    .collect()
            })
            .collect();
        let accepting: Vec<StateId> = nfa.accepting_states().collect();
        let state_symbol: Vec<Option<char>> = (0..nfa.num_states())
            .map(|q| nfa.symbol_of(q).copied())
            .collect();
        let rebuilt = Nfa::from_parts(transitions, accepting, state_symbol);
        for w in [
            vec![],
            vec!['c'],
            vec!['a', 'b', 'c'],
            vec!['c', 'd'],
            vec!['d'],
        ] {
            assert_eq!(nfa.accepts(&w), rebuilt.accepts(&w), "{w:?}");
        }
        assert_eq!(
            nfa.useful_states().iter().collect::<Vec<_>>(),
            rebuilt.useful_states().iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn step_uses_sorted_rows() {
        let re = Regex::star(Regex::alt(vec![c('a'), c('b'), c('c')]));
        let nfa = Nfa::glushkov(&re);
        for q in 0..nfa.num_states() {
            let row: Vec<char> = nfa.transitions_from(q).map(|(s, _)| *s).collect();
            let mut sorted = row.clone();
            sorted.sort();
            assert_eq!(row, sorted);
        }
        assert_eq!(nfa.step(0, &'b').collect::<Vec<_>>(), vec![2]);
        assert_eq!(nfa.step(0, &'z').count(), 0);
    }
}
