//! Deterministic finite automata obtained by the subset construction.
//!
//! DFAs are used where complementation or product constructions are needed: checking
//! that two content models are equivalent in tests, and validating that a rewritten DTD
//! (for instance the normalisation `N(D)` of Proposition 3.3) accepts the intended
//! children sequences.

use crate::bitset::BitSet;
use crate::nfa::Nfa;
use crate::Symbol;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A deterministic finite automaton over symbols of type `S`.
///
/// The transition function is partial: a missing entry denotes the (implicit) dead
/// state.  `complete` materialises the dead state when a total automaton is needed
/// (complementation).  Accepting states and the NFA state sets of the subset
/// construction are kept as [`BitSet`]s, so determinisation works word-at-a-time
/// instead of element-at-a-time.
#[derive(Debug, Clone)]
pub struct Dfa<S> {
    transitions: Vec<BTreeMap<S, usize>>,
    accepting: BitSet,
    alphabet: BTreeSet<S>,
}

impl<S: Symbol> Dfa<S> {
    /// Determinise an NFA by the subset construction.
    pub fn from_nfa(nfa: &Nfa<S>) -> Dfa<S> {
        let alphabet = nfa.alphabet();
        // Successor sets as bitset rows, so each subset-construction step is a
        // word-level union over blocks instead of per-element inserts.
        let succ_rows: Vec<BTreeMap<&S, BitSet>> = (0..nfa.num_states())
            .map(|q| {
                nfa.transitions_from(q)
                    .map(|(sym, succs)| (sym, succs.iter().copied().collect()))
                    .collect()
            })
            .collect();
        let mut states: BTreeMap<BitSet, usize> = BTreeMap::new();
        let mut transitions: Vec<BTreeMap<S, usize>> = Vec::new();
        let mut accepting = BitSet::new();
        let nfa_accepting: BitSet = nfa.accepting_states().collect();
        let start: BitSet = [nfa.start()].into_iter().collect();
        states.insert(start.clone(), 0);
        transitions.push(BTreeMap::new());
        if start.intersects(&nfa_accepting) {
            accepting.insert(0);
        }
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(set) = queue.pop_front() {
            let id = states[&set];
            for sym in &alphabet {
                let mut next = BitSet::with_capacity(nfa.num_states());
                for q in set.iter() {
                    if let Some(row) = succ_rows[q].get(sym) {
                        next.union_with(row);
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let next_id = match states.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = transitions.len();
                        states.insert(next.clone(), i);
                        transitions.push(BTreeMap::new());
                        if next.intersects(&nfa_accepting) {
                            accepting.insert(i);
                        }
                        queue.push_back(next.clone());
                        i
                    }
                };
                transitions[id].insert(sym.clone(), next_id);
            }
        }
        Dfa {
            transitions,
            accepting,
            alphabet,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Does the automaton accept `word`?  Symbols outside the alphabet lead to rejection.
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut q = 0usize;
        for sym in word {
            match self.transitions[q].get(sym) {
                Some(&next) => q = next,
                None => return false,
            }
        }
        self.accepting.contains(q)
    }

    /// Complement with respect to `alphabet` (which must contain the DFA's own alphabet).
    pub fn complement(&self, alphabet: &BTreeSet<S>) -> Dfa<S> {
        // Complete the automaton with an explicit dead state, then flip acceptance.
        let dead = self.transitions.len();
        let mut transitions = self.transitions.clone();
        transitions.push(BTreeMap::new());
        for row in transitions.iter_mut() {
            for sym in alphabet {
                row.entry(sym.clone()).or_insert(dead);
            }
        }
        let accepting: BitSet = (0..transitions.len())
            .filter(|q| !self.accepting.contains(*q))
            .collect();
        Dfa {
            transitions,
            accepting,
            alphabet: alphabet.clone(),
        }
    }

    /// Product automaton accepting the intersection of the two languages.
    pub fn intersect(&self, other: &Dfa<S>) -> Dfa<S> {
        let alphabet: BTreeSet<S> = self.alphabet.union(&other.alphabet).cloned().collect();
        let mut states: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut transitions: Vec<BTreeMap<S, usize>> = Vec::new();
        let mut accepting = BitSet::new();
        states.insert((0, 0), 0);
        transitions.push(BTreeMap::new());
        if self.accepting.contains(0) && other.accepting.contains(0) {
            accepting.insert(0);
        }
        let mut queue = VecDeque::new();
        queue.push_back((0usize, 0usize));
        while let Some((a, b)) = queue.pop_front() {
            let id = states[&(a, b)];
            for sym in &alphabet {
                let (Some(&na), Some(&nb)) =
                    (self.transitions[a].get(sym), other.transitions[b].get(sym))
                else {
                    continue;
                };
                let key = (na, nb);
                let next_id = match states.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = transitions.len();
                        states.insert(key, i);
                        transitions.push(BTreeMap::new());
                        if self.accepting.contains(na) && other.accepting.contains(nb) {
                            accepting.insert(i);
                        }
                        queue.push_back(key);
                        i
                    }
                };
                transitions[id].insert(sym.clone(), next_id);
            }
        }
        Dfa {
            transitions,
            accepting,
            alphabet,
        }
    }

    /// Is the accepted language empty?
    pub fn is_empty(&self) -> bool {
        // BFS from the start state looking for an accepting state.
        let mut seen = vec![false; self.transitions.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0);
        while let Some(q) = queue.pop_front() {
            if self.accepting.contains(q) {
                return false;
            }
            for &next in self.transitions[q].values() {
                if !seen[next] {
                    seen[next] = true;
                    queue.push_back(next);
                }
            }
        }
        true
    }

    /// Are the two automata language-equivalent (over the union of their alphabets)?
    ///
    /// Both sides are lowered to the dense matrix form over one shared alphabet
    /// indexing, where the complement/product/emptiness chain runs over `u32` rows
    /// instead of `BTreeMap` lookups.
    pub fn equivalent(&self, other: &Dfa<S>) -> bool {
        let alphabet: BTreeSet<S> = self.alphabet.union(&other.alphabet).cloned().collect();
        let left = self.to_dense(&alphabet);
        let right = other.to_dense(&alphabet);
        left.equivalent(&right)
    }

    /// Lower to the dense transition-matrix form.  `alphabet` fixes the symbol→index
    /// mapping (by sorted position) and must contain every symbol of the DFA; symbols
    /// outside the DFA's own alphabet get all-dead columns.
    pub fn to_dense(&self, alphabet: &BTreeSet<S>) -> DenseDfa {
        let index_of: BTreeMap<&S, usize> =
            alphabet.iter().enumerate().map(|(i, s)| (s, i)).collect();
        let num_symbols = alphabet.len();
        let mut trans = vec![DENSE_DEAD; self.transitions.len() * num_symbols];
        for (q, row) in self.transitions.iter().enumerate() {
            for (sym, &next) in row {
                let s = *index_of
                    .get(sym)
                    .expect("alphabet must cover the DFA's own alphabet");
                trans[q * num_symbols + s] = next as u32;
            }
        }
        DenseDfa {
            num_symbols,
            trans,
            accepting: self.accepting.clone(),
        }
    }
}

/// Sentinel transition target marking the implicit dead state of a [`DenseDfa`].
pub const DENSE_DEAD: u32 = u32::MAX;

/// A DFA in dense matrix form: states are row indices, symbols are column indices
/// (fixed externally, e.g. the sorted position in an alphabet or an interned-symbol
/// index), and `trans[q * num_symbols + s]` is the successor state or [`DENSE_DEAD`].
///
/// The representation trades the generic symbol type for O(1) unchecked-shape lookups
/// and cache-linear rows; it is what content-model equivalence checks and other
/// product-heavy operations run over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseDfa {
    num_symbols: usize,
    /// Row-major transition matrix, `num_states * num_symbols` entries.
    trans: Vec<u32>,
    accepting: BitSet,
}

impl DenseDfa {
    /// Number of states (state `0` is initial).
    pub fn num_states(&self) -> usize {
        // A symbol-less automaton still has its start state.
        self.trans.len().checked_div(self.num_symbols).unwrap_or(1)
    }

    /// Number of symbol columns.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// Is `q` accepting?
    pub fn is_accepting(&self, q: u32) -> bool {
        self.accepting.contains(q as usize)
    }

    /// The successor of `q` on symbol column `s`, or [`DENSE_DEAD`].
    pub fn step(&self, q: u32, s: usize) -> u32 {
        if s >= self.num_symbols {
            return DENSE_DEAD;
        }
        self.trans[q as usize * self.num_symbols + s]
    }

    /// Does the automaton accept this word of symbol columns?
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut q = 0u32;
        for &s in word {
            q = self.step(q, s);
            if q == DENSE_DEAD {
                return false;
            }
        }
        self.is_accepting(q)
    }

    /// Complement: materialise the dead state as an explicit all-self-loop row and flip
    /// acceptance.
    pub fn complement(&self) -> DenseDfa {
        let n = self.num_states();
        let dead = n as u32;
        let mut trans = Vec::with_capacity((n + 1) * self.num_symbols);
        for &t in &self.trans {
            trans.push(if t == DENSE_DEAD { dead } else { t });
        }
        trans.extend(std::iter::repeat_n(dead, self.num_symbols));
        let accepting: BitSet = (0..=n).filter(|&q| !self.accepting.contains(q)).collect();
        DenseDfa {
            num_symbols: self.num_symbols,
            trans,
            accepting,
        }
    }

    /// Product automaton accepting the intersection.  Both operands must share one
    /// symbol indexing (same `num_symbols` meaning the same columns).
    pub fn intersect(&self, other: &DenseDfa) -> DenseDfa {
        assert_eq!(
            self.num_symbols, other.num_symbols,
            "dense product requires a shared alphabet indexing"
        );
        let (na, nb) = (self.num_states(), other.num_states());
        // Dense pair→id map; content-model automata are small, so na*nb stays modest.
        let mut pair_id = vec![DENSE_DEAD; na * nb];
        let mut trans: Vec<u32> = Vec::new();
        let mut accepting = BitSet::new();
        let mut frontier: VecDeque<(u32, u32)> = VecDeque::new();
        pair_id[0] = 0;
        trans.resize(self.num_symbols, DENSE_DEAD);
        if self.is_accepting(0) && other.is_accepting(0) {
            accepting.insert(0);
        }
        frontier.push_back((0, 0));
        while let Some((a, b)) = frontier.pop_front() {
            let id = pair_id[a as usize * nb + b as usize];
            for s in 0..self.num_symbols {
                let (ta, tb) = (self.step(a, s), other.step(b, s));
                if ta == DENSE_DEAD || tb == DENSE_DEAD {
                    continue;
                }
                let slot = ta as usize * nb + tb as usize;
                let next_id = if pair_id[slot] == DENSE_DEAD {
                    let fresh = (trans.len() / self.num_symbols) as u32;
                    pair_id[slot] = fresh;
                    trans.extend(std::iter::repeat_n(DENSE_DEAD, self.num_symbols));
                    if self.is_accepting(ta) && other.is_accepting(tb) {
                        accepting.insert(fresh as usize);
                    }
                    frontier.push_back((ta, tb));
                    fresh
                } else {
                    pair_id[slot]
                };
                trans[id as usize * self.num_symbols + s] = next_id;
            }
        }
        DenseDfa {
            num_symbols: self.num_symbols,
            trans,
            accepting,
        }
    }

    /// Is the accepted language empty?  BFS over live rows.
    pub fn is_empty(&self) -> bool {
        let n = self.num_states();
        let mut seen = BitSet::with_capacity(n);
        seen.insert(0);
        let mut queue = VecDeque::new();
        queue.push_back(0u32);
        while let Some(q) = queue.pop_front() {
            if self.is_accepting(q) {
                return false;
            }
            for s in 0..self.num_symbols {
                let t = self.step(q, s);
                if t != DENSE_DEAD && seen.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }
        true
    }

    /// Language equivalence via the dense complement/product chain.
    pub fn equivalent(&self, other: &DenseDfa) -> bool {
        self.intersect(&other.complement()).is_empty()
            && other.intersect(&self.complement()).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn c(ch: char) -> Regex<char> {
        Regex::sym(ch)
    }

    fn dfa(re: &Regex<char>) -> Dfa<char> {
        Dfa::from_nfa(&Nfa::glushkov(re))
    }

    #[test]
    fn subset_construction_preserves_language() {
        let re = Regex::concat(vec![Regex::star(Regex::alt(vec![c('a'), c('b')])), c('c')]);
        let d = dfa(&re);
        for w in [
            vec![],
            vec!['c'],
            vec!['a', 'c'],
            vec!['a', 'b', 'c'],
            vec!['c', 'c'],
        ] {
            assert_eq!(d.accepts(&w), re.matches(&w), "word {w:?}");
        }
    }

    #[test]
    fn complement_flips_membership() {
        let re = Regex::star(c('a'));
        let d = dfa(&re);
        let alphabet: BTreeSet<char> = ['a', 'b'].into_iter().collect();
        let comp = d.complement(&alphabet);
        assert!(!comp.accepts(&['a', 'a']));
        assert!(comp.accepts(&['a', 'b']));
        assert!(comp.accepts(&['b']));
        assert!(!comp.accepts(&[]));
    }

    #[test]
    fn intersection_and_equivalence() {
        // (a,b)* vs a,(b,a)*,b  — the second is the subset of the first with length >= 2.
        let r1 = Regex::star(Regex::concat(vec![c('a'), c('b')]));
        let r2 = Regex::concat(vec![
            c('a'),
            Regex::star(Regex::concat(vec![c('b'), c('a')])),
            c('b'),
        ]);
        let d1 = dfa(&r1);
        let d2 = dfa(&r2);
        let inter = d1.intersect(&d2);
        assert!(inter.accepts(&['a', 'b']));
        assert!(inter.accepts(&['a', 'b', 'a', 'b']));
        assert!(!inter.accepts(&[]));
        assert!(!d1.equivalent(&d2));
        assert!(d1.equivalent(&dfa(&r1.clone())));
    }

    #[test]
    fn emptiness() {
        let d = dfa(&Regex::Concat(vec![c('a'), Regex::Empty]));
        assert!(d.is_empty());
        let d2 = dfa(&c('a'));
        assert!(!d2.is_empty());
    }

    #[test]
    fn dense_form_agrees_with_sparse() {
        let re = Regex::concat(vec![Regex::star(Regex::alt(vec![c('a'), c('b')])), c('c')]);
        let d = dfa(&re);
        let alphabet: BTreeSet<char> = ['a', 'b', 'c'].into_iter().collect();
        let dense = d.to_dense(&alphabet);
        assert_eq!(dense.num_symbols(), 3);
        let index = |ch: char| (ch as usize) - ('a' as usize);
        for w in [
            vec![],
            vec!['c'],
            vec!['a', 'c'],
            vec!['a', 'b', 'c'],
            vec!['c', 'c'],
            vec!['b'],
        ] {
            let cols: Vec<usize> = w.iter().map(|&ch| index(ch)).collect();
            assert_eq!(dense.accepts(&cols), d.accepts(&w), "word {w:?}");
        }
        // Out-of-alphabet columns reject.
        assert!(!dense.accepts(&[7]));
    }

    #[test]
    fn dense_complement_product_equivalence() {
        let r1 = Regex::star(Regex::concat(vec![c('a'), c('b')]));
        let r2 = Regex::concat(vec![
            c('a'),
            Regex::star(Regex::concat(vec![c('b'), c('a')])),
            c('b'),
        ]);
        let alphabet: BTreeSet<char> = ['a', 'b'].into_iter().collect();
        let d1 = dfa(&r1).to_dense(&alphabet);
        let d2 = dfa(&r2).to_dense(&alphabet);
        // r2 ⊊ r1: the intersection is r2, the symmetric difference is nonempty.
        let inter = d1.intersect(&d2);
        assert!(inter.accepts(&[0, 1]));
        assert!(!inter.accepts(&[]));
        assert!(d2.intersect(&d1.complement()).is_empty());
        assert!(!d1.intersect(&d2.complement()).is_empty());
        assert!(!d1.equivalent(&d2));
        assert!(d1.equivalent(&dfa(&r1).to_dense(&alphabet)));
        // The complement accepts exactly what the original rejects.
        let comp = d1.complement();
        for w in [vec![], vec![0], vec![0, 1], vec![1, 0], vec![0, 1, 0, 1]] {
            assert_eq!(comp.accepts(&w), !d1.accepts(&w), "word {w:?}");
        }
    }
}
