//! Deterministic finite automata obtained by the subset construction.
//!
//! DFAs are used where complementation or product constructions are needed: checking
//! that two content models are equivalent in tests, and validating that a rewritten DTD
//! (for instance the normalisation `N(D)` of Proposition 3.3) accepts the intended
//! children sequences.

use crate::bitset::BitSet;
use crate::nfa::Nfa;
use crate::Symbol;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A deterministic finite automaton over symbols of type `S`.
///
/// The transition function is partial: a missing entry denotes the (implicit) dead
/// state.  `complete` materialises the dead state when a total automaton is needed
/// (complementation).  Accepting states and the NFA state sets of the subset
/// construction are kept as [`BitSet`]s, so determinisation works word-at-a-time
/// instead of element-at-a-time.
#[derive(Debug, Clone)]
pub struct Dfa<S> {
    transitions: Vec<BTreeMap<S, usize>>,
    accepting: BitSet,
    alphabet: BTreeSet<S>,
}

impl<S: Symbol> Dfa<S> {
    /// Determinise an NFA by the subset construction.
    pub fn from_nfa(nfa: &Nfa<S>) -> Dfa<S> {
        let alphabet = nfa.alphabet();
        let mut states: BTreeMap<BitSet, usize> = BTreeMap::new();
        let mut transitions: Vec<BTreeMap<S, usize>> = Vec::new();
        let mut accepting = BitSet::new();
        let nfa_accepting: BitSet = nfa.accepting_states().collect();
        let start: BitSet = [nfa.start()].into_iter().collect();
        states.insert(start.clone(), 0);
        transitions.push(BTreeMap::new());
        if start.intersects(&nfa_accepting) {
            accepting.insert(0);
        }
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(set) = queue.pop_front() {
            let id = states[&set];
            for sym in &alphabet {
                let mut next = BitSet::with_capacity(nfa.num_states());
                for q in set.iter() {
                    for t in nfa.step(q, sym) {
                        next.insert(t);
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let next_id = match states.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = transitions.len();
                        states.insert(next.clone(), i);
                        transitions.push(BTreeMap::new());
                        if next.intersects(&nfa_accepting) {
                            accepting.insert(i);
                        }
                        queue.push_back(next.clone());
                        i
                    }
                };
                transitions[id].insert(sym.clone(), next_id);
            }
        }
        Dfa {
            transitions,
            accepting,
            alphabet,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Does the automaton accept `word`?  Symbols outside the alphabet lead to rejection.
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut q = 0usize;
        for sym in word {
            match self.transitions[q].get(sym) {
                Some(&next) => q = next,
                None => return false,
            }
        }
        self.accepting.contains(q)
    }

    /// Complement with respect to `alphabet` (which must contain the DFA's own alphabet).
    pub fn complement(&self, alphabet: &BTreeSet<S>) -> Dfa<S> {
        // Complete the automaton with an explicit dead state, then flip acceptance.
        let dead = self.transitions.len();
        let mut transitions = self.transitions.clone();
        transitions.push(BTreeMap::new());
        for row in transitions.iter_mut() {
            for sym in alphabet {
                row.entry(sym.clone()).or_insert(dead);
            }
        }
        let accepting: BitSet = (0..transitions.len())
            .filter(|q| !self.accepting.contains(*q))
            .collect();
        Dfa {
            transitions,
            accepting,
            alphabet: alphabet.clone(),
        }
    }

    /// Product automaton accepting the intersection of the two languages.
    pub fn intersect(&self, other: &Dfa<S>) -> Dfa<S> {
        let alphabet: BTreeSet<S> = self.alphabet.union(&other.alphabet).cloned().collect();
        let mut states: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut transitions: Vec<BTreeMap<S, usize>> = Vec::new();
        let mut accepting = BitSet::new();
        states.insert((0, 0), 0);
        transitions.push(BTreeMap::new());
        if self.accepting.contains(0) && other.accepting.contains(0) {
            accepting.insert(0);
        }
        let mut queue = VecDeque::new();
        queue.push_back((0usize, 0usize));
        while let Some((a, b)) = queue.pop_front() {
            let id = states[&(a, b)];
            for sym in &alphabet {
                let (Some(&na), Some(&nb)) =
                    (self.transitions[a].get(sym), other.transitions[b].get(sym))
                else {
                    continue;
                };
                let key = (na, nb);
                let next_id = match states.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = transitions.len();
                        states.insert(key, i);
                        transitions.push(BTreeMap::new());
                        if self.accepting.contains(na) && other.accepting.contains(nb) {
                            accepting.insert(i);
                        }
                        queue.push_back(key);
                        i
                    }
                };
                transitions[id].insert(sym.clone(), next_id);
            }
        }
        Dfa {
            transitions,
            accepting,
            alphabet,
        }
    }

    /// Is the accepted language empty?
    pub fn is_empty(&self) -> bool {
        // BFS from the start state looking for an accepting state.
        let mut seen = vec![false; self.transitions.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0);
        while let Some(q) = queue.pop_front() {
            if self.accepting.contains(q) {
                return false;
            }
            for &next in self.transitions[q].values() {
                if !seen[next] {
                    seen[next] = true;
                    queue.push_back(next);
                }
            }
        }
        true
    }

    /// Are the two automata language-equivalent (over the union of their alphabets)?
    pub fn equivalent(&self, other: &Dfa<S>) -> bool {
        let alphabet: BTreeSet<S> = self.alphabet.union(&other.alphabet).cloned().collect();
        let left = self.intersect(&other.complement(&alphabet));
        let right = other.intersect(&self.complement(&alphabet));
        left.is_empty() && right.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn c(ch: char) -> Regex<char> {
        Regex::sym(ch)
    }

    fn dfa(re: &Regex<char>) -> Dfa<char> {
        Dfa::from_nfa(&Nfa::glushkov(re))
    }

    #[test]
    fn subset_construction_preserves_language() {
        let re = Regex::concat(vec![Regex::star(Regex::alt(vec![c('a'), c('b')])), c('c')]);
        let d = dfa(&re);
        for w in [
            vec![],
            vec!['c'],
            vec!['a', 'c'],
            vec!['a', 'b', 'c'],
            vec!['c', 'c'],
        ] {
            assert_eq!(d.accepts(&w), re.matches(&w), "word {w:?}");
        }
    }

    #[test]
    fn complement_flips_membership() {
        let re = Regex::star(c('a'));
        let d = dfa(&re);
        let alphabet: BTreeSet<char> = ['a', 'b'].into_iter().collect();
        let comp = d.complement(&alphabet);
        assert!(!comp.accepts(&['a', 'a']));
        assert!(comp.accepts(&['a', 'b']));
        assert!(comp.accepts(&['b']));
        assert!(!comp.accepts(&[]));
    }

    #[test]
    fn intersection_and_equivalence() {
        // (a,b)* vs a,(b,a)*,b  — the second is the subset of the first with length >= 2.
        let r1 = Regex::star(Regex::concat(vec![c('a'), c('b')]));
        let r2 = Regex::concat(vec![
            c('a'),
            Regex::star(Regex::concat(vec![c('b'), c('a')])),
            c('b'),
        ]);
        let d1 = dfa(&r1);
        let d2 = dfa(&r2);
        let inter = d1.intersect(&d2);
        assert!(inter.accepts(&['a', 'b']));
        assert!(inter.accepts(&['a', 'b', 'a', 'b']));
        assert!(!inter.accepts(&[]));
        assert!(!d1.equivalent(&d2));
        assert!(d1.equivalent(&dfa(&r1.clone())));
    }

    #[test]
    fn emptiness() {
        let d = dfa(&Regex::Concat(vec![c('a'), Regex::Empty]));
        assert!(d.is_empty());
        let d2 = dfa(&c('a'));
        assert!(!d2.is_empty());
    }
}
