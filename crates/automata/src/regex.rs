//! Regular expressions over an arbitrary symbol alphabet.
//!
//! These model DTD content models (Section 2.1 of the paper).  The constructors mirror
//! the operators a DTD may use: the empty word `ε`, a single element type, concatenation
//! (`,`), disjunction (`+` in the paper, `|` in XML DTD syntax), Kleene star, plus and
//! the optional operator `?`.
//!
//! Besides construction and inspection, the module provides a Brzozowski-derivative
//! matcher which serves as an *oracle* in the test suite for the Glushkov NFA and the
//! subset-construction DFA.

use crate::Symbol;
use std::fmt;

/// A regular expression over symbols of type `S`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regex<S> {
    /// The language containing only the empty word (written `ε` in the paper).
    Epsilon,
    /// The empty language (no word at all).  DTDs produced by the parser never contain
    /// it, but it arises as an intermediate value of derivatives and simplification.
    Empty,
    /// A single occurrence of one symbol.
    Sym(S),
    /// Concatenation of the sub-expressions, in order.
    Concat(Vec<Regex<S>>),
    /// Disjunction (union) of the sub-expressions.
    Alt(Vec<Regex<S>>),
    /// Zero or more repetitions.
    Star(Box<Regex<S>>),
    /// One or more repetitions.
    Plus(Box<Regex<S>>),
    /// Zero or one occurrence.
    Opt(Box<Regex<S>>),
}

impl<S: Symbol> Regex<S> {
    /// A single-symbol expression.
    pub fn sym(s: S) -> Self {
        Regex::Sym(s)
    }

    /// Concatenation of a sequence of expressions, flattening nested concatenations and
    /// dropping `ε` factors.
    pub fn concat(parts: Vec<Regex<S>>) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Epsilon,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Concat(flat),
        }
    }

    /// Disjunction of a set of expressions, flattening nested disjunctions and dropping
    /// `∅` alternatives.
    pub fn alt(parts: Vec<Regex<S>>) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Alt(flat),
        }
    }

    /// Kleene star of an expression.
    pub fn star(inner: Regex<S>) -> Self {
        match inner {
            Regex::Epsilon | Regex::Empty => Regex::Epsilon,
            Regex::Star(i) => Regex::Star(i),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// One-or-more repetitions.
    pub fn plus(inner: Regex<S>) -> Self {
        match inner {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Empty => Regex::Empty,
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Zero-or-one occurrences.
    pub fn opt(inner: Regex<S>) -> Self {
        match inner {
            Regex::Epsilon | Regex::Empty => Regex::Epsilon,
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// Does the language contain the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Empty => false,
            Regex::Sym(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(inner) => inner.nullable(),
        }
    }

    /// Is the language empty (no word at all)?
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Sym(_) => false,
            Regex::Concat(parts) => parts.iter().any(Regex::is_empty_language),
            Regex::Alt(parts) => parts.iter().all(Regex::is_empty_language),
            Regex::Star(_) | Regex::Opt(_) => false,
            Regex::Plus(inner) => inner.is_empty_language(),
        }
    }

    /// All symbols mentioned in the expression, in first-occurrence order and without
    /// duplicates.
    pub fn symbols(&self) -> Vec<S> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Vec<S>) {
        match self {
            Regex::Epsilon | Regex::Empty => {}
            Regex::Sym(s) => {
                if !out.contains(s) {
                    out.push(s.clone());
                }
            }
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => {
                inner.collect_symbols(out)
            }
        }
    }

    /// Number of AST nodes; used as the size measure `|P(A)|` in complexity accounting.
    pub fn size(&self) -> usize {
        match self {
            Regex::Epsilon | Regex::Empty | Regex::Sym(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => 1 + inner.size(),
        }
    }

    /// Does the expression contain a disjunction (`+` in the paper's notation)?
    ///
    /// `Opt` is treated as a disjunction with `ε`, and `Alt` with more than one branch
    /// is a disjunction; this matches the paper's definition of a *disjunction-free* DTD.
    pub fn has_disjunction(&self) -> bool {
        match self {
            Regex::Epsilon | Regex::Empty | Regex::Sym(_) => false,
            Regex::Alt(parts) => parts.len() > 1 || parts.iter().any(Regex::has_disjunction),
            Regex::Opt(_) => true,
            Regex::Concat(parts) => parts.iter().any(Regex::has_disjunction),
            Regex::Star(inner) | Regex::Plus(inner) => inner.has_disjunction(),
        }
    }

    /// Does the expression contain a Kleene star (or plus)?
    pub fn has_star(&self) -> bool {
        match self {
            Regex::Epsilon | Regex::Empty | Regex::Sym(_) => false,
            Regex::Star(_) | Regex::Plus(_) => true,
            Regex::Alt(parts) | Regex::Concat(parts) => parts.iter().any(Regex::has_star),
            Regex::Opt(inner) => inner.has_star(),
        }
    }

    /// Brzozowski derivative with respect to one symbol.
    ///
    /// Used only as a matching oracle (`matches`); production code paths use the
    /// Glushkov NFA, which is linear in the size of the expression.
    pub fn derivative(&self, sym: &S) -> Regex<S> {
        match self {
            Regex::Epsilon | Regex::Empty => Regex::Empty,
            Regex::Sym(s) => {
                if s == sym {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(parts) => {
                // d(r1 r2 ... rn) = d(r1) r2..rn  |  (if r1 nullable) d(r2..rn)
                let mut alts = Vec::new();
                for i in 0..parts.len() {
                    let mut seq = vec![parts[i].derivative(sym)];
                    seq.extend(parts[i + 1..].iter().cloned());
                    alts.push(Regex::concat(seq));
                    if !parts[i].nullable() {
                        break;
                    }
                }
                Regex::alt(alts)
            }
            Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| p.derivative(sym)).collect()),
            Regex::Star(inner) => {
                Regex::concat(vec![inner.derivative(sym), Regex::Star(inner.clone())])
            }
            Regex::Plus(inner) => {
                Regex::concat(vec![inner.derivative(sym), Regex::star((**inner).clone())])
            }
            Regex::Opt(inner) => inner.derivative(sym),
        }
    }

    /// Membership test by repeated derivatives.  Worst-case exponential; only meant as a
    /// correctness oracle in tests and for tiny inputs.
    pub fn matches(&self, word: &[S]) -> bool {
        let mut cur = self.clone();
        for sym in word {
            cur = cur.derivative(sym);
            if cur.is_empty_language() {
                return false;
            }
        }
        cur.nullable()
    }

    /// Restrict the expression to an allowed symbol set: occurrences of disallowed
    /// symbols are replaced by the empty language.  `L(restrict(r, A)) = L(r) ∩ A*`.
    pub fn restrict(&self, allowed: &dyn Fn(&S) -> bool) -> Regex<S> {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Empty => Regex::Empty,
            Regex::Sym(s) => {
                if allowed(s) {
                    Regex::Sym(s.clone())
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(parts) => {
                Regex::concat(parts.iter().map(|p| p.restrict(allowed)).collect())
            }
            Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| p.restrict(allowed)).collect()),
            Regex::Star(inner) => Regex::star(inner.restrict(allowed)),
            Regex::Plus(inner) => Regex::plus(inner.restrict(allowed)),
            Regex::Opt(inner) => Regex::opt(inner.restrict(allowed)),
        }
    }

    /// Rename every symbol through `f`.
    pub fn map_symbols<T: Symbol>(&self, f: &dyn Fn(&S) -> T) -> Regex<T> {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Empty => Regex::Empty,
            Regex::Sym(s) => Regex::Sym(f(s)),
            Regex::Concat(parts) => Regex::Concat(parts.iter().map(|p| p.map_symbols(f)).collect()),
            Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| p.map_symbols(f)).collect()),
            Regex::Star(inner) => Regex::Star(Box::new(inner.map_symbols(f))),
            Regex::Plus(inner) => Regex::Plus(Box::new(inner.map_symbols(f))),
            Regex::Opt(inner) => Regex::Opt(Box::new(inner.map_symbols(f))),
        }
    }

    /// Is the expression in the *normalized DTD* form of Section 2.1:
    /// `ε | B1,...,Bn | B1+...+Bn | B*` where the `Bi` are single symbols?
    pub fn is_normalized(&self) -> bool {
        fn all_syms<S: Symbol>(parts: &[Regex<S>]) -> bool {
            parts.iter().all(|p| matches!(p, Regex::Sym(_)))
        }
        match self {
            Regex::Epsilon | Regex::Sym(_) => true,
            Regex::Concat(parts) | Regex::Alt(parts) => all_syms(parts),
            Regex::Star(inner) => matches!(**inner, Regex::Sym(_)),
            _ => false,
        }
    }
}

impl<S: Symbol + fmt::Display> fmt::Display for Regex<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Epsilon => write!(f, "#"),
            Regex::Empty => write!(f, "!"),
            Regex::Sym(s) => write!(f, "{s}"),
            Regex::Concat(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| format!("{p}")).collect();
                write!(f, "({})", inner.join(","))
            }
            Regex::Alt(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| format!("{p}")).collect();
                write!(f, "({})", inner.join("|"))
            }
            Regex::Star(inner) => write!(f, "{inner}*"),
            Regex::Plus(inner) => write!(f, "{inner}+"),
            Regex::Opt(inner) => write!(f, "{inner}?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Regex<char> {
        Regex::sym(s.chars().next().unwrap())
    }

    #[test]
    fn nullable_basics() {
        assert!(Regex::<char>::Epsilon.nullable());
        assert!(!Regex::<char>::Empty.nullable());
        assert!(!r("a").nullable());
        assert!(Regex::star(r("a")).nullable());
        assert!(Regex::opt(r("a")).nullable());
        assert!(!Regex::plus(r("a")).nullable());
        assert!(Regex::concat(vec![Regex::star(r("a")), Regex::opt(r("b"))]).nullable());
        assert!(!Regex::concat(vec![Regex::star(r("a")), r("b")]).nullable());
    }

    #[test]
    fn matches_simple_words() {
        // (a|b)*,c
        let re = Regex::concat(vec![Regex::star(Regex::alt(vec![r("a"), r("b")])), r("c")]);
        assert!(re.matches(&['c']));
        assert!(re.matches(&['a', 'b', 'a', 'c']));
        assert!(!re.matches(&['a', 'b']));
        assert!(!re.matches(&['c', 'a']));
    }

    #[test]
    fn matches_plus_and_opt() {
        let re = Regex::concat(vec![Regex::plus(r("x")), Regex::opt(r("y"))]);
        assert!(re.matches(&['x']));
        assert!(re.matches(&['x', 'x', 'y']));
        assert!(!re.matches(&['y']));
        assert!(!re.matches(&[]));
    }

    #[test]
    fn empty_language_detection() {
        let re = Regex::concat(vec![r("a"), Regex::Empty]);
        assert!(re.is_empty_language());
        let re2 = Regex::alt(vec![Regex::Empty, r("a")]);
        assert!(!re2.is_empty_language());
    }

    #[test]
    fn smart_constructors_flatten() {
        let re = Regex::concat(vec![
            Regex::concat(vec![r("a"), r("b")]),
            Regex::Epsilon,
            r("c"),
        ]);
        assert_eq!(re, Regex::Concat(vec![r("a"), r("b"), r("c")]));
        let re = Regex::alt(vec![Regex::alt(vec![r("a"), r("b")]), Regex::Empty]);
        assert_eq!(re, Regex::Alt(vec![r("a"), r("b")]));
    }

    #[test]
    fn symbols_are_deduplicated() {
        let re = Regex::concat(vec![r("a"), Regex::star(Regex::alt(vec![r("b"), r("a")]))]);
        assert_eq!(re.symbols(), vec!['a', 'b']);
    }

    #[test]
    fn disjunction_and_star_flags() {
        let df = Regex::concat(vec![r("a"), Regex::star(r("b"))]);
        assert!(!df.has_disjunction());
        assert!(df.has_star());
        let dj = Regex::alt(vec![r("a"), r("b")]);
        assert!(dj.has_disjunction());
        assert!(!dj.has_star());
        assert!(Regex::opt(r("a")).has_disjunction());
    }

    #[test]
    fn normalized_form_recognition() {
        assert!(Regex::<char>::Epsilon.is_normalized());
        assert!(Regex::concat(vec![r("a"), r("b")]).is_normalized());
        assert!(Regex::alt(vec![r("a"), r("b")]).is_normalized());
        assert!(Regex::star(r("a")).is_normalized());
        assert!(!Regex::star(Regex::alt(vec![r("a"), r("b")])).is_normalized());
        assert!(!Regex::concat(vec![r("a"), Regex::star(r("b"))]).is_normalized());
    }

    #[test]
    fn restrict_intersects_with_allowed_alphabet() {
        let re = Regex::concat(vec![r("a"), Regex::alt(vec![r("b"), r("c")])]);
        let restricted = re.restrict(&|s| *s != 'b');
        assert!(restricted.matches(&['a', 'c']));
        assert!(!restricted.matches(&['a', 'b']));
    }
}
