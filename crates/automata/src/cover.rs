//! Coverage search: finding words of a regular language that satisfy occurrence demands.
//!
//! The satisfiability engines repeatedly ask questions of the form
//!
//! > *Is there a children sequence `w ∈ L(P(A))` that uses only element types from a
//! > given allowed set and contains at least `k_B` occurrences of type `B` for every
//! > `B` in a demand multiset?  If so, produce a shortest such sequence.*
//!
//! For the positive NP engine (Theorem 4.4) the demands are the child steps of the
//! query's witness skeleton that were routed to the node being expanded; for the
//! EXPTIME subtree-type fixpoint (Theorems 5.2/5.3) the demands are subtree types that
//! must be realised below the node.  In both cases the search is a BFS over the product
//! of the Glushkov NFA with saturating occurrence counters, which is polynomial in the
//! automaton size for a fixed demand set.

use crate::nfa::{Nfa, StateId};
use crate::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A demand on the children sequence of a node: which symbols are allowed at all and how
/// many occurrences of particular symbols are required at minimum.
#[derive(Debug, Clone, Default)]
pub struct CoverDemand<S: Symbol> {
    /// Minimum number of occurrences required per symbol.
    pub required: BTreeMap<S, usize>,
    /// If `Some`, only these symbols may appear in the word; `None` = no restriction.
    pub allowed: Option<BTreeSet<S>>,
}

impl<S: Symbol> CoverDemand<S> {
    /// A demand with no requirements and no alphabet restriction.
    pub fn none() -> Self {
        CoverDemand {
            required: BTreeMap::new(),
            allowed: None,
        }
    }

    /// Require at least `count` further occurrences of `sym`.
    pub fn require(mut self, sym: S, count: usize) -> Self {
        *self.required.entry(sym).or_insert(0) += count;
        self
    }

    /// Restrict the word to the given alphabet.
    pub fn restrict_to(mut self, allowed: BTreeSet<S>) -> Self {
        self.allowed = Some(allowed);
        self
    }

    fn symbol_allowed(&self, sym: &S) -> bool {
        match &self.allowed {
            Some(set) => set.contains(sym),
            None => true,
        }
    }
}

/// Shortest accepted word of the automaton (convenience wrapper around [`Nfa::shortest_word`]).
pub fn shortest_word<S: Symbol>(nfa: &Nfa<S>) -> Option<Vec<S>> {
    nfa.shortest_word()
}

/// Shortest word of the language that contains at least `required[B]` occurrences of each
/// demanded symbol `B` and uses only allowed symbols.  Returns `None` when no such word
/// exists.
pub fn shortest_covering_word<S: Symbol>(nfa: &Nfa<S>, demand: &CoverDemand<S>) -> Option<Vec<S>> {
    // Product state: (NFA state, per-demand saturating counters).
    let demanded: Vec<(&S, usize)> = demand.required.iter().map(|(s, &k)| (s, k)).collect();
    let goal: Vec<usize> = demanded.iter().map(|&(_, k)| k).collect();
    let start_counts: Vec<usize> = vec![0; demanded.len()];

    type Key = (StateId, Vec<usize>);
    let start: Key = (nfa.start(), start_counts);
    let mut pred: HashMap<Key, (Key, S)> = HashMap::new();
    let mut seen: HashSet<Key> = HashSet::new();
    let mut queue: VecDeque<Key> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start.clone());

    let is_goal = |key: &Key| -> bool {
        nfa.is_accepting(key.0) && key.1.iter().zip(&goal).all(|(c, g)| c >= g)
    };

    let mut goal_key: Option<Key> = if is_goal(&start) { Some(start) } else { None };

    while goal_key.is_none() {
        let Some(key) = queue.pop_front() else { break };
        let (q, counts) = &key;
        for (sym, succs) in nfa.transitions_from(*q) {
            if !demand.symbol_allowed(sym) {
                continue;
            }
            let mut next_counts = counts.clone();
            for (i, (dsym, _)) in demanded.iter().enumerate() {
                if *dsym == sym && next_counts[i] < goal[i] {
                    next_counts[i] += 1;
                }
            }
            for &t in succs {
                let next: Key = (t, next_counts.clone());
                if seen.insert(next.clone()) {
                    pred.insert(next.clone(), (key.clone(), sym.clone()));
                    if is_goal(&next) {
                        goal_key = Some(next.clone());
                    }
                    queue.push_back(next);
                }
            }
            if goal_key.is_some() {
                break;
            }
        }
    }

    let mut cur = goal_key?;
    let mut word = Vec::new();
    while let Some((prev, sym)) = pred.get(&cur).cloned() {
        word.push(sym);
        cur = prev;
    }
    word.reverse();
    Some(word)
}

/// Does the language contain a word with at least the demanded multiplicities
/// (and within the allowed alphabet)?  Equivalent to `shortest_covering_word(..).is_some()`
/// but without materialising the word — the decision BFS skips the predecessor map
/// entirely (the backtracking searches of the positive engine call this in their inner
/// loop and only materialise a word once per accepted plan).
pub fn word_with_multiplicities<S: Symbol>(nfa: &Nfa<S>, demand: &CoverDemand<S>) -> bool {
    let demanded: Vec<(&S, usize)> = demand.required.iter().map(|(s, &k)| (s, k)).collect();
    let goal: Vec<usize> = demanded.iter().map(|&(_, k)| k).collect();
    let start_counts: Vec<usize> = vec![0; demanded.len()];

    type Key = (StateId, Vec<usize>);
    let is_goal = |nfa: &Nfa<S>, key: &Key, goal: &[usize]| -> bool {
        nfa.is_accepting(key.0) && key.1.iter().zip(goal).all(|(c, g)| c >= g)
    };
    let start: Key = (nfa.start(), start_counts);
    if is_goal(nfa, &start, &goal) {
        return true;
    }
    let mut seen: HashSet<Key> = HashSet::new();
    let mut queue: VecDeque<Key> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(key) = queue.pop_front() {
        let (q, counts) = &key;
        for (sym, succs) in nfa.transitions_from(*q) {
            if !demand.symbol_allowed(sym) {
                continue;
            }
            let mut next_counts = counts.clone();
            for (i, (dsym, _)) in demanded.iter().enumerate() {
                if *dsym == sym && next_counts[i] < goal[i] {
                    next_counts[i] += 1;
                }
            }
            for &t in succs {
                let next: Key = (t, next_counts.clone());
                if seen.insert(next.clone()) {
                    if is_goal(nfa, &next, &goal) {
                        return true;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn c(ch: char) -> Regex<char> {
        Regex::sym(ch)
    }

    #[test]
    fn covering_word_respects_multiplicities() {
        // (a|b)* : need two a's and one b.
        let re = Regex::star(Regex::alt(vec![c('a'), c('b')]));
        let nfa = Nfa::glushkov(&re);
        let demand = CoverDemand::none().require('a', 2).require('b', 1);
        let w = shortest_covering_word(&nfa, &demand).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.iter().filter(|&&x| x == 'a').count(), 2);
        assert_eq!(w.iter().filter(|&&x| x == 'b').count(), 1);
        assert!(re.matches(&w));
    }

    #[test]
    fn covering_word_fails_when_language_cannot_provide() {
        // a,b : at most one a.
        let re = Regex::concat(vec![c('a'), c('b')]);
        let nfa = Nfa::glushkov(&re);
        let demand = CoverDemand::none().require('a', 2);
        assert!(shortest_covering_word(&nfa, &demand).is_none());
    }

    #[test]
    fn allowed_alphabet_restriction() {
        // (a|b),c : c always needed, so restricting to {a, c} is fine but {a, b} is not.
        let re = Regex::concat(vec![Regex::alt(vec![c('a'), c('b')]), c('c')]);
        let nfa = Nfa::glushkov(&re);
        let ok = CoverDemand::none().restrict_to(['a', 'c'].into_iter().collect());
        assert!(word_with_multiplicities(&nfa, &ok));
        let bad = CoverDemand::<char>::none().restrict_to(['a', 'b'].into_iter().collect());
        assert!(!word_with_multiplicities(&nfa, &bad));
    }

    #[test]
    fn empty_demand_yields_shortest_word() {
        let re = Regex::concat(vec![Regex::star(c('a')), c('b')]);
        let nfa = Nfa::glushkov(&re);
        let w = shortest_covering_word(&nfa, &CoverDemand::none()).unwrap();
        assert_eq!(w, vec!['b']);
    }

    #[test]
    fn demands_interact_with_concatenation_structure() {
        // a?,b,a? can provide at most two a's, and only around the b.
        let re = Regex::concat(vec![Regex::opt(c('a')), c('b'), Regex::opt(c('a'))]);
        let nfa = Nfa::glushkov(&re);
        let two_a = CoverDemand::none().require('a', 2);
        let w = shortest_covering_word(&nfa, &two_a).unwrap();
        assert_eq!(w, vec!['a', 'b', 'a']);
        let three_a = CoverDemand::none().require('a', 3);
        assert!(shortest_covering_word(&nfa, &three_a).is_none());
    }
}
