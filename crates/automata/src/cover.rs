//! Coverage search: finding words of a regular language that satisfy occurrence demands.
//!
//! The satisfiability engines repeatedly ask questions of the form
//!
//! > *Is there a children sequence `w ∈ L(P(A))` that uses only element types from a
//! > given allowed set and contains at least `k_B` occurrences of type `B` for every
//! > `B` in a demand multiset?  If so, produce a shortest such sequence.*
//!
//! For the positive NP engine (Theorem 4.4) the demands are the child steps of the
//! query's witness skeleton that were routed to the node being expanded; for the
//! EXPTIME subtree-type fixpoint (Theorems 5.2/5.3) the demands are subtree types that
//! must be realised below the node.  In both cases the search is a BFS over the product
//! of the Glushkov NFA with saturating occurrence counters, which is polynomial in the
//! automaton size for a fixed demand set.

use crate::nfa::{Nfa, StateId};
use crate::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A demand on the children sequence of a node: which symbols are allowed at all and how
/// many occurrences of particular symbols are required at minimum.
#[derive(Debug, Clone, Default)]
pub struct CoverDemand<S: Symbol> {
    /// Minimum number of occurrences required per symbol.
    pub required: BTreeMap<S, usize>,
    /// If `Some`, only these symbols may appear in the word; `None` = no restriction.
    pub allowed: Option<BTreeSet<S>>,
}

impl<S: Symbol> CoverDemand<S> {
    /// A demand with no requirements and no alphabet restriction.
    pub fn none() -> Self {
        CoverDemand {
            required: BTreeMap::new(),
            allowed: None,
        }
    }

    /// Require at least `count` further occurrences of `sym`.
    pub fn require(mut self, sym: S, count: usize) -> Self {
        *self.required.entry(sym).or_insert(0) += count;
        self
    }

    /// Restrict the word to the given alphabet.
    pub fn restrict_to(mut self, allowed: BTreeSet<S>) -> Self {
        self.allowed = Some(allowed);
        self
    }

    fn symbol_allowed(&self, sym: &S) -> bool {
        match &self.allowed {
            Some(set) => set.contains(sym),
            None => true,
        }
    }
}

/// Shortest accepted word of the automaton (convenience wrapper around [`Nfa::shortest_word`]).
pub fn shortest_word<S: Symbol>(nfa: &Nfa<S>) -> Option<Vec<S>> {
    nfa.shortest_word()
}

/// Shortest word of the language that contains at least `required[B]` occurrences of each
/// demanded symbol `B` and uses only allowed symbols.  Returns `None` when no such word
/// exists.
pub fn shortest_covering_word<S: Symbol>(nfa: &Nfa<S>, demand: &CoverDemand<S>) -> Option<Vec<S>> {
    // Product state: (NFA state, per-demand saturating counters).
    let demanded: Vec<(&S, usize)> = demand.required.iter().map(|(s, &k)| (s, k)).collect();
    let goal: Vec<usize> = demanded.iter().map(|&(_, k)| k).collect();
    let start_counts: Vec<usize> = vec![0; demanded.len()];

    type Key = (StateId, Vec<usize>);
    let start: Key = (nfa.start(), start_counts);
    let mut pred: HashMap<Key, (Key, S)> = HashMap::new();
    let mut seen: HashSet<Key> = HashSet::new();
    let mut queue: VecDeque<Key> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start.clone());

    let is_goal = |key: &Key| -> bool {
        nfa.is_accepting(key.0) && key.1.iter().zip(&goal).all(|(c, g)| c >= g)
    };

    let mut goal_key: Option<Key> = if is_goal(&start) { Some(start) } else { None };

    while goal_key.is_none() {
        let Some(key) = queue.pop_front() else { break };
        let (q, counts) = &key;
        for (sym, succs) in nfa.transitions_from(*q) {
            if !demand.symbol_allowed(sym) {
                continue;
            }
            let mut next_counts = counts.clone();
            for (i, (dsym, _)) in demanded.iter().enumerate() {
                if *dsym == sym && next_counts[i] < goal[i] {
                    next_counts[i] += 1;
                }
            }
            for &t in succs {
                let next: Key = (t, next_counts.clone());
                if seen.insert(next.clone()) {
                    pred.insert(next.clone(), (key.clone(), sym.clone()));
                    if is_goal(&next) {
                        goal_key = Some(next.clone());
                    }
                    queue.push_back(next);
                }
            }
            if goal_key.is_some() {
                break;
            }
        }
    }

    let mut cur = goal_key?;
    let mut word = Vec::new();
    while let Some((prev, sym)) = pred.get(&cur).cloned() {
        word.push(sym);
        cur = prev;
    }
    word.reverse();
    Some(word)
}

/// Does the language contain a word with at least the demanded multiplicities
/// (and within the allowed alphabet)?  Equivalent to `shortest_covering_word(..).is_some()`
/// but without materialising the word — the decision BFS skips the predecessor map
/// entirely (the backtracking searches of the positive engine call this in their inner
/// loop and only materialise a word once per accepted plan).
pub fn word_with_multiplicities<S: Symbol>(nfa: &Nfa<S>, demand: &CoverDemand<S>) -> bool {
    let demanded: Vec<(&S, usize)> = demand.required.iter().map(|(s, &k)| (s, k)).collect();
    let goal: Vec<usize> = demanded.iter().map(|&(_, k)| k).collect();
    let start_counts: Vec<usize> = vec![0; demanded.len()];

    type Key = (StateId, Vec<usize>);
    let is_goal = |nfa: &Nfa<S>, key: &Key, goal: &[usize]| -> bool {
        nfa.is_accepting(key.0) && key.1.iter().zip(goal).all(|(c, g)| c >= g)
    };
    let start: Key = (nfa.start(), start_counts);
    if is_goal(nfa, &start, &goal) {
        return true;
    }
    let mut seen: HashSet<Key> = HashSet::new();
    let mut queue: VecDeque<Key> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(key) = queue.pop_front() {
        let (q, counts) = &key;
        for (sym, succs) in nfa.transitions_from(*q) {
            if !demand.symbol_allowed(sym) {
                continue;
            }
            let mut next_counts = counts.clone();
            for (i, (dsym, _)) in demanded.iter().enumerate() {
                if *dsym == sym && next_counts[i] < goal[i] {
                    next_counts[i] += 1;
                }
            }
            for &t in succs {
                let next: Key = (t, next_counts.clone());
                if seen.insert(next.clone()) {
                    if is_goal(nfa, &next, &goal) {
                        return true;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    false
}

/// A *sibling window* demand on a children word: two positions `l ≤ r` with
/// `r - l = gap` (or `≥ gap` when `flexible`), whose symbols match `left` /
/// `right` (`None` = any symbol).  One of the two ends is *captured*: the search
/// reports which symbols can stand at it.  This is how a compiled
/// following/preceding-sibling chain `anchor/>/>*…` is decided against a parent's
/// content model: the anchor is the constrained end, the chain target the
/// captured end, `gap` the number of exact hops and `flexible` whether any
/// or-self hop allows extra distance.  When `gap == 0` the two ends may be the
/// *same* occurrence (an all-or-self chain can stay put).
#[derive(Debug, Clone)]
pub struct SibPattern<S: Symbol> {
    /// Symbol required at the left end (`None` = unconstrained).
    pub left: Option<S>,
    /// Symbol required at the right end (`None` = unconstrained).
    pub right: Option<S>,
    /// Minimum distance (in positions) between the two ends.
    pub gap: usize,
    /// Whether the distance may exceed `gap`.
    pub flexible: bool,
    /// Capture the left end's symbol (else the right end's).
    pub capture_left: bool,
    /// If `Some`, the whole word may only use these symbols (local negation).
    pub allowed: Option<BTreeSet<S>>,
}

impl<S: Symbol> SibPattern<S> {
    fn left_matches(&self, s: &S) -> bool {
        self.left.as_ref().is_none_or(|l| l == s)
    }

    fn right_matches(&self, s: &S) -> bool {
        self.right.as_ref().is_none_or(|r| r == s)
    }

    fn symbol_allowed(&self, s: &S) -> bool {
        match &self.allowed {
            Some(set) => set.contains(s),
            None => true,
        }
    }
}

/// The role a word position plays in a realised [`SibPattern`] (drives witness
/// construction: the captured end continues the query spine, everything else is
/// a filler subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SibRole {
    /// Not part of the window (or a forced intermediate inside it).
    Filler,
    /// The left end of the window.
    Left,
    /// The right end of the window.
    Right,
    /// Both ends at once (`gap == 0`, distance 0).
    Both,
}

/// Pattern-automaton state: 0 = window not started, `1 + d` = left end placed
/// `d` positions ago (saturating at `gap`), `gap + 2` = both ends placed.
type SibState = usize;

fn sib_done(gap: usize) -> SibState {
    gap + 2
}

/// Successor pattern states when consuming `s` at `ps` with captured symbol `cap`.
fn sib_successors<S: Symbol>(
    pat: &SibPattern<S>,
    ps: SibState,
    cap: &Option<S>,
    s: &S,
) -> Vec<(SibState, Option<S>, SibRole)> {
    let done = sib_done(pat.gap);
    let mut out = Vec::new();
    if ps == done {
        out.push((done, cap.clone(), SibRole::Filler));
        return out;
    }
    if ps == 0 {
        out.push((0, None, SibRole::Filler));
        if pat.left_matches(s) {
            if pat.gap == 0 && pat.right_matches(s) {
                out.push((done, Some(s.clone()), SibRole::Both));
            }
            let cap0 = pat.capture_left.then(|| s.clone());
            out.push((1, cap0, SibRole::Left));
        }
        return out;
    }
    let dist = ps; // ps = 1 + d, this symbol sits at distance d + 1 = ps
    if dist < pat.gap {
        out.push((1 + dist, cap.clone(), SibRole::Filler));
    } else {
        // At or beyond the minimum distance: this symbol may be the right end,
        // or (when flexible) a filler inside the stretched window.
        if (dist == pat.gap || pat.flexible) && pat.right_matches(s) {
            let capr = if pat.capture_left {
                cap.clone()
            } else {
                Some(s.clone())
            };
            out.push((done, capr, SibRole::Right));
        }
        if pat.flexible {
            out.push((1 + pat.gap, cap.clone(), SibRole::Filler));
        }
    }
    out
}

/// All symbols that can stand at the captured end of `pat` in some accepted word
/// of the automaton.  This is the per-parent-type row of a compiled sibling-chain
/// table: BFS over `(NFA state, pattern state, captured symbol)`.
pub fn sib_pattern_symbols<S: Symbol>(nfa: &Nfa<S>, pat: &SibPattern<S>) -> BTreeSet<S> {
    type Key<S> = (StateId, SibState, Option<S>);
    let done = sib_done(pat.gap);
    let start: Key<S> = (nfa.start(), 0, None);
    let mut seen: HashSet<Key<S>> = HashSet::new();
    let mut queue: VecDeque<Key<S>> = VecDeque::new();
    let mut found = BTreeSet::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some((q, ps, cap)) = queue.pop_front() {
        if nfa.is_accepting(q) && ps == done {
            if let Some(c) = &cap {
                found.insert(c.clone());
            }
        }
        for (sym, succs) in nfa.transitions_from(q) {
            if !pat.symbol_allowed(sym) {
                continue;
            }
            for (nps, ncap, _) in sib_successors(pat, ps, &cap, sym) {
                for &t in succs {
                    let next: Key<S> = (t, nps, ncap.clone());
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    found
}

/// A shortest accepted word realising `pat` with `target` at the captured end,
/// with each position's [`SibRole`].  `None` when no such word exists.
pub fn sib_pattern_word<S: Symbol>(
    nfa: &Nfa<S>,
    pat: &SibPattern<S>,
    target: &S,
) -> Option<Vec<(S, SibRole)>> {
    type Key<S> = (StateId, SibState, Option<S>);
    let done = sib_done(pat.gap);
    let start: Key<S> = (nfa.start(), 0, None);
    let is_goal = |key: &Key<S>| -> bool {
        nfa.is_accepting(key.0) && key.1 == done && key.2.as_ref() == Some(target)
    };
    let mut pred: HashMap<Key<S>, (Key<S>, S, SibRole)> = HashMap::new();
    let mut seen: HashSet<Key<S>> = HashSet::new();
    let mut queue: VecDeque<Key<S>> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start.clone());
    let mut goal_key = is_goal(&start).then_some(start);
    while goal_key.is_none() {
        let Some(key) = queue.pop_front() else { break };
        let (q, ps, cap) = &key;
        'edges: for (sym, succs) in nfa.transitions_from(*q) {
            if !pat.symbol_allowed(sym) {
                continue;
            }
            for (nps, ncap, role) in sib_successors(pat, *ps, cap, sym) {
                for &t in succs {
                    let next: Key<S> = (t, nps, ncap.clone());
                    if seen.insert(next.clone()) {
                        pred.insert(next.clone(), (key.clone(), sym.clone(), role));
                        if is_goal(&next) {
                            goal_key = Some(next);
                            break 'edges;
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    let mut cur = goal_key?;
    let mut word = Vec::new();
    while let Some((prev, sym, role)) = pred.get(&cur).cloned() {
        word.push((sym, role));
        cur = prev;
    }
    word.reverse();
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn c(ch: char) -> Regex<char> {
        Regex::sym(ch)
    }

    #[test]
    fn covering_word_respects_multiplicities() {
        // (a|b)* : need two a's and one b.
        let re = Regex::star(Regex::alt(vec![c('a'), c('b')]));
        let nfa = Nfa::glushkov(&re);
        let demand = CoverDemand::none().require('a', 2).require('b', 1);
        let w = shortest_covering_word(&nfa, &demand).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.iter().filter(|&&x| x == 'a').count(), 2);
        assert_eq!(w.iter().filter(|&&x| x == 'b').count(), 1);
        assert!(re.matches(&w));
    }

    #[test]
    fn covering_word_fails_when_language_cannot_provide() {
        // a,b : at most one a.
        let re = Regex::concat(vec![c('a'), c('b')]);
        let nfa = Nfa::glushkov(&re);
        let demand = CoverDemand::none().require('a', 2);
        assert!(shortest_covering_word(&nfa, &demand).is_none());
    }

    #[test]
    fn allowed_alphabet_restriction() {
        // (a|b),c : c always needed, so restricting to {a, c} is fine but {a, b} is not.
        let re = Regex::concat(vec![Regex::alt(vec![c('a'), c('b')]), c('c')]);
        let nfa = Nfa::glushkov(&re);
        let ok = CoverDemand::none().restrict_to(['a', 'c'].into_iter().collect());
        assert!(word_with_multiplicities(&nfa, &ok));
        let bad = CoverDemand::<char>::none().restrict_to(['a', 'b'].into_iter().collect());
        assert!(!word_with_multiplicities(&nfa, &bad));
    }

    #[test]
    fn empty_demand_yields_shortest_word() {
        let re = Regex::concat(vec![Regex::star(c('a')), c('b')]);
        let nfa = Nfa::glushkov(&re);
        let w = shortest_covering_word(&nfa, &CoverDemand::none()).unwrap();
        assert_eq!(w, vec!['b']);
    }

    fn fwd(left: Option<char>, gap: usize, flexible: bool) -> SibPattern<char> {
        SibPattern {
            left,
            right: None,
            gap,
            flexible,
            capture_left: false,
            allowed: None,
        }
    }

    #[test]
    fn sibling_window_next_hop_is_exact() {
        // a,b,c : the immediate following sibling of `a` is exactly `b`.
        let re = Regex::concat(vec![c('a'), c('b'), c('c')]);
        let nfa = Nfa::glushkov(&re);
        let syms = sib_pattern_symbols(&nfa, &fwd(Some('a'), 1, false));
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['b']);
        // Two exact hops land on `c`.
        let syms = sib_pattern_symbols(&nfa, &fwd(Some('a'), 2, false));
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['c']);
    }

    #[test]
    fn sibling_window_or_self_is_flexible_and_includes_self() {
        let re = Regex::concat(vec![c('a'), c('b'), c('c')]);
        let nfa = Nfa::glushkov(&re);
        let syms = sib_pattern_symbols(&nfa, &fwd(Some('a'), 0, true));
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['a', 'b', 'c']);
        // One exact hop plus or-self: at least distance 1.
        let syms = sib_pattern_symbols(&nfa, &fwd(Some('a'), 1, true));
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['b', 'c']);
    }

    #[test]
    fn sibling_window_respects_disjunction_structure() {
        // (a,b)|(a,c) : after `a` comes `b` or `c`, but never both in one word.
        let re = Regex::alt(vec![
            Regex::concat(vec![c('a'), c('b')]),
            Regex::concat(vec![c('a'), c('c')]),
        ]);
        let nfa = Nfa::glushkov(&re);
        let syms = sib_pattern_symbols(&nfa, &fwd(Some('a'), 1, false));
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['b', 'c']);
        // No word has distance 2 between `a` and anything.
        assert!(sib_pattern_symbols(&nfa, &fwd(Some('a'), 2, false)).is_empty());
    }

    #[test]
    fn sibling_window_backward_captures_the_left_end() {
        // a,b,c : the preceding sibling of `c` is `b`.
        let re = Regex::concat(vec![c('a'), c('b'), c('c')]);
        let nfa = Nfa::glushkov(&re);
        let pat = SibPattern {
            left: None,
            right: Some('c'),
            gap: 1,
            flexible: false,
            capture_left: true,
            allowed: None,
        };
        let syms = sib_pattern_symbols(&nfa, &pat);
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['b']);
        let word = sib_pattern_word(&nfa, &pat, &'b').unwrap();
        assert_eq!(
            word,
            vec![
                ('a', SibRole::Filler),
                ('b', SibRole::Left),
                ('c', SibRole::Right)
            ]
        );
    }

    #[test]
    fn sibling_word_reports_roles_and_respects_allowed() {
        let re = Regex::star(Regex::alt(vec![c('a'), c('b'), c('x')]));
        let nfa = Nfa::glushkov(&re);
        let pat = fwd(Some('a'), 1, false);
        let word = sib_pattern_word(&nfa, &pat, &'b').unwrap();
        assert_eq!(word, vec![('a', SibRole::Left), ('b', SibRole::Right)]);
        // Restricting the alphabet away from `b` leaves only a/x captures.
        let mut restricted = fwd(Some('a'), 1, false);
        restricted.allowed = Some(['a', 'x'].into_iter().collect());
        let syms = sib_pattern_symbols(&nfa, &restricted);
        assert_eq!(syms.into_iter().collect::<Vec<_>>(), vec!['a', 'x']);
        assert!(sib_pattern_word(&nfa, &restricted, &'b').is_none());
    }

    #[test]
    fn demands_interact_with_concatenation_structure() {
        // a?,b,a? can provide at most two a's, and only around the b.
        let re = Regex::concat(vec![Regex::opt(c('a')), c('b'), Regex::opt(c('a'))]);
        let nfa = Nfa::glushkov(&re);
        let two_a = CoverDemand::none().require('a', 2);
        let w = shortest_covering_word(&nfa, &two_a).unwrap();
        assert_eq!(w, vec!['a', 'b', 'a']);
        let three_a = CoverDemand::none().require('a', 3);
        assert!(shortest_covering_word(&nfa, &three_a).is_none());
    }
}
