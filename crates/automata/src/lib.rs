//! Finite-automata substrate for DTD content models.
//!
//! A DTD production `A -> P(A)` constrains the *sequence of children labels* of an `A`
//! element to lie in the regular language `L(P(A))`.  Every satisfiability algorithm in
//! the paper therefore needs, at minimum, the ability to answer questions about regular
//! languages over the element-type alphabet:
//!
//! * membership — used by DTD validation of candidate witness trees;
//! * emptiness and shortest-word extraction — used when expanding a partial witness into
//!   a complete tree that conforms to the DTD;
//! * *coverage* search ("is there a word of the language that contains at least `k_B`
//!   occurrences of symbol `B`, for every `B` in a demand multiset, using only allowed
//!   symbols?") — the workhorse of the positive NP engine (Theorem 4.4) and the
//!   EXPTIME subtree-type fixpoint for fragments with negation (Theorems 5.2/5.3);
//! * position-graph reachability over Glushkov automata — the PTIME sibling-axis
//!   algorithm of Theorem 7.1.
//!
//! The crate is generic over the symbol type; the DTD crate instantiates it with
//! interned element-type identifiers.

pub mod bitset;
pub mod cover;
pub mod dfa;
pub mod nfa;
pub mod regex;

pub use bitset::BitSet;
pub use cover::{
    shortest_covering_word, shortest_word, sib_pattern_symbols, sib_pattern_word,
    word_with_multiplicities, CoverDemand, SibPattern, SibRole,
};
pub use dfa::{DenseDfa, Dfa, DENSE_DEAD};
pub use nfa::{Nfa, StateId};
pub use regex::Regex;

/// The bound placed on symbol types used throughout the crate.
///
/// `Ord` is required so that deterministic data structures (`BTreeMap`, sorted vectors)
/// can be used, which keeps every algorithm in the workspace reproducible run-to-run.
pub trait Symbol: Clone + Eq + std::hash::Hash + Ord + std::fmt::Debug {}

impl<T: Clone + Eq + std::hash::Hash + Ord + std::fmt::Debug> Symbol for T {}
