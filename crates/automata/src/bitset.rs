//! A compact growable bitset over `usize` indices.
//!
//! The dense artifact pipeline keys everything by small integer ids — element-type
//! symbols, NFA states, DFA subset-construction states — so set-valued analyses
//! (reachability closures, accepting-state sets, useful-state masks) become word-wide
//! bit operations instead of `BTreeSet<String>` traffic.  The representation is kept
//! *canonical* (no trailing zero blocks) so that `Eq`/`Ord`/`Hash` are structural and a
//! `BitSet` can serve as a deterministic map key, e.g. in the subset construction.

use std::fmt;

const BITS: usize = 64;

/// A set of small `usize` values stored as packed 64-bit blocks.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// The empty set.
    pub const fn new() -> BitSet {
        BitSet { blocks: Vec::new() }
    }

    /// The empty set with room for values `< capacity` preallocated.
    pub fn with_capacity(capacity: usize) -> BitSet {
        BitSet {
            blocks: Vec::with_capacity(capacity.div_ceil(BITS)),
        }
    }

    /// Insert `value`; returns `true` when it was not present before.
    pub fn insert(&mut self, value: usize) -> bool {
        let block = value / BITS;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (value % BITS);
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Is `value` in the set?
    pub fn contains(&self, value: usize) -> bool {
        self.blocks
            .get(value / BITS)
            .is_some_and(|b| b & (1u64 << (value % BITS)) != 0)
    }

    /// Add every element of `other` to `self`; returns `true` when `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        let mut grew = false;
        for (dst, &src) in self.blocks.iter_mut().zip(&other.blocks) {
            let merged = *dst | src;
            grew |= merged != *dst;
            *dst = merged;
        }
        if grew {
            self.normalize();
        }
        grew
    }

    /// Do the two sets share an element?
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Keep only the elements also in `other`; returns `true` when `self` shrank.
    /// One AND per 64-element block.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut shrank = false;
        for (i, dst) in self.blocks.iter_mut().enumerate() {
            let src = other.blocks.get(i).copied().unwrap_or(0);
            let masked = *dst & src;
            shrank |= masked != *dst;
            *dst = masked;
        }
        if shrank {
            self.normalize();
        }
        shrank
    }

    /// Is every element of `self` also in `other`?  One AND-compare per block; blocks
    /// beyond `other`'s length must be zero (the representation is canonical, so they
    /// never are unless `self` is longer *and* nonempty there).
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false; // canonical form: a longer block vector has a high bit set
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// The union of the two sets as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let (longer, shorter) = if self.blocks.len() >= other.blocks.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut blocks = longer.blocks.clone();
        for (dst, &src) in blocks.iter_mut().zip(&shorter.blocks) {
            *dst |= src;
        }
        BitSet { blocks }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// The elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut rest = block;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(i * BITS + bit)
            })
        })
    }

    /// Drop trailing zero blocks so that structural equality is canonical.
    fn normalize(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let mut set = BitSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(s.insert(64));
        assert!(s.insert(200));
        assert!(!s.insert(3));
        assert!(s.contains(3) && s.contains(64) && s.contains(200));
        assert!(!s.contains(4) && !s.contains(199));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 200]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a: BitSet = [1, 5, 100].into_iter().collect();
        let mut b: BitSet = [5, 9].into_iter().collect();
        assert!(b.union_with(&a));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 5, 9, 100]);
        assert!(!b.union_with(&a));
        assert!(a.intersects(&b));
        let c: BitSet = [2].into_iter().collect();
        assert!(!a.intersects(&c));
    }

    #[test]
    fn equality_is_canonical() {
        // A set that grew to a high block and one that never did must compare equal once
        // they hold the same elements.
        let mut a = BitSet::new();
        a.insert(700);
        let mut b = BitSet::new();
        b.union_with(&a);
        let small: BitSet = [1].into_iter().collect();
        let mut c: BitSet = [1].into_iter().collect();
        c.union_with(&BitSet::new());
        assert_eq!(a, b);
        assert_eq!(small, c);
        use std::collections::BTreeSet;
        let mut keys = BTreeSet::new();
        keys.insert(a.clone());
        keys.insert(b);
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn word_level_fast_paths() {
        let a: BitSet = [1, 5, 100, 130].into_iter().collect();
        let b: BitSet = [5, 100].into_iter().collect();
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert!(BitSet::new().is_subset_of(&b));
        assert!(!b.is_subset_of(&BitSet::new()));

        let u = a.union(&b);
        assert_eq!(u, a);
        let c: BitSet = [2, 200].into_iter().collect();
        let u2 = a.union(&c);
        assert_eq!(u2.iter().collect::<Vec<_>>(), vec![1, 2, 5, 100, 130, 200]);

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i, b);
        // Intersection result stays canonical even when high blocks vanish.
        let mut high: BitSet = [700].into_iter().collect();
        assert!(high.intersect_with(&b));
        assert!(high.is_empty());
        assert_eq!(high, BitSet::new());
        let mut same = b.clone();
        assert!(!same.intersect_with(&a));
        assert_eq!(same, b);
    }

    #[test]
    fn empty_behaviour() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        let mut t = BitSet::with_capacity(256);
        assert!(t.is_empty());
        t.insert(0);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0]);
    }
}
