//! The [`Dtd`] type: element declarations, attribute sets and the root type.

use crate::ContentModel;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xpsat_automata::Regex;

/// The declaration of one element type: its content model `P(A)` and its attribute set
/// `R(A)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// The content model (a regular expression over element-type names).
    pub content: ContentModel,
    /// The attributes every element of this type carries.
    pub attributes: BTreeSet<String>,
}

impl Default for ElementDecl {
    fn default() -> Self {
        ElementDecl {
            content: Regex::Epsilon,
            attributes: BTreeSet::new(),
        }
    }
}

/// A DTD `(Ele, Att, P, R, r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtd {
    root: String,
    elements: BTreeMap<String, ElementDecl>,
}

impl Dtd {
    /// Create a DTD with the given root type, declared (for the moment) with content `ε`.
    pub fn new(root: impl Into<String>) -> Dtd {
        let root = root.into();
        let mut elements = BTreeMap::new();
        elements.insert(root.clone(), ElementDecl::default());
        Dtd { root, elements }
    }

    /// The root element type `r`.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Declare (or redefine) the content model of an element type.
    pub fn define(&mut self, name: impl Into<String>, content: ContentModel) -> &mut Self {
        let name = name.into();
        self.elements.entry(name).or_default().content = content;
        self
    }

    /// Declare an element type with content `ε` if it is not declared yet.
    pub fn declare_empty(&mut self, name: impl Into<String>) -> &mut Self {
        self.elements.entry(name.into()).or_default();
        self
    }

    /// Add attributes to an element type (declaring the type if necessary).
    pub fn add_attributes<I, T>(&mut self, name: impl Into<String>, attrs: I) -> &mut Self
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        let decl = self.elements.entry(name.into()).or_default();
        decl.attributes.extend(attrs.into_iter().map(Into::into));
        self
    }

    /// Is this element type declared?
    pub fn contains(&self, name: &str) -> bool {
        self.elements.contains_key(name)
    }

    /// The declaration of an element type.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    /// The content model `P(A)`, if `A` is declared.
    pub fn content(&self, name: &str) -> Option<&ContentModel> {
        self.elements.get(name).map(|d| &d.content)
    }

    /// The attribute set `R(A)` (empty for undeclared types).
    pub fn attributes(&self, name: &str) -> BTreeSet<String> {
        self.elements
            .get(name)
            .map(|d| d.attributes.clone())
            .unwrap_or_default()
    }

    /// All declared element-type names, in sorted order.
    pub fn element_names(&self) -> Vec<String> {
        self.elements.keys().cloned().collect()
    }

    /// All declared element types with their declarations.
    pub fn elements(&self) -> impl Iterator<Item = (&String, &ElementDecl)> {
        self.elements.iter()
    }

    /// All attribute names mentioned anywhere (`Att`).
    pub fn all_attributes(&self) -> BTreeSet<String> {
        self.elements
            .values()
            .flat_map(|d| d.attributes.iter().cloned())
            .collect()
    }

    /// `|D|`: the size of the DTD, measured as the total size of all content models
    /// plus the number of declared attributes.
    pub fn size(&self) -> usize {
        self.elements
            .values()
            .map(|d| d.content.size() + d.attributes.len())
            .sum::<usize>()
            + self.elements.len()
    }

    /// Element types referenced in some content model but never declared.
    ///
    /// The parser and the reduction generators always declare every referenced type;
    /// this check guards hand-built DTDs in user code and tests.
    pub fn undeclared_references(&self) -> BTreeSet<String> {
        let mut missing = BTreeSet::new();
        for decl in self.elements.values() {
            for sym in decl.content.symbols() {
                if !self.elements.contains_key(&sym) {
                    missing.insert(sym);
                }
            }
        }
        missing
    }

    /// Rename the root type (the type must already be declared).
    pub fn set_root(&mut self, root: impl Into<String>) -> &mut Self {
        let root = root.into();
        self.elements.entry(root.clone()).or_default();
        self.root = root;
        self
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "root {};", self.root)?;
        for (name, decl) in &self.elements {
            writeln!(f, "{name} -> {};", decl.content)?;
            if !decl.attributes.is_empty() {
                let attrs: Vec<&str> = decl.attributes.iter().map(String::as_str).collect();
                writeln!(f, "@{name}: {};", attrs.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> ContentModel {
        Regex::sym(s.to_string())
    }

    #[test]
    fn build_and_inspect() {
        let mut dtd = Dtd::new("r");
        dtd.define("r", Regex::star(Regex::alt(vec![sym("a"), sym("b")])))
            .declare_empty("a")
            .declare_empty("b")
            .add_attributes("a", ["id", "name"]);

        assert_eq!(dtd.root(), "r");
        assert!(dtd.contains("a"));
        assert!(!dtd.contains("z"));
        assert_eq!(dtd.attributes("a").len(), 2);
        assert_eq!(dtd.attributes("b").len(), 0);
        assert_eq!(dtd.element_names(), vec!["a", "b", "r"]);
        assert!(dtd.all_attributes().contains("id"));
        assert!(dtd.undeclared_references().is_empty());
        assert!(dtd.size() > 0);
    }

    #[test]
    fn undeclared_references_detected() {
        let mut dtd = Dtd::new("r");
        dtd.define("r", sym("ghost"));
        assert_eq!(
            dtd.undeclared_references().into_iter().collect::<Vec<_>>(),
            vec!["ghost"]
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let mut dtd = Dtd::new("store");
        dtd.define(
            "store",
            Regex::star(Regex::alt(vec![sym("book"), sym("magazine")])),
        )
        .define(
            "book",
            Regex::concat(vec![
                sym("title"),
                Regex::plus(sym("author")),
                Regex::opt(sym("price")),
            ]),
        )
        .declare_empty("title")
        .declare_empty("author")
        .declare_empty("price")
        .declare_empty("magazine")
        .add_attributes("book", ["isbn"]);

        let text = dtd.to_string();
        let parsed = crate::parse::parse_dtd(&text).unwrap();
        assert_eq!(parsed, dtd);
    }
}
