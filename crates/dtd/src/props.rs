//! Structural DTD properties that widen the tractable query fragments.
//!
//! Ishihara–Suzuki–Hashimoto (arXiv 1308.0769, PAPERS.md) show that XPath
//! satisfiability stays PTIME well beyond the downward fragment when the DTD —
//! not the query — is restricted: content models that are *duplicate-free*
//! (each element type occurs at most once syntactically), *disjunction-capsuled*
//! (every disjunction operand is concatenation-free) or *covering* (every type
//! mentioned in `P(A)` occurs in some word of `L(P(A))`) admit cheap exact
//! reasoning about qualifier demands, local negation and sibling order.  Real
//! schemas (XHTML, DocBook) overwhelmingly satisfy them.
//!
//! Each property here is one cheap syntactic pass over the pruned DTD plus the
//! dense [`DtdGraph`]; the compiled-VM query compiler and the solver's shared
//! pre-filter condition on them instead of bailing on query features alone.

use crate::dtd::Dtd;
use crate::graph::DtdGraph;
use crate::ContentModel;
use std::collections::BTreeMap;
use xpsat_automata::{BitSet, Regex};

/// Cheap structural properties of a (pruned) DTD, computed once per compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdProperties {
    /// Every content model mentions each element type at most once syntactically.
    /// Glushkov automata of duplicate-free expressions are deterministic, so
    /// restricting the alphabet (local qualifier negation) is a DFA complement.
    pub duplicate_free: bool,
    /// Every disjunction operand is concatenation-free ("capsuled"): choosing a
    /// disjunct never commits to a sequence, so distributing qualifier
    /// disjunctions over the remaining compilation cannot blow up demands.
    pub disjunction_capsuled: bool,
    /// Every element type mentioned in `P(A)` occurs in some word of `L(P(A))`:
    /// the DTD graph's syntactic edges coincide with "can actually occur as a
    /// child", making graph reachability an exact child-existence test.
    pub covering: bool,
    /// Element types that cannot reach themselves in the DTD graph — subtrees
    /// below them have statically bounded depth even in a recursive DTD.
    pub non_recursive: BitSet,
}

impl DtdProperties {
    /// Analyse `pruned` (all types terminating) against its dense graph.
    pub fn analyze(pruned: &Dtd, graph: &DtdGraph) -> DtdProperties {
        let mut duplicate_free = true;
        let mut disjunction_capsuled = true;
        let mut covering = true;
        for (_, decl) in pruned.elements() {
            duplicate_free &= content_is_duplicate_free(&decl.content);
            disjunction_capsuled &= alts_are_capsuled(&decl.content);
            covering &= content_is_covering(&decl.content);
        }
        let n = graph.symbols().len();
        let mut non_recursive = BitSet::with_capacity(n);
        for index in 0..n {
            let sym = crate::symbols::Sym::from_index(index);
            if !graph.reaches(sym, sym) {
                non_recursive.insert(index);
            }
        }
        DtdProperties {
            duplicate_free,
            disjunction_capsuled,
            covering,
            non_recursive,
        }
    }
}

/// No element type occurs at two syntactic positions of the content model.
fn content_is_duplicate_free(content: &ContentModel) -> bool {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    count_occurrences(content, &mut counts);
    counts.values().all(|&c| c <= 1)
}

fn count_occurrences<'a>(r: &'a ContentModel, counts: &mut BTreeMap<&'a str, usize>) {
    match r {
        Regex::Epsilon | Regex::Empty => {}
        Regex::Sym(s) => *counts.entry(s.as_str()).or_insert(0) += 1,
        Regex::Concat(parts) | Regex::Alt(parts) => {
            for p in parts {
                count_occurrences(p, counts);
            }
        }
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => {
            count_occurrences(inner, counts);
        }
    }
}

/// Every `Alt` operand anywhere in the expression is concatenation-free.
fn alts_are_capsuled(r: &ContentModel) -> bool {
    match r {
        Regex::Epsilon | Regex::Empty | Regex::Sym(_) => true,
        Regex::Concat(parts) => parts.iter().all(alts_are_capsuled),
        Regex::Alt(parts) => parts.iter().all(capsuled_operand),
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => alts_are_capsuled(inner),
    }
}

fn capsuled_operand(r: &ContentModel) -> bool {
    match r {
        Regex::Epsilon | Regex::Empty | Regex::Sym(_) => true,
        Regex::Concat(_) => false,
        Regex::Alt(parts) => parts.iter().all(capsuled_operand),
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => capsuled_operand(inner),
    }
}

/// Every symbol occurring syntactically in the expression occurs in some word of
/// its language.
fn content_is_covering(r: &ContentModel) -> bool {
    let mut syms = r.symbols();
    syms.sort();
    syms.dedup();
    syms.iter().all(|s| occurs_in_some_word(r, s))
}

/// Does some word of `L(r)` contain `s`?  (Purely syntactic recursion; no automaton.)
fn occurs_in_some_word(r: &ContentModel, s: &str) -> bool {
    match r {
        Regex::Epsilon | Regex::Empty => false,
        Regex::Sym(x) => x == s,
        Regex::Concat(parts) => parts.iter().enumerate().any(|(i, p)| {
            occurs_in_some_word(p, s)
                && parts
                    .iter()
                    .enumerate()
                    .all(|(j, q)| j == i || !q.is_empty_language())
        }),
        Regex::Alt(parts) => parts.iter().any(|p| occurs_in_some_word(p, s)),
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => {
            occurs_in_some_word(inner, s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::prune_nonterminating;
    use crate::parse::parse_dtd;

    fn props(text: &str) -> DtdProperties {
        let dtd = parse_dtd(text).unwrap();
        let pruned = prune_nonterminating(&dtd).expect("terminating root");
        let graph = DtdGraph::new(&pruned);
        DtdProperties::analyze(&pruned, &graph)
    }

    #[test]
    fn duplicate_free_detects_repeated_types() {
        assert!(props("r -> a, b; a -> #; b -> #;").duplicate_free);
        assert!(!props("r -> a, b, a; a -> #; b -> #;").duplicate_free);
        // A repeat under a star is still a syntactic duplicate.
        assert!(!props("r -> a, a*; a -> #;").duplicate_free);
    }

    #[test]
    fn capsuled_rejects_concatenation_inside_disjunction() {
        assert!(props("r -> (a | b)*; a -> #; b -> #;").disjunction_capsuled);
        assert!(props("r -> a | b?; a -> #; b -> #;").disjunction_capsuled);
        assert!(!props("r -> (a, b) | c; a -> #; b -> #; c -> #;").disjunction_capsuled);
    }

    #[test]
    fn covering_requires_every_mention_to_be_realisable() {
        assert!(props("r -> a?, b; a -> #; b -> #;").covering);
        // After pruning, `dead` disappears from `r`'s content, so the pruned DTD
        // is covering even though the original mentions an unrealisable type.
        assert!(props("r -> a, dead?; a -> #; dead -> dead;").covering);
    }

    #[test]
    fn non_recursive_marks_self_unreachable_types() {
        let p = props("r -> a*, b; a -> r?; b -> #;");
        let dtd = parse_dtd("r -> a*, b; a -> r?; b -> #;").unwrap();
        let pruned = prune_nonterminating(&dtd).unwrap();
        let graph = DtdGraph::new(&pruned);
        let r = graph.sym("r").unwrap();
        let b = graph.sym("b").unwrap();
        assert!(!p.non_recursive.contains(r.index()));
        assert!(p.non_recursive.contains(b.index()));
    }

    #[test]
    fn realistic_shapes_satisfy_the_bundle() {
        // DocBook-ish: sequences with optional/starred parts, capsuled alts.
        let p = props(
            "book -> title, chapter+; chapter -> title, (para | note)*; \
             title -> #; para -> #; note -> para*;",
        );
        assert!(p.duplicate_free);
        assert!(p.disjunction_capsuled);
        assert!(p.covering);
    }
}
