//! Classification of DTDs into the restricted classes of Section 6.
//!
//! The paper analyses satisfiability under four DTD regimes: general DTDs, nonrecursive
//! DTDs, disjunction-free DTDs and fixed DTDs (plus the no-DTD case, handled by
//! Proposition 3.1).  [`classify`] computes which regimes a concrete DTD falls into so
//! that the solver façade can pick the cheapest complete engine.

use crate::dtd::Dtd;
use crate::graph::DtdGraph;

/// Structural classification of a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdClass {
    /// Does the DTD graph contain a cycle (Section 2.1)?
    pub recursive: bool,
    /// Are all content models free of disjunction (`+` in the paper's notation,
    /// including the optional operator `?`)?
    pub disjunction_free: bool,
    /// Does any content model contain a Kleene star or plus?
    pub has_star: bool,
    /// Are all content models in the normal form of Section 2.1
    /// (`ε | B1,…,Bn | B1+…+Bn | B*`)?
    pub normalized: bool,
    /// For nonrecursive DTDs, the maximum depth of any conforming document.
    pub depth_bound: Option<usize>,
}

/// Classify a DTD.
pub fn classify(dtd: &Dtd) -> DtdClass {
    let graph = DtdGraph::new(dtd);
    let recursive = graph.is_recursive();
    let mut disjunction_free = true;
    let mut has_star = false;
    let mut normalized = true;
    for (_, decl) in dtd.elements() {
        if decl.content.has_disjunction() {
            disjunction_free = false;
        }
        if decl.content.has_star() {
            has_star = true;
        }
        if !decl.content.is_normalized() {
            normalized = false;
        }
    }
    DtdClass {
        recursive,
        disjunction_free,
        has_star,
        normalized,
        depth_bound: graph.depth_bound(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;

    #[test]
    fn classify_examples_from_the_paper() {
        // The 3SAT DTD of Example 2.1: normalized, nonrecursive, not disjunction-free.
        let example_2_1 =
            parse_dtd("r -> x1, x2, x3; x1 -> t | f; x2 -> t | f; x3 -> t | f; t -> #; f -> #;")
                .unwrap();
        let class = classify(&example_2_1);
        assert!(!class.recursive);
        assert!(!class.disjunction_free);
        assert!(class.normalized);
        assert!(!class.has_star);
        assert_eq!(class.depth_bound, Some(2));

        // The two-register-machine DTD of Theorem 5.4: recursive and disjunctive.
        let trm = parse_dtd(
            "r -> c; c -> (c, r1, r2) | #; r1 -> x | #; r2 -> y | #; x -> x | #; y -> y | #;",
        )
        .unwrap();
        let class = classify(&trm);
        assert!(class.recursive);
        assert!(!class.disjunction_free);
        assert_eq!(class.depth_bound, None);

        // The fixed DTD of Theorem 6.9(3): disjunction-free, recursive, starred.
        let djfree = parse_dtd("r -> t*, f*; t -> t*, f*; f -> t*, f*;").unwrap();
        let class = classify(&djfree);
        assert!(class.recursive);
        assert!(class.disjunction_free);
        assert!(class.has_star);
        assert!(!class.normalized);
    }

    #[test]
    fn normal_form_detection() {
        let normalized =
            parse_dtd("r -> a, b; a -> c | d; b -> e*; c -> #; d -> #; e -> #;").unwrap();
        assert!(classify(&normalized).normalized);
        let not_normalized = parse_dtd("r -> (a | b), c;").unwrap();
        assert!(!classify(&not_normalized).normalized);
    }
}
