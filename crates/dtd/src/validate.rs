//! Validation of documents against DTDs (`T ⊨ D`, Section 2.1).
//!
//! A document conforms to a DTD when (1) its root is labelled with the root type,
//! (2) every node's label is a declared element type, (3) every node's children-label
//! word belongs to the language of its type's content model, and (4) every node carries
//! exactly the attributes declared for its type, each with a value.
//!
//! Content-model membership is checked through the Glushkov NFA of the content model,
//! which keeps validation polynomial in `|T| + |D|`.

use crate::dtd::Dtd;
use std::collections::BTreeMap;
use std::fmt;
use xpsat_automata::Nfa;
use xpsat_xmltree::{Document, NodeId};

/// A reason why a document does not conform to a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The root label differs from the DTD's root type.
    WrongRootLabel {
        /// The expected root type.
        expected: String,
        /// The label actually found at the root.
        found: String,
    },
    /// A node is labelled with a type that the DTD does not declare.
    UndeclaredType {
        /// The offending node.
        node: NodeId,
        /// Its (undeclared) label.
        label: String,
    },
    /// The children-label word of a node is not in the language of its content model.
    InvalidChildren {
        /// The offending node.
        node: NodeId,
        /// The node's label.
        label: String,
        /// The children labels that were found.
        children: Vec<String>,
    },
    /// A node misses a declared attribute.
    MissingAttribute {
        /// The offending node.
        node: NodeId,
        /// The attribute required by `R(label)`.
        attribute: String,
    },
    /// A node carries an attribute that its type does not declare.
    UnexpectedAttribute {
        /// The offending node.
        node: NodeId,
        /// The undeclared attribute.
        attribute: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongRootLabel { expected, found } => {
                write!(f, "root is labelled `{found}`, expected `{expected}`")
            }
            ValidationError::UndeclaredType { node, label } => {
                write!(f, "node {node:?} has undeclared element type `{label}`")
            }
            ValidationError::InvalidChildren { node, label, children } => write!(
                f,
                "children of node {node:?} (type `{label}`) do not match its content model: {children:?}"
            ),
            ValidationError::MissingAttribute { node, attribute } => {
                write!(f, "node {node:?} is missing required attribute `{attribute}`")
            }
            ValidationError::UnexpectedAttribute { node, attribute } => {
                write!(f, "node {node:?} carries undeclared attribute `{attribute}`")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check `T ⊨ D`.  Returns the first violation found (in pre-order), or `Ok(())`.
pub fn validate(doc: &Document, dtd: &Dtd) -> Result<(), ValidationError> {
    if doc.label(doc.root()) != dtd.root() {
        return Err(ValidationError::WrongRootLabel {
            expected: dtd.root().to_string(),
            found: doc.label(doc.root()).to_string(),
        });
    }
    // Cache one Glushkov automaton per element type actually used.
    let mut automata: BTreeMap<String, Nfa<String>> = BTreeMap::new();
    for node in doc.all_nodes() {
        let label = doc.label(node).to_string();
        let Some(decl) = dtd.element(&label) else {
            return Err(ValidationError::UndeclaredType { node, label });
        };
        let nfa = automata
            .entry(label.clone())
            .or_insert_with(|| Nfa::glushkov(&decl.content));
        let children = doc.child_labels(node);
        if !nfa.accepts(&children) {
            return Err(ValidationError::InvalidChildren {
                node,
                label,
                children,
            });
        }
        for attr in &decl.attributes {
            if doc.attr(node, attr).is_none() {
                return Err(ValidationError::MissingAttribute {
                    node,
                    attribute: attr.clone(),
                });
            }
        }
        for present in doc.attrs(node).keys() {
            if !decl.attributes.contains(present) {
                return Err(ValidationError::UnexpectedAttribute {
                    node,
                    attribute: present.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Convenience predicate form of [`validate`].
pub fn conforms(doc: &Document, dtd: &Dtd) -> bool {
    validate(doc, dtd).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;

    fn bookstore() -> Dtd {
        parse_dtd(
            "root store;\n\
             store -> book*;\n\
             book -> title, author+;\n\
             title -> #; author -> #;\n\
             @book: isbn;",
        )
        .unwrap()
    }

    fn valid_doc() -> Document {
        let mut doc = Document::new("store");
        let book = doc.add_child(doc.root(), "book");
        doc.set_attr(book, "isbn", "1-55860-622-X");
        doc.add_child(book, "title");
        doc.add_child(book, "author");
        doc.add_child(book, "author");
        doc
    }

    #[test]
    fn accepts_conforming_document() {
        assert_eq!(validate(&valid_doc(), &bookstore()), Ok(()));
    }

    #[test]
    fn rejects_wrong_root() {
        let doc = Document::new("shop");
        assert!(matches!(
            validate(&doc, &bookstore()),
            Err(ValidationError::WrongRootLabel { .. })
        ));
    }

    #[test]
    fn rejects_bad_children_order_and_missing_children() {
        let dtd = bookstore();
        let mut doc = Document::new("store");
        let book = doc.add_child(doc.root(), "book");
        doc.set_attr(book, "isbn", "x");
        doc.add_child(book, "author"); // missing title, wrong order
        assert!(matches!(
            validate(&doc, &dtd),
            Err(ValidationError::InvalidChildren { .. })
        ));
    }

    #[test]
    fn rejects_undeclared_type_and_attributes() {
        let dtd = bookstore();
        let mut doc = valid_doc();
        let book = doc.children(doc.root())[0];
        doc.set_attr(book, "price", "10");
        assert!(matches!(
            validate(&doc, &dtd),
            Err(ValidationError::UnexpectedAttribute { .. })
        ));

        // An undeclared child label is caught by the parent's content model first…
        let mut doc2 = Document::new("store");
        doc2.add_child(doc2.root(), "pamphlet");
        assert!(matches!(
            validate(&doc2, &dtd),
            Err(ValidationError::InvalidChildren { .. })
        ));
        // …whereas a hand-built DTD that *references* an undeclared type reports the
        // undeclared type itself.
        let mut dangling = Dtd::new("r");
        dangling.define("r", xpsat_automata::Regex::Sym("ghost".to_string()));
        let mut doc_ghost = Document::new("r");
        doc_ghost.add_child(doc_ghost.root(), "ghost");
        assert!(matches!(
            validate(&doc_ghost, &dangling),
            Err(ValidationError::UndeclaredType { .. })
        ));

        let mut doc3 = Document::new("store");
        let book = doc3.add_child(doc3.root(), "book");
        doc3.add_child(book, "title");
        doc3.add_child(book, "author");
        assert!(matches!(
            validate(&doc3, &dtd),
            Err(ValidationError::MissingAttribute { .. })
        ));
    }
}
