//! The DTD graph and the structural analyses built on it.
//!
//! The DTD graph `G_D` has the element types as vertices and an edge `(A, B)` whenever
//! `B` occurs in `P(A)` (Section 2.1 / proof of Theorem 4.1).  On top of it we compute:
//!
//! * recursion (cycle) detection — a DTD is *recursive* iff `G_D` has a cycle;
//! * reachability between element types — the `reach(↓*, A)` sets of Theorem 4.1;
//! * *terminating* types — types that derive at least one finite tree; the paper assumes
//!   all types terminating and notes the check reduces to CFG emptiness;
//! * minimal derivation heights and, for nonrecursive DTDs, the depth bound `|D|` used
//!   by Proposition 6.1.
//!
//! The graph is stored densely: vertices are interned [`Sym`] ids, adjacency is a
//! `Vec<Vec<Sym>>` and the full reachability closure is precomputed as one [`BitSet`]
//! row per vertex at construction time.  Recursion and the depth bound are likewise
//! computed once, so every per-query question ("does `A` reach `B`?", "is the DTD
//! recursive?") is an O(1) bit test instead of a fresh BFS.  The `&str`-based methods
//! are kept as a compatibility veneer over the dense core.

use crate::dtd::Dtd;
use crate::symbols::{Sym, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use xpsat_automata::BitSet;

/// The dependency graph of a DTD together with cached analyses.
#[derive(Debug, Clone)]
pub struct DtdGraph {
    symbols: SymbolTable,
    root: Sym,
    /// `succ[v]` lists the direct successors of `v`, sorted and deduplicated.
    succ: Vec<Vec<Sym>>,
    /// `succ_bits[v]` is the same set as a bitset row.
    succ_bits: Vec<BitSet>,
    /// `reach[v]` is the set of vertices reachable from `v` via one or more edges.
    reach: Vec<BitSet>,
    recursive: bool,
    depth_bound: Option<usize>,
}

impl DtdGraph {
    /// Build the graph of a DTD, including its reachability closure.
    pub fn new(dtd: &Dtd) -> DtdGraph {
        // Vertices: every declared type plus every name referenced in a content model,
        // interned in sorted order so ids are deterministic.
        let mut names: BTreeSet<String> = dtd.element_names().into_iter().collect();
        for (_, decl) in dtd.elements() {
            names.extend(decl.content.symbols());
        }
        let mut symbols = SymbolTable::new();
        for name in &names {
            symbols.intern(name);
        }
        let root = symbols
            .lookup(dtd.root())
            .expect("the root type is always declared");

        let n = symbols.len();
        let mut succ: Vec<Vec<Sym>> = vec![Vec::new(); n];
        for (name, decl) in dtd.elements() {
            let v = symbols.lookup(name).expect("declared types are interned");
            let targets: BTreeSet<String> = decl.content.symbols().into_iter().collect();
            succ[v.index()] = targets
                .iter()
                .map(|t| symbols.lookup(t).expect("referenced types are interned"))
                .collect();
        }
        let succ_bits: Vec<BitSet> = succ
            .iter()
            .map(|row| row.iter().map(|s| s.index()).collect())
            .collect();

        // Reachability closure: one BFS per vertex over the dense adjacency.
        let mut reach: Vec<BitSet> = Vec::with_capacity(n);
        for v in 0..n {
            let mut seen = BitSet::with_capacity(n);
            let mut queue: VecDeque<usize> = succ[v].iter().map(|s| s.index()).collect();
            for s in &succ[v] {
                seen.insert(s.index());
            }
            while let Some(t) = queue.pop_front() {
                for s in &succ[t] {
                    if seen.insert(s.index()) {
                        queue.push_back(s.index());
                    }
                }
            }
            reach.push(seen);
        }
        let recursive = (0..n).any(|v| reach[v].contains(v));
        let depth_bound = if recursive {
            None
        } else {
            // Longest path from the root in a DAG by memoised DFS.
            fn longest(succ: &[Vec<Sym>], v: usize, memo: &mut [Option<usize>]) -> usize {
                if let Some(d) = memo[v] {
                    return d;
                }
                let best = succ[v]
                    .iter()
                    .map(|s| 1 + longest(succ, s.index(), memo))
                    .max()
                    .unwrap_or(0);
                memo[v] = Some(best);
                best
            }
            let mut memo = vec![None; n];
            Some(longest(&succ, root.index(), &mut memo))
        };

        DtdGraph {
            symbols,
            root,
            succ,
            succ_bits,
            reach,
            recursive,
            depth_bound,
        }
    }

    // ---- dense (Sym) interface --------------------------------------------------

    /// The interner mapping element-type names to graph vertices.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The vertex of the root type.
    pub fn root_sym(&self) -> Sym {
        self.root
    }

    /// Number of vertices.
    pub fn num_types(&self) -> usize {
        self.succ.len()
    }

    /// The vertex of a name, if the graph knows it.
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.symbols.lookup(name)
    }

    /// The name of a vertex.
    pub fn name(&self, sym: Sym) -> &str {
        self.symbols.name(sym)
    }

    /// Direct successors of `v`, sorted.
    pub fn succ_syms(&self, v: Sym) -> &[Sym] {
        &self.succ[v.index()]
    }

    /// Direct successors of `v` as a bitset row.
    pub fn succ_bits(&self, v: Sym) -> &BitSet {
        &self.succ_bits[v.index()]
    }

    /// Is there an edge `a → b` (does `b` occur in `P(a)`)?
    pub fn has_edge(&self, a: Sym, b: Sym) -> bool {
        self.succ_bits[a.index()].contains(b.index())
    }

    /// The precomputed closure row of `v`: everything reachable via one or more edges.
    pub fn reach_bits(&self, v: Sym) -> &BitSet {
        &self.reach[v.index()]
    }

    /// Does `a` reach `b` via one or more edges?
    pub fn reaches(&self, a: Sym, b: Sym) -> bool {
        self.reach[a.index()].contains(b.index())
    }

    // ---- string compatibility veneer --------------------------------------------

    /// The element types `B` with an edge `A → B` (i.e. `B` occurs in `P(A)`).
    pub fn successors(&self, name: &str) -> BTreeSet<String> {
        match self.symbols.lookup(name) {
            Some(v) => self
                .succ_syms(v)
                .iter()
                .map(|s| self.symbols.name(*s).to_string())
                .collect(),
            None => BTreeSet::new(),
        }
    }

    /// All element types reachable from `from` by one or more edges (proper descendants
    /// in the type graph).
    pub fn reachable_from(&self, from: &str) -> BTreeSet<String> {
        match self.symbols.lookup(from) {
            Some(v) => self
                .reach_bits(v)
                .iter()
                .map(|i| self.symbols.name(Sym::from_index(i)).to_string())
                .collect(),
            None => BTreeSet::new(),
        }
    }

    /// All element types reachable from the root (including the root itself).
    pub fn reachable_from_root(&self) -> BTreeSet<String> {
        let mut out = self.reachable_from(self.symbols.name(self.root));
        out.insert(self.symbols.name(self.root).to_string());
        out
    }

    /// Is the DTD recursive, i.e. does the graph contain a cycle?  Precomputed.
    pub fn is_recursive(&self) -> bool {
        self.recursive
    }

    /// The length of the longest simple path from the root, for nonrecursive DTDs.
    ///
    /// Documents of a nonrecursive DTD have depth at most this bound; `None` when the
    /// DTD is recursive (no bound exists).  Precomputed.
    pub fn depth_bound(&self) -> Option<usize> {
        self.depth_bound
    }
}

/// The set of *terminating* element types of a DTD: types `A` for which some finite tree
/// rooted at an `A` element conforms to the DTD.
///
/// Computed as a least fixpoint: `A` is terminating as soon as `L(P(A))` contains a word
/// all of whose symbols are already known to be terminating.  This is the reduction to
/// context-free-grammar emptiness mentioned in Section 2.1.
pub fn terminating_types(dtd: &Dtd) -> BTreeSet<String> {
    let mut terminating: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (name, decl) in dtd.elements() {
            if terminating.contains(name) {
                continue;
            }
            let restricted = decl.content.restrict(&|s| terminating.contains(s));
            if !restricted.is_empty_language() {
                terminating.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            return terminating;
        }
    }
}

/// Minimal achievable subtree height per terminating element type: a leaf-only expansion
/// has height 1.  Used by the tree generator to steer expansions towards termination.
pub fn minimal_heights(dtd: &Dtd) -> BTreeMap<String, usize> {
    let mut heights: BTreeMap<String, usize> = BTreeMap::new();
    loop {
        let mut changed = false;
        for (name, decl) in dtd.elements() {
            if heights.contains_key(name) {
                continue;
            }
            // The type becomes rankable once its content model has a word over
            // already-ranked types; its minimal height is then 1 + the smallest bound h
            // such that the content model restricted to types of height ≤ h is nonempty
            // (0 when the content model is nullable).
            let restricted = decl.content.restrict(&|s| heights.contains_key(s));
            if !restricted.is_empty_language() {
                let children_bound = if restricted.nullable() {
                    0
                } else {
                    let mut candidates: Vec<usize> = decl
                        .content
                        .symbols()
                        .iter()
                        .filter_map(|s| heights.get(s))
                        .copied()
                        .collect();
                    candidates.sort_unstable();
                    candidates.dedup();
                    candidates
                        .into_iter()
                        .find(|&h| {
                            !decl
                                .content
                                .restrict(&|s| heights.get(s).is_some_and(|&hs| hs <= h))
                                .is_empty_language()
                        })
                        .unwrap_or(0)
                };
                heights.insert(name.clone(), 1 + children_bound);
                changed = true;
            }
        }
        if !changed {
            return heights;
        }
    }
}

/// Remove non-terminating element types from a DTD: their occurrences are erased from
/// every content model (replaced by the empty language), and the types are dropped.
///
/// The paper assumes all element types are terminating "to simplify the discussion";
/// this function enforces that assumption.  Returns `None` when the root itself is
/// non-terminating (the DTD then has no conforming document at all).
pub fn prune_nonterminating(dtd: &Dtd) -> Option<Dtd> {
    let terminating = terminating_types(dtd);
    if !terminating.contains(dtd.root()) {
        return None;
    }
    let mut pruned = Dtd::new(dtd.root().to_string());
    for (name, decl) in dtd.elements() {
        if !terminating.contains(name) {
            continue;
        }
        let content = decl.content.restrict(&|s| terminating.contains(s));
        pruned.define(name.clone(), content);
        pruned.add_attributes(name.clone(), decl.attributes.iter().cloned());
    }
    Some(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;

    #[test]
    fn recursion_detection() {
        let recursive = parse_dtd("r -> c; c -> (c, x)?; x -> #;").unwrap();
        assert!(DtdGraph::new(&recursive).is_recursive());
        let flat = parse_dtd("r -> a, b; a -> c; b -> #; c -> #;").unwrap();
        let graph = DtdGraph::new(&flat);
        assert!(!graph.is_recursive());
        assert_eq!(graph.depth_bound(), Some(2));
    }

    #[test]
    fn reachability() {
        let dtd = parse_dtd("r -> a; a -> b*; b -> #; z -> a;").unwrap();
        let graph = DtdGraph::new(&dtd);
        let from_root = graph.reachable_from_root();
        assert!(from_root.contains("a") && from_root.contains("b"));
        assert!(!from_root.contains("z"));
        assert_eq!(
            graph.successors("a").into_iter().collect::<Vec<_>>(),
            vec!["b"]
        );
    }

    #[test]
    fn dense_interface_agrees_with_string_interface() {
        let dtd = parse_dtd("r -> a, b; a -> c*; b -> a?; c -> #; z -> a;").unwrap();
        let graph = DtdGraph::new(&dtd);
        for name in dtd.element_names() {
            let v = graph.sym(&name).unwrap();
            assert_eq!(graph.name(v), name);
            let dense_succ: BTreeSet<String> = graph
                .succ_syms(v)
                .iter()
                .map(|s| graph.name(*s).to_string())
                .collect();
            assert_eq!(dense_succ, graph.successors(&name));
            let dense_reach: BTreeSet<String> = graph
                .reach_bits(v)
                .iter()
                .map(|i| graph.name(Sym::from_index(i)).to_string())
                .collect();
            assert_eq!(dense_reach, graph.reachable_from(&name));
            for other in dtd.element_names() {
                let w = graph.sym(&other).unwrap();
                assert_eq!(
                    graph.has_edge(v, w),
                    graph.successors(&name).contains(&other)
                );
                assert_eq!(
                    graph.reaches(v, w),
                    graph.reachable_from(&name).contains(&other)
                );
            }
        }
        assert_eq!(graph.name(graph.root_sym()), "r");
        assert!(graph.sym("nonexistent").is_none());
        assert!(graph.successors("nonexistent").is_empty());
        assert!(graph.reachable_from("nonexistent").is_empty());
    }

    #[test]
    fn terminating_analysis() {
        // b is non-terminating: it always requires another b.
        let dtd = parse_dtd("r -> a | b; a -> #; b -> b;").unwrap();
        let term = terminating_types(&dtd);
        assert!(term.contains("r") && term.contains("a"));
        assert!(!term.contains("b"));

        let pruned = prune_nonterminating(&dtd).unwrap();
        assert!(!pruned.contains("b"));
        // r's content is now effectively just `a`.
        assert!(pruned.content("r").unwrap().matches(&["a".into()]));
        assert!(!pruned.content("r").unwrap().matches(&["b".into()]));
    }

    #[test]
    fn nonterminating_root_yields_none() {
        let dtd = parse_dtd("r -> r;").unwrap();
        assert!(prune_nonterminating(&dtd).is_none());
    }

    #[test]
    fn minimal_heights_reflect_structure() {
        let dtd = parse_dtd("r -> a; a -> b; b -> #;").unwrap();
        let heights = minimal_heights(&dtd);
        assert_eq!(heights["b"], 1);
        assert_eq!(heights["a"], 2);
        assert_eq!(heights["r"], 3);
    }

    #[test]
    fn recursive_dtd_with_escape_has_finite_heights() {
        let dtd = parse_dtd("r -> c; c -> (c, x) | #; x -> #;").unwrap();
        let heights = minimal_heights(&dtd);
        assert_eq!(heights["c"], 1);
        assert_eq!(heights["r"], 2);
        assert!(DtdGraph::new(&dtd).is_recursive());
        assert_eq!(DtdGraph::new(&dtd).depth_bound(), None);
    }
}
