//! The DTD graph and the structural analyses built on it.
//!
//! The DTD graph `G_D` has the element types as vertices and an edge `(A, B)` whenever
//! `B` occurs in `P(A)` (Section 2.1 / proof of Theorem 4.1).  On top of it we compute:
//!
//! * recursion (cycle) detection — a DTD is *recursive* iff `G_D` has a cycle;
//! * reachability between element types — the `reach(↓*, A)` sets of Theorem 4.1;
//! * *terminating* types — types that derive at least one finite tree; the paper assumes
//!   all types terminating and notes the check reduces to CFG emptiness;
//! * minimal derivation heights and, for nonrecursive DTDs, the depth bound `|D|` used
//!   by Proposition 6.1.

use crate::dtd::Dtd;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The dependency graph of a DTD together with cached analyses.
#[derive(Debug, Clone)]
pub struct DtdGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
    root: String,
}

impl DtdGraph {
    /// Build the graph of a DTD.
    pub fn new(dtd: &Dtd) -> DtdGraph {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (name, decl) in dtd.elements() {
            let targets: BTreeSet<String> = decl.content.symbols().into_iter().collect();
            edges.insert(name.clone(), targets);
        }
        DtdGraph {
            edges,
            root: dtd.root().to_string(),
        }
    }

    /// The element types `B` with an edge `A → B` (i.e. `B` occurs in `P(A)`).
    pub fn successors(&self, name: &str) -> BTreeSet<String> {
        self.edges.get(name).cloned().unwrap_or_default()
    }

    /// All element types reachable from `from` by one or more edges (proper descendants
    /// in the type graph).
    pub fn reachable_from(&self, from: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<String> = self.successors(from).into_iter().collect();
        while let Some(t) = queue.pop_front() {
            if seen.insert(t.clone()) {
                queue.extend(self.successors(&t));
            }
        }
        seen
    }

    /// All element types reachable from the root (including the root itself).
    pub fn reachable_from_root(&self) -> BTreeSet<String> {
        let mut out = self.reachable_from(&self.root);
        out.insert(self.root.clone());
        out
    }

    /// Is the DTD recursive, i.e. does the graph contain a cycle?
    pub fn is_recursive(&self) -> bool {
        // A cycle exists iff some type is reachable from itself.
        self.edges
            .keys()
            .any(|name| self.reachable_from(name).contains(name))
    }

    /// The length of the longest simple path from the root, for nonrecursive DTDs.
    ///
    /// Documents of a nonrecursive DTD have depth at most this bound; `None` when the
    /// DTD is recursive (no bound exists).
    pub fn depth_bound(&self) -> Option<usize> {
        if self.is_recursive() {
            return None;
        }
        // Longest path in a DAG by memoised DFS.
        fn longest(graph: &DtdGraph, node: &str, memo: &mut BTreeMap<String, usize>) -> usize {
            if let Some(&d) = memo.get(node) {
                return d;
            }
            let best = graph
                .successors(node)
                .iter()
                .map(|s| 1 + longest(graph, s, memo))
                .max()
                .unwrap_or(0);
            memo.insert(node.to_string(), best);
            best
        }
        let mut memo = BTreeMap::new();
        Some(longest(self, &self.root, &mut memo))
    }
}

/// The set of *terminating* element types of a DTD: types `A` for which some finite tree
/// rooted at an `A` element conforms to the DTD.
///
/// Computed as a least fixpoint: `A` is terminating as soon as `L(P(A))` contains a word
/// all of whose symbols are already known to be terminating.  This is the reduction to
/// context-free-grammar emptiness mentioned in Section 2.1.
pub fn terminating_types(dtd: &Dtd) -> BTreeSet<String> {
    let mut terminating: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (name, decl) in dtd.elements() {
            if terminating.contains(name) {
                continue;
            }
            let restricted = decl.content.restrict(&|s| terminating.contains(s));
            if !restricted.is_empty_language() {
                terminating.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            return terminating;
        }
    }
}

/// Minimal achievable subtree height per terminating element type: a leaf-only expansion
/// has height 1.  Used by the tree generator to steer expansions towards termination.
pub fn minimal_heights(dtd: &Dtd) -> BTreeMap<String, usize> {
    let mut heights: BTreeMap<String, usize> = BTreeMap::new();
    loop {
        let mut changed = false;
        for (name, decl) in dtd.elements() {
            if heights.contains_key(name) {
                continue;
            }
            // The type becomes rankable once its content model has a word over
            // already-ranked types; its minimal height is then 1 + the smallest bound h
            // such that the content model restricted to types of height ≤ h is nonempty
            // (0 when the content model is nullable).
            let restricted = decl.content.restrict(&|s| heights.contains_key(s));
            if !restricted.is_empty_language() {
                let children_bound = if restricted.nullable() {
                    0
                } else {
                    let mut candidates: Vec<usize> = decl
                        .content
                        .symbols()
                        .iter()
                        .filter_map(|s| heights.get(s))
                        .copied()
                        .collect();
                    candidates.sort_unstable();
                    candidates.dedup();
                    candidates
                        .into_iter()
                        .find(|&h| {
                            !decl
                                .content
                                .restrict(&|s| heights.get(s).is_some_and(|&hs| hs <= h))
                                .is_empty_language()
                        })
                        .unwrap_or(0)
                };
                heights.insert(name.clone(), 1 + children_bound);
                changed = true;
            }
        }
        if !changed {
            return heights;
        }
    }
}

/// Remove non-terminating element types from a DTD: their occurrences are erased from
/// every content model (replaced by the empty language), and the types are dropped.
///
/// The paper assumes all element types are terminating "to simplify the discussion";
/// this function enforces that assumption.  Returns `None` when the root itself is
/// non-terminating (the DTD then has no conforming document at all).
pub fn prune_nonterminating(dtd: &Dtd) -> Option<Dtd> {
    let terminating = terminating_types(dtd);
    if !terminating.contains(dtd.root()) {
        return None;
    }
    let mut pruned = Dtd::new(dtd.root().to_string());
    for (name, decl) in dtd.elements() {
        if !terminating.contains(name) {
            continue;
        }
        let content = decl.content.restrict(&|s| terminating.contains(s));
        pruned.define(name.clone(), content);
        pruned.add_attributes(name.clone(), decl.attributes.iter().cloned());
    }
    Some(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;

    #[test]
    fn recursion_detection() {
        let recursive = parse_dtd("r -> c; c -> (c, x)?; x -> #;").unwrap();
        assert!(DtdGraph::new(&recursive).is_recursive());
        let flat = parse_dtd("r -> a, b; a -> c; b -> #; c -> #;").unwrap();
        let graph = DtdGraph::new(&flat);
        assert!(!graph.is_recursive());
        assert_eq!(graph.depth_bound(), Some(2));
    }

    #[test]
    fn reachability() {
        let dtd = parse_dtd("r -> a; a -> b*; b -> #; z -> a;").unwrap();
        let graph = DtdGraph::new(&dtd);
        let from_root = graph.reachable_from_root();
        assert!(from_root.contains("a") && from_root.contains("b"));
        assert!(!from_root.contains("z"));
        assert_eq!(
            graph.successors("a").into_iter().collect::<Vec<_>>(),
            vec!["b"]
        );
    }

    #[test]
    fn terminating_analysis() {
        // b is non-terminating: it always requires another b.
        let dtd = parse_dtd("r -> a | b; a -> #; b -> b;").unwrap();
        let term = terminating_types(&dtd);
        assert!(term.contains("r") && term.contains("a"));
        assert!(!term.contains("b"));

        let pruned = prune_nonterminating(&dtd).unwrap();
        assert!(!pruned.contains("b"));
        // r's content is now effectively just `a`.
        assert!(pruned.content("r").unwrap().matches(&["a".into()]));
        assert!(!pruned.content("r").unwrap().matches(&["b".into()]));
    }

    #[test]
    fn nonterminating_root_yields_none() {
        let dtd = parse_dtd("r -> r;").unwrap();
        assert!(prune_nonterminating(&dtd).is_none());
    }

    #[test]
    fn minimal_heights_reflect_structure() {
        let dtd = parse_dtd("r -> a; a -> b; b -> #;").unwrap();
        let heights = minimal_heights(&dtd);
        assert_eq!(heights["b"], 1);
        assert_eq!(heights["a"], 2);
        assert_eq!(heights["r"], 3);
    }

    #[test]
    fn recursive_dtd_with_escape_has_finite_heights() {
        let dtd = parse_dtd("r -> c; c -> (c, x) | #; x -> #;").unwrap();
        let heights = minimal_heights(&dtd);
        assert_eq!(heights["c"], 1);
        assert_eq!(heights["r"], 2);
        assert!(DtdGraph::new(&dtd).is_recursive());
        assert_eq!(DtdGraph::new(&dtd).depth_bound(), None);
    }
}
