//! The "universal" DTD `D_p` of Proposition 3.1.
//!
//! Satisfiability in the *absence* of DTDs reduces to satisfiability under a DTD of the
//! form `D_p`: its element types are the labels mentioned in the query plus one fresh
//! label `X`, every production is `A → (A1 + … + An)*` over all element types, every
//! type carries every mentioned attribute, and the root ranges over the element types.
//! A query is satisfiable by *some* tree iff it is satisfiable under one of the |Ele_p|
//! many choices of root (the reduction in `xpsat-core::transform::no_dtd` tries them
//! all).

use crate::dtd::Dtd;
use std::collections::BTreeSet;
use xpsat_automata::Regex;

/// The label used for "any element type not mentioned in the query".
pub const EXTRA_LABEL: &str = "_any";

/// Build the universal DTD over the given labels and attributes, rooted at `root`.
///
/// Every element type may have arbitrarily many children of every type, and carries all
/// of the given attributes.  `root` is added to the label set if missing; the fresh
/// label [`EXTRA_LABEL`] is always added.
pub fn universal_dtd<L, A>(labels: L, attributes: A, root: &str) -> Dtd
where
    L: IntoIterator<Item = String>,
    A: IntoIterator<Item = String>,
{
    let mut all_labels: BTreeSet<String> = labels.into_iter().collect();
    all_labels.insert(root.to_string());
    all_labels.insert(EXTRA_LABEL.to_string());
    let attributes: BTreeSet<String> = attributes.into_iter().collect();

    let any_child = Regex::star(Regex::alt(
        all_labels.iter().cloned().map(Regex::Sym).collect(),
    ));

    let mut dtd = Dtd::new(root);
    for label in &all_labels {
        dtd.define(label.clone(), any_child.clone());
        dtd.add_attributes(label.clone(), attributes.iter().cloned());
    }
    dtd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use xpsat_xmltree::Document;

    #[test]
    fn universal_dtd_accepts_arbitrary_trees_over_its_labels() {
        let dtd = universal_dtd(["a".to_string(), "b".to_string()], ["id".to_string()], "a");
        assert!(dtd.contains(EXTRA_LABEL));

        let mut doc = Document::new("a");
        let b = doc.add_child(doc.root(), "b");
        let any = doc.add_child(b, EXTRA_LABEL);
        doc.add_child(any, "a");
        for node in doc.all_nodes() {
            doc.set_attr(node, "id", "x");
        }
        assert_eq!(validate(&doc, &dtd), Ok(()));
    }

    #[test]
    fn wrong_root_is_still_rejected() {
        let dtd = universal_dtd(["a".to_string()], [], "a");
        let doc = Document::new(EXTRA_LABEL);
        assert!(validate(&doc, &dtd).is_err());
    }
}
