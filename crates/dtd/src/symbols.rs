//! Interned symbols: dense `u32` ids for element-type and attribute names.
//!
//! Every per-query algorithm in the paper runs over structures whose vertices are the
//! element types of one fixed DTD.  Keying those structures by `String` makes each
//! lookup a hash/compare over the name bytes and each set a `BTreeSet<String>`;
//! interning the names once per DTD turns them into dense `Sym(u32)` ids, so adjacency
//! becomes `Vec<Vec<Sym>>`, type sets become bitsets and the hot paths never touch a
//! string again.  Names are interned in sorted order, which keeps the ids (and thus
//! every downstream iteration order) deterministic run-to-run.

use std::collections::HashMap;
use std::fmt;

/// An interned name: a dense index into the owning [`SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense index (usable directly as a `Vec` index).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a symbol from an index obtained through [`Sym::index`].
    pub fn from_index(index: usize) -> Sym {
        Sym(u32::try_from(index).expect("symbol index fits in u32"))
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A bidirectional map between names and dense [`Sym`] ids.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol count fits in u32"));
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), sym);
        sym
    }

    /// The id of `name`, if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The name behind an id.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_stable() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let b = table.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(table.intern("a"), a);
        assert_eq!(table.len(), 2);
        assert_eq!(table.name(a), "a");
        assert_eq!(table.lookup("b"), Some(b));
        assert_eq!(table.lookup("zzz"), None);
        assert_eq!(Sym::from_index(a.index()), a);
    }

    #[test]
    fn iteration_follows_id_order() {
        let mut table = SymbolTable::new();
        for name in ["r", "a", "m"] {
            table.intern(name);
        }
        let names: Vec<&str> = table.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["r", "a", "m"]);
        let ids: Vec<usize> = table.iter().map(|(s, _)| s.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
