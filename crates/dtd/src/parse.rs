//! Textual syntax for DTDs.
//!
//! The syntax is a compact equivalent of `<!ELEMENT …>` / `<!ATTLIST …>` declarations:
//!
//! ```text
//! root store;
//! store -> (book | magazine)*;
//! book  -> title, author+, price?;
//! title -> #;                       // '#' is the empty content model ε
//! magazine -> #;
//! author -> #; price -> #;
//! @book: isbn, year;                // attribute declarations
//! ```
//!
//! * declarations are separated by `;`, `//` starts a line comment;
//! * the first `name -> …` declaration is the root unless an explicit `root name;` is
//!   given;
//! * content models use `,` (concatenation), `|` (disjunction), `*`, `+`, `?`, `#`
//!   (epsilon) and parentheses.

use crate::dtd::Dtd;
use crate::ContentModel;
use std::fmt;
use xpsat_automata::Regex;

/// A byte range into the source text an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub offset: usize,
    /// Length in bytes of the offending region.
    pub len: usize,
}

impl Span {
    /// A span covering `len` bytes starting at `offset`.
    pub fn new(offset: usize, len: usize) -> Span {
        Span { offset, len }
    }
}

/// Error raised by [`parse_dtd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte range of the offending input.
    pub span: Span,
}

impl fmt::Display for DtdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DTD parse error at byte {}: {}",
            self.span.offset, self.message
        )
    }
}

impl std::error::Error for DtdParseError {}

/// Resource limits applied while parsing untrusted DTD text.
///
/// `max_elements` caps the number of element types (declared plus auto-declared
/// leaves) — every downstream artifact (symbol table, automata, solver state) scales
/// with it, so the cap is the admission control for the whole pipeline.  `max_depth`
/// caps content-model parenthesis nesting, which otherwise maps straight onto native
/// stack depth in the recursive-descent content parser and in every later recursion
/// over the [`Regex`] tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtdParseLimits {
    /// Maximum number of element types (declared or referenced).
    pub max_elements: usize,
    /// Maximum content-model nesting depth.
    pub max_depth: usize,
    /// Maximum number of tokens in one content model.
    pub max_tokens: usize,
}

impl Default for DtdParseLimits {
    fn default() -> DtdParseLimits {
        DtdParseLimits {
            max_elements: 4096,
            max_depth: 64,
            max_tokens: 1 << 20,
        }
    }
}

/// Parse the textual DTD syntax described in the module documentation, with default
/// [`DtdParseLimits`].
pub fn parse_dtd(input: &str) -> Result<Dtd, DtdParseError> {
    parse_dtd_with_limits(input, &DtdParseLimits::default())
}

/// Parse the textual DTD syntax under explicit resource limits.
pub fn parse_dtd_with_limits(input: &str, limits: &DtdParseLimits) -> Result<Dtd, DtdParseError> {
    // Blank out `//` comments in place (same byte length) so every span below is an
    // offset into the caller's original text.
    let mut cleaned = input.as_bytes().to_vec();
    let mut i = 0;
    while i < cleaned.len() {
        if cleaned[i] == b'/' && cleaned.get(i + 1) == Some(&b'/') {
            while i < cleaned.len() && cleaned[i] != b'\n' {
                cleaned[i] = b' ';
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    let cleaned = String::from_utf8(cleaned).expect("only ASCII bytes were replaced");

    let mut root: Option<String> = None;
    let mut decls: Vec<(String, ContentModel)> = Vec::new();
    let mut attrs: Vec<(String, Vec<String>, Span)> = Vec::new();

    let mut cursor = 0;
    for raw in cleaned.split(';') {
        let raw_start = cursor;
        cursor += raw.len() + 1; // account for the consumed `;`
        let decl = raw.trim();
        if decl.is_empty() {
            continue;
        }
        let decl_start = raw_start + (raw.len() - raw.trim_start().len());
        let decl_span = Span::new(decl_start, decl.len());
        if let Some(rest) = decl.strip_prefix("root ") {
            root = Some(rest.trim().to_string());
        } else if let Some(rest) = decl.strip_prefix('@') {
            let (name, list) = rest.split_once(':').ok_or_else(|| DtdParseError {
                message: format!("attribute declaration without ':' in `{decl}`"),
                span: decl_span,
            })?;
            let names = list
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            attrs.push((name.trim().to_string(), names, decl_span));
        } else {
            let (name, body) = decl.split_once("->").ok_or_else(|| DtdParseError {
                message: format!("element declaration without '->' in `{decl}`"),
                span: decl_span,
            })?;
            if decls.len() >= limits.max_elements {
                return Err(DtdParseError {
                    message: format!(
                        "DTD exceeds the element-type limit ({} element types)",
                        limits.max_elements
                    ),
                    span: decl_span,
                });
            }
            let body_trimmed = body.trim();
            let body_offset =
                decl_start + (decl.len() - body.len()) + (body.len() - body.trim_start().len());
            let content = parse_content_at(body_trimmed, body_offset, limits)?;
            decls.push((name.trim().to_string(), content));
        }
    }

    let root = root
        .or_else(|| decls.first().map(|(n, _)| n.clone()))
        .ok_or_else(|| DtdParseError {
            message: "empty DTD: no declarations found".into(),
            span: Span::new(0, input.len()),
        })?;

    let mut dtd = Dtd::new(root);
    for (name, content) in decls {
        dtd.define(name, content);
    }
    for (name, list, span) in attrs {
        if !dtd.contains(&name) {
            return Err(DtdParseError {
                message: format!("attributes declared for unknown element type `{name}`"),
                span,
            });
        }
        dtd.add_attributes(name, list);
    }
    // Auto-declare referenced-but-undefined element types with empty content, mirroring
    // the convention used throughout the paper's examples (leaf types are often left
    // implicit).  Auto-declared leaves count against the element budget too: they grow
    // the symbol table and every per-DTD artifact just like explicit declarations.
    let missing = dtd.undeclared_references();
    if dtd.elements().count() + missing.len() > limits.max_elements {
        return Err(DtdParseError {
            message: format!(
                "DTD exceeds the element-type limit ({} element types including \
                 auto-declared leaves)",
                limits.max_elements
            ),
            span: Span::new(0, input.len()),
        });
    }
    for missing in missing {
        dtd.declare_empty(missing);
    }
    Ok(dtd)
}

/// Parse a content-model expression (spans are relative to `input`).
pub fn parse_content(input: &str) -> Result<ContentModel, DtdParseError> {
    parse_content_at(input, 0, &DtdParseLimits::default())
}

/// Parse a content-model expression whose text starts at byte `base` of the enclosing
/// document; spans on errors are absolute.
fn parse_content_at(
    input: &str,
    base: usize,
    limits: &DtdParseLimits,
) -> Result<ContentModel, DtdParseError> {
    let tokens = tokenize(input, base, limits)?;
    let end = Span::new(base + input.len(), 0);
    let mut p = ContentParser {
        tokens,
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
        end,
    };
    let re = p.alternation()?;
    if p.pos != p.tokens.len() {
        return Err(DtdParseError {
            message: format!("trailing tokens in content model `{input}`"),
            span: p.span_here(),
        });
    }
    Ok(re)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    Comma,
    Pipe,
    Star,
    Plus,
    Question,
    Hash,
    LParen,
    RParen,
}

fn tokenize(
    input: &str,
    base: usize,
    limits: &DtdParseLimits,
) -> Result<Vec<(Tok, Span)>, DtdParseError> {
    let mut out: Vec<(Tok, Span)> = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if out.len() >= limits.max_tokens {
            return Err(DtdParseError {
                message: format!(
                    "content model exceeds the token budget ({} tokens)",
                    limits.max_tokens
                ),
                span: Span::new(base + i, 1),
            });
        }
        let start = i;
        let token = match bytes[i] {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b',' => {
                i += 1;
                Tok::Comma
            }
            b'|' => {
                i += 1;
                Tok::Pipe
            }
            b'*' => {
                i += 1;
                Tok::Star
            }
            b'+' => {
                i += 1;
                Tok::Plus
            }
            b'?' => {
                i += 1;
                Tok::Question
            }
            b'#' => {
                i += 1;
                Tok::Hash
            }
            b'(' => {
                i += 1;
                Tok::LParen
            }
            b')' => {
                i += 1;
                Tok::RParen
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let name = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                if name == "EMPTY" {
                    Tok::Hash
                } else {
                    Tok::Name(name)
                }
            }
            c => {
                return Err(DtdParseError {
                    message: format!("unexpected character `{}` in content model", c as char),
                    span: Span::new(base + i, 1),
                })
            }
        };
        out.push((token, Span::new(base + start, i - start)));
    }
    Ok(out)
}

struct ContentParser {
    tokens: Vec<(Tok, Span)>,
    pos: usize,
    depth: usize,
    max_depth: usize,
    /// Zero-length span just past the content model, for end-of-input errors.
    end: Span,
}

impl ContentParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// The span of the token at `pos`, or the end-of-input span.
    fn span_here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|(_, s)| *s)
            .unwrap_or(self.end)
    }

    fn alternation(&mut self) -> Result<ContentModel, DtdParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            let err = DtdParseError {
                message: format!(
                    "content model nesting exceeds the depth limit ({})",
                    self.max_depth
                ),
                span: self.span_here(),
            };
            self.depth -= 1;
            return Err(err);
        }
        let result = self.alternation_inner();
        self.depth -= 1;
        result
    }

    fn alternation_inner(&mut self) -> Result<ContentModel, DtdParseError> {
        let mut parts = vec![self.concatenation()?];
        while self.eat(&Tok::Pipe) {
            parts.push(self.concatenation()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::Alt(parts)
        })
    }

    fn concatenation(&mut self) -> Result<ContentModel, DtdParseError> {
        let mut parts = vec![self.repetition()?];
        while self.eat(&Tok::Comma) {
            parts.push(self.repetition()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::Concat(parts)
        })
    }

    fn repetition(&mut self) -> Result<ContentModel, DtdParseError> {
        let mut base = self.atom()?;
        loop {
            if self.eat(&Tok::Star) {
                base = Regex::Star(Box::new(base));
            } else if self.eat(&Tok::Plus) {
                base = Regex::Plus(Box::new(base));
            } else if self.eat(&Tok::Question) {
                base = Regex::Opt(Box::new(base));
            } else {
                break;
            }
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<ContentModel, DtdParseError> {
        match self.peek().cloned() {
            Some(Tok::Name(n)) => {
                self.pos += 1;
                Ok(Regex::Sym(n))
            }
            Some(Tok::Hash) => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.alternation()?;
                if !self.eat(&Tok::RParen) {
                    return Err(DtdParseError {
                        message: "missing closing parenthesis in content model".into(),
                        span: self.span_here(),
                    });
                }
                Ok(inner)
            }
            other => Err(DtdParseError {
                message: format!("expected an element type, '#', or '(': found {other:?}"),
                span: self.span_here(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bookstore_dtd() {
        let dtd = parse_dtd(
            "root store;\n\
             store -> (book | magazine)*;\n\
             book -> title, author+, price?;\n\
             title -> #; author -> #; price -> #; magazine -> #;\n\
             @book: isbn, year;",
        )
        .unwrap();
        assert_eq!(dtd.root(), "store");
        assert!(dtd.contains("book"));
        assert_eq!(dtd.attributes("book").len(), 2);
        let content = dtd.content("book").unwrap();
        assert!(content.matches(&["title".into(), "author".into()]));
        assert!(content.matches(&[
            "title".into(),
            "author".into(),
            "author".into(),
            "price".into()
        ]));
        assert!(!content.matches(&["title".into()]));
    }

    #[test]
    fn first_declaration_is_root_by_default() {
        let dtd = parse_dtd("r -> a, b; a -> #; b -> #;").unwrap();
        assert_eq!(dtd.root(), "r");
    }

    #[test]
    fn referenced_types_are_auto_declared() {
        let dtd = parse_dtd("r -> a*;").unwrap();
        assert!(dtd.contains("a"));
        assert_eq!(dtd.content("a"), Some(&Regex::Epsilon));
    }

    #[test]
    fn comments_and_empty_keyword() {
        let dtd = parse_dtd(
            "// the classic 3SAT skeleton\nr -> x1, x2; x1 -> t | f; x2 -> t | f; t -> EMPTY; f -> EMPTY;",
        )
        .unwrap();
        assert!(dtd.content("t").unwrap().nullable());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_dtd("").is_err());
        assert!(parse_dtd("r >> a;").is_err());
        assert!(parse_dtd("r -> (a;").is_err());
        assert!(parse_dtd("r -> a; @ghost: x;").is_err());
    }

    #[test]
    fn errors_carry_spans_into_the_original_text() {
        // The bad token sits after a comment line; spans must still index the caller's
        // original text, comment included.
        let text = "// preamble\nr -> a; a -> (b%c);";
        let err = parse_dtd(text).unwrap_err();
        assert_eq!(&text[err.span.offset..err.span.offset + err.span.len], "%");

        // The unclosed-paren error points at the end of the content model (the `;`).
        let text = "r -> a; a -> (b, c;";
        let err = parse_dtd(text).unwrap_err();
        assert_eq!(err.span.offset, text.len() - 1, "{err:?}");

        let text = "r -> a; @ghost: x;";
        let err = parse_dtd(text).unwrap_err();
        assert_eq!(
            &text[err.span.offset..err.span.offset + err.span.len],
            "@ghost: x"
        );
    }

    #[test]
    fn element_budget_is_enforced() {
        // 10k-element recursive DTD: structured error, not unbounded artifact growth.
        let mut text = String::from("root e0;\n");
        for i in 0..10_000 {
            text.push_str(&format!("e{i} -> e{}?;\n", (i + 1) % 10_000));
        }
        let err = parse_dtd(&text).unwrap_err();
        assert!(err.message.contains("element-type limit"), "{err}");
        assert!(err.span.len > 0);

        // Auto-declared leaves count against the budget too.
        let limits = DtdParseLimits {
            max_elements: 3,
            ..DtdParseLimits::default()
        };
        let err = parse_dtd_with_limits("r -> a, b, c;", &limits).unwrap_err();
        assert!(err.message.contains("element-type limit"), "{err}");
        assert!(parse_dtd_with_limits("r -> a, b;", &limits).is_ok());
    }

    #[test]
    fn content_nesting_depth_is_enforced() {
        let deep = format!("r -> {}a{};", "(".repeat(50_000), ")".repeat(50_000));
        let err = parse_dtd(&deep).unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");

        let ok = format!("r -> {}a{};", "(".repeat(32), ")".repeat(32));
        assert!(parse_dtd(&ok).is_ok());
    }
}
