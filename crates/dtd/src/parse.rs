//! Textual syntax for DTDs.
//!
//! The syntax is a compact equivalent of `<!ELEMENT …>` / `<!ATTLIST …>` declarations:
//!
//! ```text
//! root store;
//! store -> (book | magazine)*;
//! book  -> title, author+, price?;
//! title -> #;                       // '#' is the empty content model ε
//! magazine -> #;
//! author -> #; price -> #;
//! @book: isbn, year;                // attribute declarations
//! ```
//!
//! * declarations are separated by `;`, `//` starts a line comment;
//! * the first `name -> …` declaration is the root unless an explicit `root name;` is
//!   given;
//! * content models use `,` (concatenation), `|` (disjunction), `*`, `+`, `?`, `#`
//!   (epsilon) and parentheses.

use crate::dtd::Dtd;
use crate::ContentModel;
use std::fmt;
use xpsat_automata::Regex;

/// Error raised by [`parse_dtd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdParseError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for DtdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTD parse error: {}", self.message)
    }
}

impl std::error::Error for DtdParseError {}

/// Parse the textual DTD syntax described in the module documentation.
pub fn parse_dtd(input: &str) -> Result<Dtd, DtdParseError> {
    // Strip comments, then split into `;`-separated declarations.
    let mut cleaned = String::new();
    for line in input.lines() {
        let line = match line.find("//") {
            Some(idx) => &line[..idx],
            None => line,
        };
        cleaned.push_str(line);
        cleaned.push('\n');
    }

    let mut root: Option<String> = None;
    let mut decls: Vec<(String, ContentModel)> = Vec::new();
    let mut attrs: Vec<(String, Vec<String>)> = Vec::new();

    for raw in cleaned.split(';') {
        let decl = raw.trim();
        if decl.is_empty() {
            continue;
        }
        if let Some(rest) = decl.strip_prefix("root ") {
            root = Some(rest.trim().to_string());
        } else if let Some(rest) = decl.strip_prefix('@') {
            let (name, list) = rest.split_once(':').ok_or_else(|| DtdParseError {
                message: format!("attribute declaration without ':' in `{decl}`"),
            })?;
            let names = list
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            attrs.push((name.trim().to_string(), names));
        } else {
            let (name, body) = decl.split_once("->").ok_or_else(|| DtdParseError {
                message: format!("element declaration without '->' in `{decl}`"),
            })?;
            let content = parse_content(body.trim())?;
            decls.push((name.trim().to_string(), content));
        }
    }

    let root = root
        .or_else(|| decls.first().map(|(n, _)| n.clone()))
        .ok_or_else(|| DtdParseError {
            message: "empty DTD: no declarations found".into(),
        })?;

    let mut dtd = Dtd::new(root);
    for (name, content) in decls {
        dtd.define(name, content);
    }
    for (name, list) in attrs {
        if !dtd.contains(&name) {
            return Err(DtdParseError {
                message: format!("attributes declared for unknown element type `{name}`"),
            });
        }
        dtd.add_attributes(name, list);
    }
    // Auto-declare referenced-but-undefined element types with empty content, mirroring
    // the convention used throughout the paper's examples (leaf types are often left
    // implicit).
    for missing in dtd.undeclared_references() {
        dtd.declare_empty(missing);
    }
    Ok(dtd)
}

/// Parse a content-model expression.
pub fn parse_content(input: &str) -> Result<ContentModel, DtdParseError> {
    let tokens = tokenize(input)?;
    let mut p = ContentParser { tokens, pos: 0 };
    let re = p.alternation()?;
    if p.pos != p.tokens.len() {
        return Err(DtdParseError {
            message: format!("trailing tokens in content model `{input}`"),
        });
    }
    Ok(re)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    Comma,
    Pipe,
    Star,
    Plus,
    Question,
    Hash,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, DtdParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            b'?' => {
                out.push(Tok::Question);
                i += 1;
            }
            b'#' => {
                out.push(Tok::Hash);
                i += 1;
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let name = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                if name == "EMPTY" {
                    out.push(Tok::Hash);
                } else {
                    out.push(Tok::Name(name));
                }
            }
            c => {
                return Err(DtdParseError {
                    message: format!("unexpected character `{}` in content model", c as char),
                })
            }
        }
    }
    Ok(out)
}

struct ContentParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl ContentParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<ContentModel, DtdParseError> {
        let mut parts = vec![self.concatenation()?];
        while self.eat(&Tok::Pipe) {
            parts.push(self.concatenation()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::Alt(parts)
        })
    }

    fn concatenation(&mut self) -> Result<ContentModel, DtdParseError> {
        let mut parts = vec![self.repetition()?];
        while self.eat(&Tok::Comma) {
            parts.push(self.repetition()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::Concat(parts)
        })
    }

    fn repetition(&mut self) -> Result<ContentModel, DtdParseError> {
        let mut base = self.atom()?;
        loop {
            if self.eat(&Tok::Star) {
                base = Regex::Star(Box::new(base));
            } else if self.eat(&Tok::Plus) {
                base = Regex::Plus(Box::new(base));
            } else if self.eat(&Tok::Question) {
                base = Regex::Opt(Box::new(base));
            } else {
                break;
            }
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<ContentModel, DtdParseError> {
        match self.peek().cloned() {
            Some(Tok::Name(n)) => {
                self.pos += 1;
                Ok(Regex::Sym(n))
            }
            Some(Tok::Hash) => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.alternation()?;
                if !self.eat(&Tok::RParen) {
                    return Err(DtdParseError {
                        message: "missing closing parenthesis in content model".into(),
                    });
                }
                Ok(inner)
            }
            other => Err(DtdParseError {
                message: format!("expected an element type, '#', or '(': found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bookstore_dtd() {
        let dtd = parse_dtd(
            "root store;\n\
             store -> (book | magazine)*;\n\
             book -> title, author+, price?;\n\
             title -> #; author -> #; price -> #; magazine -> #;\n\
             @book: isbn, year;",
        )
        .unwrap();
        assert_eq!(dtd.root(), "store");
        assert!(dtd.contains("book"));
        assert_eq!(dtd.attributes("book").len(), 2);
        let content = dtd.content("book").unwrap();
        assert!(content.matches(&["title".into(), "author".into()]));
        assert!(content.matches(&[
            "title".into(),
            "author".into(),
            "author".into(),
            "price".into()
        ]));
        assert!(!content.matches(&["title".into()]));
    }

    #[test]
    fn first_declaration_is_root_by_default() {
        let dtd = parse_dtd("r -> a, b; a -> #; b -> #;").unwrap();
        assert_eq!(dtd.root(), "r");
    }

    #[test]
    fn referenced_types_are_auto_declared() {
        let dtd = parse_dtd("r -> a*;").unwrap();
        assert!(dtd.contains("a"));
        assert_eq!(dtd.content("a"), Some(&Regex::Epsilon));
    }

    #[test]
    fn comments_and_empty_keyword() {
        let dtd = parse_dtd(
            "// the classic 3SAT skeleton\nr -> x1, x2; x1 -> t | f; x2 -> t | f; t -> EMPTY; f -> EMPTY;",
        )
        .unwrap();
        assert!(dtd.content("t").unwrap().nullable());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_dtd("").is_err());
        assert!(parse_dtd("r >> a;").is_err());
        assert!(parse_dtd("r -> (a;").is_err());
        assert!(parse_dtd("r -> a; @ghost: x;").is_err());
    }
}
