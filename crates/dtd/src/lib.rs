//! Document Type Definitions as defined in Section 2.1 of the paper.
//!
//! A DTD is `(Ele, Att, P, R, r)`: element types, attribute names, a content model
//! (regular expression over `Ele`) per element type, an attribute set per element type,
//! and a root type.  This crate provides:
//!
//! * the [`Dtd`] data type with a builder-style API and a compact textual syntax;
//! * structural analysis — the DTD graph, recursion and disjunction-freeness tests,
//!   terminating-type analysis (the `O(|D|)` emptiness check the paper assumes), depth
//!   bounds for nonrecursive DTDs;
//! * the normalisation `N(D)` of Proposition 3.3;
//! * validation of documents against DTDs (via Glushkov automata of the content models);
//! * generation of minimal and random conforming trees, which the satisfiability
//!   engines use to expand partial witnesses into complete documents;
//! * the "universal" DTD of Proposition 3.1 used to reduce DTD-free satisfiability to
//!   the DTD-aware problem.

pub mod artifacts;
pub mod classify;
pub mod dtd;
pub mod generate;
pub mod graph;
pub mod normalize;
pub mod parse;
pub mod props;
pub mod symbols;
pub mod universal;
pub mod validate;

pub use artifacts::{CompiledDtd, DtdArtifacts, SymNfa};
pub use classify::{classify, DtdClass};
pub use dtd::{Dtd, ElementDecl};
pub use generate::TreeGenerator;
pub use graph::DtdGraph;
pub use normalize::{normalize, Normalization};
pub use parse::{parse_dtd, parse_dtd_with_limits, DtdParseError, DtdParseLimits, Span};
pub use props::DtdProperties;
pub use symbols::{Sym, SymbolTable};
pub use universal::universal_dtd;
pub use validate::{validate, ValidationError};

/// Content models are regular expressions over element-type names.
pub type ContentModel = xpsat_automata::Regex<String>;
