//! Generation of conforming documents: minimal expansions and random sampling.
//!
//! The satisfiability engines build *partial* witness trees (a spine of nodes the query
//! needs) and then expand every node into a full conforming document; the constructions
//! in the proofs of Theorems 4.1 and 4.4 do exactly this ("by using productions of the
//! DTD, we expand the tree into a finite XML tree conforming to D").  [`TreeGenerator`]
//! performs those expansions:
//!
//! * [`TreeGenerator::minimal_tree`] — a smallest-height conforming tree for a type;
//! * [`TreeGenerator::attach_minimal`] — graft such a tree below an existing node;
//! * [`TreeGenerator::random_tree`] — a random conforming document, used by the property
//!   tests and benchmark workloads (depth- and width-bounded so recursion terminates).

use crate::dtd::Dtd;
use crate::graph::{minimal_heights, terminating_types};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use xpsat_automata::{CoverDemand, Nfa};
use xpsat_xmltree::{Document, NodeId};

/// A generator of conforming documents for one DTD.
///
/// Construction precomputes the Glushkov automata of all content models, the set of
/// terminating types and the minimal derivation heights, so repeated expansions are
/// cheap.
#[derive(Debug, Clone)]
pub struct TreeGenerator {
    dtd: Dtd,
    automata: BTreeMap<String, Nfa<String>>,
    terminating: BTreeSet<String>,
    heights: BTreeMap<String, usize>,
}

impl TreeGenerator {
    /// Build a generator for a DTD.
    pub fn new(dtd: &Dtd) -> TreeGenerator {
        let automata = dtd
            .elements()
            .map(|(name, decl)| (name.clone(), Nfa::glushkov(&decl.content)))
            .collect();
        TreeGenerator {
            dtd: dtd.clone(),
            automata,
            terminating: terminating_types(dtd),
            heights: minimal_heights(dtd),
        }
    }

    /// The DTD this generator expands against.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// Is this element type terminating (does it derive any finite tree)?
    pub fn is_terminating(&self, name: &str) -> bool {
        self.terminating.contains(name)
    }

    /// A minimal-height conforming tree rooted at an element of type `label`.
    /// Returns `None` when the type is not terminating (or not declared).
    pub fn minimal_tree(&self, label: &str) -> Option<Document> {
        if !self.terminating.contains(label) {
            return None;
        }
        let mut doc = Document::new(label);
        let root = doc.root();
        self.expand_minimal(&mut doc, root);
        Some(doc)
    }

    /// Graft a minimal conforming subtree of type `label` as the last child of `parent`.
    /// Returns the new child's id, or `None` for non-terminating types.
    pub fn attach_minimal(
        &self,
        doc: &mut Document,
        parent: NodeId,
        label: &str,
    ) -> Option<NodeId> {
        if !self.terminating.contains(label) {
            return None;
        }
        let child = doc.add_child(parent, label);
        self.expand_minimal(doc, child);
        Some(child)
    }

    /// Expand `node` (assumed childless) into a minimal conforming subtree, filling
    /// declared attributes with the placeholder value `"0"`.
    pub fn expand_minimal(&self, doc: &mut Document, node: NodeId) {
        let label = doc.label(node).to_string();
        self.fill_attributes(doc, node, &label);
        let Some(nfa) = self.automata.get(&label) else {
            return;
        };
        let my_height = self.heights.get(&label).copied().unwrap_or(1);
        // Choose the shortest children word over types of strictly smaller minimal
        // height; such a word exists by the definition of minimal heights.
        let allowed: BTreeSet<String> = self
            .heights
            .iter()
            .filter(|(_, &h)| h < my_height)
            .map(|(name, _)| name.clone())
            .collect();
        let demand = CoverDemand::none().restrict_to(allowed);
        let word = xpsat_automata::shortest_covering_word(nfa, &demand)
            .or_else(|| nfa.shortest_word())
            .unwrap_or_default();
        for child_label in word {
            let child = doc.add_child(node, child_label);
            self.expand_minimal(doc, child);
        }
    }

    /// Expand `node` (assumed childless) with a children word satisfying `demand`, then
    /// minimally expand every child.  Returns the ids of the children, or `None` when
    /// the content model cannot satisfy the demand.
    pub fn expand_with_demand(
        &self,
        doc: &mut Document,
        node: NodeId,
        demand: &CoverDemand<String>,
    ) -> Option<Vec<NodeId>> {
        let label = doc.label(node).to_string();
        self.fill_attributes(doc, node, &label);
        let nfa = self.automata.get(&label)?;
        let word = xpsat_automata::shortest_covering_word(nfa, demand)?;
        let mut children = Vec::with_capacity(word.len());
        for child_label in word {
            if !self.terminating.contains(&child_label) {
                return None;
            }
            let child = doc.add_child(node, child_label);
            children.push(child);
        }
        for &child in &children {
            self.expand_minimal(doc, child);
        }
        Some(children)
    }

    /// A random conforming document.  Depth is limited by `max_depth` (beyond it the
    /// expansion switches to minimal words); child-word sampling is bounded by
    /// `max_word_len` repetitions through starred positions.
    pub fn random_tree<R: Rng>(
        &self,
        rng: &mut R,
        max_depth: usize,
        max_word_len: usize,
    ) -> Document {
        let mut doc = Document::new(self.dtd.root());
        let root = doc.root();
        self.expand_random(&mut doc, root, rng, max_depth, max_word_len);
        doc
    }

    fn expand_random<R: Rng>(
        &self,
        doc: &mut Document,
        node: NodeId,
        rng: &mut R,
        depth_budget: usize,
        max_word_len: usize,
    ) {
        let label = doc.label(node).to_string();
        if depth_budget == 0 {
            self.expand_minimal(doc, node);
            return;
        }
        self.fill_attributes(doc, node, &label);
        let Some(nfa) = self.automata.get(&label) else {
            return;
        };
        let word = self.sample_word(nfa, rng, max_word_len);
        for child_label in word {
            let child = doc.add_child(node, child_label);
            self.expand_random(doc, child, rng, depth_budget - 1, max_word_len);
        }
        // Randomise attribute values a little so data-value queries see variety.
        let attrs: Vec<String> = self.dtd.attributes(&label).into_iter().collect();
        for attr in attrs {
            let value = format!("v{}", rng.gen_range(0..4));
            doc.set_attr(node, attr, value);
        }
    }

    /// Random walk over the Glushkov automaton, restricted to terminating symbols,
    /// biased towards stopping once an accepting state is reached.  The walk only ever
    /// visits states from which acceptance stays reachable through terminating symbols,
    /// so the returned word is always in the (restricted) language.
    fn sample_word<R: Rng>(&self, nfa: &Nfa<String>, rng: &mut R, max_len: usize) -> Vec<String> {
        let good = good_states(nfa, &self.terminating);
        if !good.contains(&nfa.start()) {
            return Vec::new();
        }
        let mut word = Vec::new();
        let mut state = nfa.start();
        while word.len() < max_len {
            if nfa.is_accepting(state) && rng.gen_bool(0.4) {
                return word;
            }
            let options: Vec<(String, usize)> = nfa
                .transitions_from(state)
                .flat_map(|(sym, succs)| {
                    succs
                        .iter()
                        .map(move |&s| (sym.clone(), s))
                        .collect::<Vec<_>>()
                })
                .filter(|(sym, next)| self.terminating.contains(sym) && good.contains(next))
                .collect();
            if options.is_empty() {
                break;
            }
            let (sym, next) = options[rng.gen_range(0..options.len())].clone();
            word.push(sym);
            state = next;
        }
        // Completion phase: append a shortest accepted suffix from the current state.
        word.extend(shortest_suffix(nfa, state, &self.terminating, &good));
        word
    }

    fn fill_attributes(&self, doc: &mut Document, node: NodeId, label: &str) {
        for attr in self.dtd.attributes(label) {
            if doc.attr(node, &attr).is_none() {
                doc.set_attr(node, attr, "0");
            }
        }
    }
}

/// States from which an accepting state is reachable using only terminating symbols.
fn good_states(nfa: &Nfa<String>, terminating: &BTreeSet<String>) -> BTreeSet<usize> {
    let mut good: BTreeSet<usize> = (0..nfa.num_states())
        .filter(|&q| nfa.is_accepting(q))
        .collect();
    loop {
        let mut changed = false;
        for q in 0..nfa.num_states() {
            if good.contains(&q) {
                continue;
            }
            let reaches = nfa.transitions_from(q).any(|(sym, succs)| {
                terminating.contains(sym) && succs.iter().any(|s| good.contains(s))
            });
            if reaches {
                good.insert(q);
                changed = true;
            }
        }
        if !changed {
            return good;
        }
    }
}

/// A shortest word leading from `state` to acceptance using only terminating symbols.
fn shortest_suffix(
    nfa: &Nfa<String>,
    state: usize,
    terminating: &BTreeSet<String>,
    good: &BTreeSet<usize>,
) -> Vec<String> {
    use std::collections::VecDeque;
    if nfa.is_accepting(state) {
        return Vec::new();
    }
    let mut pred: BTreeMap<usize, (usize, String)> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(state);
    let mut goal = None;
    'search: while let Some(q) = queue.pop_front() {
        for (sym, succs) in nfa.transitions_from(q) {
            if !terminating.contains(sym) {
                continue;
            }
            for &next in succs {
                if next != state && !pred.contains_key(&next) && good.contains(&next) {
                    pred.insert(next, (q, sym.clone()));
                    if nfa.is_accepting(next) {
                        goal = Some(next);
                        break 'search;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    let Some(mut cur) = goal else {
        return Vec::new();
    };
    let mut suffix = Vec::new();
    while cur != state {
        let (prev, sym) = pred[&cur].clone();
        suffix.push(sym);
        cur = prev;
    }
    suffix.reverse();
    suffix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;
    use crate::validate::validate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bookstore() -> Dtd {
        parse_dtd(
            "root store; store -> book*; book -> title, author+, price?;\n\
             title -> #; author -> #; price -> #; @book: isbn;",
        )
        .unwrap()
    }

    #[test]
    fn minimal_tree_conforms() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let doc = gen.minimal_tree("store").unwrap();
        assert_eq!(validate(&doc, &dtd), Ok(()));
        // store -> book* : the minimal tree is just the root.
        assert_eq!(doc.len(), 1);

        let book_tree = gen.minimal_tree("book").unwrap();
        // book needs title and at least one author.
        assert_eq!(book_tree.len(), 3);
    }

    #[test]
    fn recursive_dtd_minimal_trees_terminate() {
        let dtd = parse_dtd("r -> c; c -> (c, x) | #; x -> #;").unwrap();
        let gen = TreeGenerator::new(&dtd);
        let doc = gen.minimal_tree("r").unwrap();
        assert_eq!(validate(&doc, &dtd), Ok(()));
        assert!(doc.len() <= 3);
    }

    #[test]
    fn nonterminating_types_are_rejected() {
        let dtd = parse_dtd("r -> a | b; a -> #; b -> b;").unwrap();
        let gen = TreeGenerator::new(&dtd);
        assert!(gen.minimal_tree("b").is_none());
        assert!(gen.minimal_tree("r").is_some());
        assert!(!gen.is_terminating("b"));
    }

    #[test]
    fn expansion_with_demand_covers_required_children() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let mut doc = Document::new("store");
        let root = doc.root();
        let demand = CoverDemand::none().require("book".to_string(), 3);
        let children = gen.expand_with_demand(&mut doc, root, &demand).unwrap();
        assert_eq!(children.len(), 3);
        assert_eq!(validate(&doc, &dtd), Ok(()));
    }

    #[test]
    fn random_trees_conform() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let doc = gen.random_tree(&mut rng, 4, 5);
            assert_eq!(validate(&doc, &dtd), Ok(()), "doc: {doc}");
        }
    }

    #[test]
    fn random_trees_conform_for_recursive_dtds() {
        let dtd = parse_dtd(
            "r -> c; c -> (c, r1, r2) | #; r1 -> x | #; r2 -> y | #; x -> x | #; y -> y | #;",
        )
        .unwrap();
        let gen = TreeGenerator::new(&dtd);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let doc = gen.random_tree(&mut rng, 5, 4);
            assert_eq!(validate(&doc, &dtd), Ok(()), "doc: {doc}");
        }
    }
}
