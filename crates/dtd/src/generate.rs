//! Generation of conforming documents: minimal expansions and random sampling.
//!
//! The satisfiability engines build *partial* witness trees (a spine of nodes the query
//! needs) and then expand every node into a full conforming document; the constructions
//! in the proofs of Theorems 4.1 and 4.4 do exactly this ("by using productions of the
//! DTD, we expand the tree into a finite XML tree conforming to D").  [`TreeGenerator`]
//! performs those expansions:
//!
//! * [`TreeGenerator::minimal_tree`] — a smallest-height conforming tree for a type;
//! * [`TreeGenerator::attach_minimal`] — graft such a tree below an existing node;
//! * [`TreeGenerator::random_tree`] — a random conforming document, used by the property
//!   tests and benchmark workloads (depth- and width-bounded so recursion terminates).
//!
//! Internally everything runs over interned [`Sym`] ids: the per-type Glushkov automata
//! are `Nfa<Sym>`, the terminating set and the sampling good-state masks are bitsets,
//! and — crucially for the witness-expansion hot path — the minimal children word of
//! every terminating type is precomputed once at construction, so `expand_minimal` is a
//! table lookup plus node insertion instead of a per-node covering-word BFS over
//! `String` labels.

use crate::dtd::Dtd;
use crate::graph::{minimal_heights, terminating_types};
use crate::symbols::{Sym, SymbolTable};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use xpsat_automata::{BitSet, CoverDemand, Nfa};
use xpsat_xmltree::{Document, NodeId};

/// A generator of conforming documents for one DTD.
///
/// Construction precomputes the Glushkov automata of all content models (over interned
/// symbols), the set of terminating types, the minimal derivation heights, the minimal
/// children word of every terminating type and the sampling good-state masks, so
/// repeated expansions are cheap.
#[derive(Debug, Clone)]
pub struct TreeGenerator {
    dtd: Dtd,
    /// Declared element types first (in sorted order), then referenced-only names.
    symbols: SymbolTable,
    /// Content-model automaton per symbol; `None` for referenced-but-undeclared names.
    automata: Vec<Option<Nfa<Sym>>>,
    /// Terminating types as a bitset over symbol indices.
    terminating: BitSet,
    /// Precomputed minimal children word per symbol (empty for non-terminating types,
    /// whose expansion is a no-op).
    minimal_words: Vec<Vec<Sym>>,
    /// Per symbol: NFA states from which acceptance stays reachable through
    /// terminating symbols (used by the random sampler).
    good: Vec<BitSet>,
}

impl TreeGenerator {
    /// Build a generator for a DTD.
    pub fn new(dtd: &Dtd) -> TreeGenerator {
        // Intern declared types in sorted order first — for a pruned DTD this yields
        // exactly the `CompiledDtd` symbol assignment — then referenced-only names.
        let declared: BTreeSet<String> = dtd.element_names().into_iter().collect();
        let mut referenced: BTreeSet<String> = BTreeSet::new();
        for (_, decl) in dtd.elements() {
            referenced.extend(decl.content.symbols());
        }
        let mut symbols = SymbolTable::new();
        for name in &declared {
            symbols.intern(name);
        }
        for name in &referenced {
            symbols.intern(name);
        }
        let automata: Vec<Option<Nfa<Sym>>> = (0..symbols.len())
            .map(|index| {
                let name = symbols.name(Sym::from_index(index));
                dtd.element(name).map(|decl| {
                    let content = decl.content.map_symbols(&|s| {
                        symbols.lookup(s).expect("referenced names are interned")
                    });
                    Nfa::glushkov(&content)
                })
            })
            .collect();
        Self::from_parts(dtd, symbols, automata)
    }

    /// Build a generator from an existing interner and per-symbol automata, skipping
    /// the Glushkov construction.  The interner must cover every declared *and*
    /// referenced name of the DTD, with `automata[sym]` the automaton of `P(sym)` for
    /// every declared type (the artifact pipeline shares its compiled automata this
    /// way instead of re-deriving them).
    pub fn from_parts(
        dtd: &Dtd,
        symbols: SymbolTable,
        automata: Vec<Option<Nfa<Sym>>>,
    ) -> TreeGenerator {
        let n = symbols.len();
        let terminating_names = terminating_types(dtd);
        let mut terminating = BitSet::with_capacity(n);
        for name in &terminating_names {
            if let Some(sym) = symbols.lookup(name) {
                terminating.insert(sym.index());
            }
        }
        let height_map: BTreeMap<String, usize> = minimal_heights(dtd);
        let heights: Vec<Option<usize>> = (0..n)
            .map(|i| height_map.get(symbols.name(Sym::from_index(i))).copied())
            .collect();

        // Minimal children word per terminating type: the shortest word of the content
        // model over types of strictly smaller minimal height (such a word exists by
        // the definition of minimal heights).  Computed once; every expansion reuses it.
        let minimal_words: Vec<Vec<Sym>> = (0..n)
            .map(|index| {
                if !terminating.contains(index) {
                    return Vec::new();
                }
                let Some(nfa) = &automata[index] else {
                    return Vec::new();
                };
                let my_height = heights[index].unwrap_or(1);
                let allowed: BTreeSet<Sym> = heights
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| h.is_some_and(|h| h < my_height))
                    .map(|(i, _)| Sym::from_index(i))
                    .collect();
                let demand = CoverDemand::none().restrict_to(allowed);
                xpsat_automata::shortest_covering_word(nfa, &demand)
                    .or_else(|| nfa.shortest_word())
                    .unwrap_or_default()
            })
            .collect();

        let good: Vec<BitSet> = automata
            .iter()
            .map(|nfa| match nfa {
                Some(nfa) => good_states(nfa, &terminating),
                None => BitSet::new(),
            })
            .collect();

        TreeGenerator {
            dtd: dtd.clone(),
            symbols,
            automata,
            terminating,
            minimal_words,
            good,
        }
    }

    /// The DTD this generator expands against.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// Is this element type terminating (does it derive any finite tree)?
    pub fn is_terminating(&self, name: &str) -> bool {
        self.symbols
            .lookup(name)
            .is_some_and(|sym| self.terminating.contains(sym.index()))
    }

    /// A minimal-height conforming tree rooted at an element of type `label`.
    /// Returns `None` when the type is not terminating (or not declared).
    pub fn minimal_tree(&self, label: &str) -> Option<Document> {
        let sym = self.symbols.lookup(label)?;
        if !self.terminating.contains(sym.index()) {
            return None;
        }
        let mut doc = Document::new(label);
        let root = doc.root();
        self.expand_minimal_sym(&mut doc, root, sym);
        Some(doc)
    }

    /// Graft a minimal conforming subtree of type `label` as the last child of `parent`.
    /// Returns the new child's id, or `None` for non-terminating types.
    pub fn attach_minimal(
        &self,
        doc: &mut Document,
        parent: NodeId,
        label: &str,
    ) -> Option<NodeId> {
        let sym = self.symbols.lookup(label)?;
        if !self.terminating.contains(sym.index()) {
            return None;
        }
        let child = doc.add_child(parent, label);
        self.expand_minimal_sym(doc, child, sym);
        Some(child)
    }

    /// Expand `node` (assumed childless) into a minimal conforming subtree, filling
    /// declared attributes with the placeholder value `"0"`.
    pub fn expand_minimal(&self, doc: &mut Document, node: NodeId) {
        match self.symbols.lookup(doc.label(node)) {
            Some(sym) => self.expand_minimal_sym(doc, node, sym),
            None => {
                let label = doc.label(node).to_string();
                self.fill_attributes(doc, node, &label);
            }
        }
    }

    /// [`TreeGenerator::expand_minimal`] with the label already resolved: a walk over
    /// the precomputed minimal-word table.
    fn expand_minimal_sym(&self, doc: &mut Document, node: NodeId, sym: Sym) {
        let label = self.symbols.name(sym).to_string();
        self.fill_attributes(doc, node, &label);
        // Minimal words only mention types of strictly smaller minimal height, so the
        // recursion terminates even on recursive DTDs.
        for &child_sym in &self.minimal_words[sym.index()] {
            let child = doc.add_child(node, self.symbols.name(child_sym));
            self.expand_minimal_sym(doc, child, child_sym);
        }
    }

    /// Expand `node` (assumed childless) with a children word satisfying `demand`, then
    /// minimally expand every child.  Returns the ids of the children, or `None` when
    /// the content model cannot satisfy the demand.
    pub fn expand_with_demand(
        &self,
        doc: &mut Document,
        node: NodeId,
        demand: &CoverDemand<String>,
    ) -> Option<Vec<NodeId>> {
        let label = doc.label(node).to_string();
        self.fill_attributes(doc, node, &label);
        let sym = self.symbols.lookup(&label)?;
        let nfa = self.automata[sym.index()].as_ref()?;
        // Lower the demand to interned form.  A required name the interner has never
        // seen cannot occur in any children word, so the demand is unsatisfiable.
        let mut sym_demand: CoverDemand<Sym> = CoverDemand::none();
        for (name, &count) in &demand.required {
            match self.symbols.lookup(name) {
                Some(s) => {
                    sym_demand = sym_demand.require(s, count);
                }
                None if count > 0 => return None,
                None => {}
            }
        }
        if let Some(allowed) = &demand.allowed {
            let allowed_syms: BTreeSet<Sym> = allowed
                .iter()
                .filter_map(|name| self.symbols.lookup(name))
                .collect();
            sym_demand = sym_demand.restrict_to(allowed_syms);
        }
        let word = xpsat_automata::shortest_covering_word(nfa, &sym_demand)?;
        if word.iter().any(|s| !self.terminating.contains(s.index())) {
            return None;
        }
        let mut children = Vec::with_capacity(word.len());
        for &child_sym in &word {
            let child = doc.add_child(node, self.symbols.name(child_sym));
            children.push(child);
        }
        for (child, &child_sym) in children.iter().zip(&word) {
            self.expand_minimal_sym(doc, *child, child_sym);
        }
        Some(children)
    }

    /// A random conforming document.  Depth is limited by `max_depth` (beyond it the
    /// expansion switches to minimal words); child-word sampling is bounded by
    /// `max_word_len` repetitions through starred positions.
    pub fn random_tree<R: Rng>(
        &self,
        rng: &mut R,
        max_depth: usize,
        max_word_len: usize,
    ) -> Document {
        let mut doc = Document::new(self.dtd.root());
        let root = doc.root();
        self.expand_random(&mut doc, root, rng, max_depth, max_word_len);
        doc
    }

    fn expand_random<R: Rng>(
        &self,
        doc: &mut Document,
        node: NodeId,
        rng: &mut R,
        depth_budget: usize,
        max_word_len: usize,
    ) {
        let label = doc.label(node).to_string();
        let Some(sym) = self.symbols.lookup(&label) else {
            return;
        };
        if depth_budget == 0 {
            self.expand_minimal_sym(doc, node, sym);
            return;
        }
        self.fill_attributes(doc, node, &label);
        let Some(nfa) = self.automata[sym.index()].as_ref() else {
            return;
        };
        let word = self.sample_word(nfa, &self.good[sym.index()], rng, max_word_len);
        for child_sym in word {
            let child = doc.add_child(node, self.symbols.name(child_sym));
            self.expand_random(doc, child, rng, depth_budget - 1, max_word_len);
        }
        // Randomise attribute values a little so data-value queries see variety.
        let attrs: Vec<String> = self.dtd.attributes(&label).into_iter().collect();
        for attr in attrs {
            let value = format!("v{}", rng.gen_range(0..4));
            doc.set_attr(node, attr, value);
        }
    }

    /// Random walk over the Glushkov automaton, restricted to terminating symbols,
    /// biased towards stopping once an accepting state is reached.  The walk only ever
    /// visits states from which acceptance stays reachable through terminating symbols,
    /// so the returned word is always in the (restricted) language.
    fn sample_word<R: Rng>(
        &self,
        nfa: &Nfa<Sym>,
        good: &BitSet,
        rng: &mut R,
        max_len: usize,
    ) -> Vec<Sym> {
        if !good.contains(nfa.start()) {
            return Vec::new();
        }
        let mut word = Vec::new();
        let mut state = nfa.start();
        let mut options: Vec<(Sym, usize)> = Vec::new();
        while word.len() < max_len {
            if nfa.is_accepting(state) && rng.gen_bool(0.4) {
                return word;
            }
            options.clear();
            for (sym, succs) in nfa.transitions_from(state) {
                if !self.terminating.contains(sym.index()) {
                    continue;
                }
                options.extend(
                    succs
                        .iter()
                        .filter(|s| good.contains(**s))
                        .map(|&s| (*sym, s)),
                );
            }
            if options.is_empty() {
                break;
            }
            let (sym, next) = options[rng.gen_range(0..options.len())];
            word.push(sym);
            state = next;
        }
        // Completion phase: append a shortest accepted suffix from the current state.
        word.extend(self.shortest_suffix(nfa, state, good));
        word
    }

    /// A shortest word leading from `state` to acceptance using only terminating
    /// symbols.
    fn shortest_suffix(&self, nfa: &Nfa<Sym>, state: usize, good: &BitSet) -> Vec<Sym> {
        use std::collections::VecDeque;
        if nfa.is_accepting(state) {
            return Vec::new();
        }
        let mut pred: BTreeMap<usize, (usize, Sym)> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(state);
        let mut goal = None;
        'search: while let Some(q) = queue.pop_front() {
            for (sym, succs) in nfa.transitions_from(q) {
                if !self.terminating.contains(sym.index()) {
                    continue;
                }
                for &next in succs {
                    if next != state && !pred.contains_key(&next) && good.contains(next) {
                        pred.insert(next, (q, *sym));
                        if nfa.is_accepting(next) {
                            goal = Some(next);
                            break 'search;
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
        let Some(mut cur) = goal else {
            return Vec::new();
        };
        let mut suffix = Vec::new();
        while cur != state {
            let (prev, sym) = pred[&cur];
            suffix.push(sym);
            cur = prev;
        }
        suffix.reverse();
        suffix
    }

    fn fill_attributes(&self, doc: &mut Document, node: NodeId, label: &str) {
        for attr in self.dtd.attributes(label) {
            if doc.attr(node, &attr).is_none() {
                doc.set_attr(node, attr, "0");
            }
        }
    }
}

/// States from which an accepting state is reachable using only terminating symbols.
fn good_states(nfa: &Nfa<Sym>, terminating: &BitSet) -> BitSet {
    let mut good: BitSet = (0..nfa.num_states())
        .filter(|&q| nfa.is_accepting(q))
        .collect();
    loop {
        let mut changed = false;
        for q in 0..nfa.num_states() {
            if good.contains(q) {
                continue;
            }
            let reaches = nfa.transitions_from(q).any(|(sym, succs)| {
                terminating.contains(sym.index()) && succs.iter().any(|s| good.contains(*s))
            });
            if reaches {
                good.insert(q);
                changed = true;
            }
        }
        if !changed {
            return good;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;
    use crate::validate::validate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bookstore() -> Dtd {
        parse_dtd(
            "root store; store -> book*; book -> title, author+, price?;\n\
             title -> #; author -> #; price -> #; @book: isbn;",
        )
        .unwrap()
    }

    #[test]
    fn minimal_tree_conforms() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let doc = gen.minimal_tree("store").unwrap();
        assert_eq!(validate(&doc, &dtd), Ok(()));
        // store -> book* : the minimal tree is just the root.
        assert_eq!(doc.len(), 1);

        let book_tree = gen.minimal_tree("book").unwrap();
        // book needs title and at least one author.
        assert_eq!(book_tree.len(), 3);
    }

    #[test]
    fn recursive_dtd_minimal_trees_terminate() {
        let dtd = parse_dtd("r -> c; c -> (c, x) | #; x -> #;").unwrap();
        let gen = TreeGenerator::new(&dtd);
        let doc = gen.minimal_tree("r").unwrap();
        assert_eq!(validate(&doc, &dtd), Ok(()));
        assert!(doc.len() <= 3);
    }

    #[test]
    fn nonterminating_types_are_rejected() {
        let dtd = parse_dtd("r -> a | b; a -> #; b -> b;").unwrap();
        let gen = TreeGenerator::new(&dtd);
        assert!(gen.minimal_tree("b").is_none());
        assert!(gen.minimal_tree("r").is_some());
        assert!(!gen.is_terminating("b"));
    }

    #[test]
    fn expansion_with_demand_covers_required_children() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let mut doc = Document::new("store");
        let root = doc.root();
        let demand = CoverDemand::none().require("book".to_string(), 3);
        let children = gen.expand_with_demand(&mut doc, root, &demand).unwrap();
        assert_eq!(children.len(), 3);
        assert_eq!(validate(&doc, &dtd), Ok(()));
    }

    #[test]
    fn expansion_with_unknown_required_name_fails() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let mut doc = Document::new("store");
        let root = doc.root();
        let demand = CoverDemand::none().require("ghost".to_string(), 1);
        assert!(gen.expand_with_demand(&mut doc, root, &demand).is_none());
    }

    #[test]
    fn random_trees_conform() {
        let dtd = bookstore();
        let gen = TreeGenerator::new(&dtd);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let doc = gen.random_tree(&mut rng, 4, 5);
            assert_eq!(validate(&doc, &dtd), Ok(()), "doc: {doc}");
        }
    }

    #[test]
    fn random_trees_conform_for_recursive_dtds() {
        let dtd = parse_dtd(
            "r -> c; c -> (c, r1, r2) | #; r1 -> x | #; r2 -> y | #; x -> x | #; y -> y | #;",
        )
        .unwrap();
        let gen = TreeGenerator::new(&dtd);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let doc = gen.random_tree(&mut rng, 5, 4);
            assert_eq!(validate(&doc, &dtd), Ok(()), "doc: {doc}");
        }
    }
}
