//! The shared per-DTD artifact pipeline: everything the satisfiability engines need,
//! compiled exactly once per DTD.
//!
//! Every algorithm in the paper runs per-query over structures that depend only on the
//! DTD: the pruned (all-types-terminating) DTD of Section 2.1, the DTD graph with its
//! reachability closure (Theorem 4.1), the Glushkov automata of the content models
//! (Theorems 4.4, 5.2/5.3, 7.1) and the structural classification of Section 6 that
//! drives engine dispatch.  [`DtdArtifacts::build`] derives all of them in one pass and
//! interns every element-type and attribute name into a [`SymbolTable`], so the engines
//! index dense `Vec`s and bitsets by [`Sym`] instead of hashing `String`s.
//!
//! A service front-end builds the artifacts once per registered DTD and hands the same
//! `&DtdArtifacts` to every `decide` call — the one-compile-many-queries flow that makes
//! batched traffic pay DTD preprocessing exactly once.

use crate::classify::{classify, DtdClass};
use crate::dtd::Dtd;
use crate::generate::TreeGenerator;
use crate::graph::{prune_nonterminating, DtdGraph};
use crate::props::DtdProperties;
use crate::symbols::{Sym, SymbolTable};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use xpsat_automata::{BitSet, Nfa};

/// A content-model automaton over interned element-type symbols.
pub type SymNfa = Nfa<Sym>;

/// Process-global source of artifact identities (see [`DtdArtifacts::uid`]).
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// All precomputed artifacts of one DTD.
#[derive(Debug, Clone)]
pub struct DtdArtifacts {
    uid: u64,
    dtd: Dtd,
    class: DtdClass,
    compiled: Option<CompiledDtd>,
}

impl DtdArtifacts {
    /// Compile a DTD into its artifacts.  This is the only place in the workspace where
    /// per-DTD preprocessing happens; everything downstream borrows the result.
    pub fn build(dtd: &Dtd) -> DtdArtifacts {
        let class = classify(dtd);
        let compiled = prune_nonterminating(dtd).map(CompiledDtd::new);
        DtdArtifacts {
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            dtd: dtd.clone(),
            class,
            compiled,
        }
    }

    /// Assemble artifacts from parts rehydrated out of a persistent store, skipping the
    /// classification and compilation passes.  The caller vouches that `class` and
    /// `compiled` were produced by [`DtdArtifacts::build`] (or an equivalent pipeline)
    /// for this exact `dtd`.
    pub fn from_cached_parts(
        dtd: Dtd,
        class: DtdClass,
        compiled: Option<CompiledDtd>,
    ) -> DtdArtifacts {
        DtdArtifacts {
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            dtd,
            class,
            compiled,
        }
    }

    /// A process-unique identity for this compile, stable for the artifact's lifetime.
    /// Clones share the uid (they are the same compile), so per-artifact memo tables
    /// keyed by it stay valid across cheap handle copies.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The DTD exactly as registered (before pruning).
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The structural classification of the (unpruned) DTD.
    pub fn class(&self) -> &DtdClass {
        &self.class
    }

    /// The compiled form of the pruned DTD, or `None` when the root type is
    /// non-terminating — in which case no document conforms and every query is
    /// unsatisfiable.
    pub fn compiled(&self) -> Option<&CompiledDtd> {
        self.compiled.as_ref()
    }

    /// Number of content-model automata a full compile yields (one per terminating
    /// element type).  Does not force the lazy automata.
    pub fn automata_count(&self) -> usize {
        self.compiled.as_ref().map_or(0, |c| c.num_elements())
    }

    /// The structural properties of the pruned DTD (None when no document conforms).
    pub fn properties(&self) -> Option<&DtdProperties> {
        self.compiled.as_ref().map(|c| c.properties())
    }

    /// Force every lazily-initialised artifact (automata, useful-state masks, tree
    /// generator).  Long-lived holders — the service workspace registering a DTD it
    /// will serve many queries against — warm eagerly so no decision ever pays
    /// first-touch latency; one-shot `Solver::decide` callers skip this and only build
    /// what their engine actually walks.
    pub fn warm(&self) {
        if let Some(compiled) = &self.compiled {
            compiled.warm();
        }
    }
}

/// The dense, symbol-interned compilation of a pruned DTD.
///
/// The cheap, always-needed structures (interner, dense graph with reachability
/// closure, attribute sets) are built eagerly; the expensive ones — the per-element
/// Glushkov automata, their useful-state masks and the [`TreeGenerator`] — live behind
/// [`OnceLock`]s and are built on first touch.  A one-shot `Solver::decide` whose query
/// dispatches to the downward or disjunction-free engine (pure graph reachability)
/// never constructs an automaton at all; the service workspace calls
/// [`CompiledDtd::warm`] once at registration instead.
#[derive(Debug, Clone)]
pub struct CompiledDtd {
    dtd: Dtd,
    size: usize,
    symbols: SymbolTable,
    num_elements: usize,
    root: Sym,
    graph: DtdGraph,
    /// Structural properties (duplicate-free, capsuled, covering, …) of the pruned DTD.
    props: DtdProperties,
    /// Declared attribute names per element symbol.
    attrs: Vec<BTreeSet<String>>,
    /// Glushkov automaton of `P(A)` indexed by the element symbol of `A` (lazy).
    automata: OnceLock<Vec<SymNfa>>,
    /// Useful (accessible and co-accessible) states of each automaton (lazy).
    useful: OnceLock<Vec<BitSet>>,
    /// The shared tree generator (lazy; reuses the compiled automata when built).
    generator: OnceLock<TreeGenerator>,
}

impl CompiledDtd {
    fn new(pruned: Dtd) -> CompiledDtd {
        let graph = DtdGraph::new(&pruned);
        let props = DtdProperties::analyze(&pruned, &graph);
        // Pruned DTDs reference declared types only, so the graph's vertices are
        // exactly the element types; extend its table with the attribute names so one
        // interner covers both namespaces (elements occupy the dense prefix).
        let mut symbols = graph.symbols().clone();
        let num_elements = symbols.len();
        debug_assert_eq!(num_elements, pruned.element_names().len());
        for attr in pruned.all_attributes() {
            symbols.intern(&attr);
        }
        let root = graph.root_sym();

        let mut attrs = Vec::with_capacity(num_elements);
        for index in 0..num_elements {
            let name = symbols.name(Sym::from_index(index)).to_string();
            let decl = pruned
                .element(&name)
                .expect("graph vertices of a pruned DTD are declared");
            attrs.push(decl.attributes.clone());
        }
        CompiledDtd {
            size: pruned.size(),
            dtd: pruned,
            symbols,
            num_elements,
            root,
            graph,
            props,
            attrs,
            automata: OnceLock::new(),
            useful: OnceLock::new(),
            generator: OnceLock::new(),
        }
    }

    /// Rebuild a compile from a pruned DTD plus automata and useful-state masks that
    /// were serialised out of an earlier compile, skipping the Glushkov construction
    /// and the useful-state analysis.
    ///
    /// The eager structures (interner, graph, attribute sets) are re-derived from the
    /// pruned DTD — [`DtdGraph::new`] interns element names in sorted order, so symbol
    /// ids are deterministic and the stored `Sym`-indexed automata remain valid.
    /// Callers must verify that `element names in id order` match the serialised
    /// compile before trusting the indices (the persistent store does).
    ///
    /// # Panics
    /// Panics when `automata` or `useful` do not have one entry per element type.
    pub fn from_cached_automata(
        pruned: Dtd,
        automata: Vec<SymNfa>,
        useful: Vec<BitSet>,
    ) -> CompiledDtd {
        let compiled = CompiledDtd::new(pruned);
        assert_eq!(
            automata.len(),
            compiled.num_elements,
            "from_cached_automata: one automaton per element type"
        );
        assert_eq!(
            useful.len(),
            compiled.num_elements,
            "from_cached_automata: one useful-state mask per element type"
        );
        compiled
            .automata
            .set(automata)
            .expect("fresh compile has no automata yet");
        compiled
            .useful
            .set(useful)
            .expect("fresh compile has no useful masks yet");
        compiled
    }

    /// The automata vector, built on first touch.
    fn automata(&self) -> &[SymNfa] {
        self.automata.get_or_init(|| {
            (0..self.num_elements)
                .map(|index| {
                    let name = self.symbols.name(Sym::from_index(index));
                    let decl = self
                        .dtd
                        .element(name)
                        .expect("graph vertices of a pruned DTD are declared");
                    let content = decl.content.map_symbols(&|s| {
                        self.graph
                            .sym(s)
                            .expect("pruned content references declared types")
                    });
                    Nfa::glushkov(&content)
                })
                .collect()
        })
    }

    /// The useful-state masks, built on first touch (forces the automata).
    fn useful_vec(&self) -> &[BitSet] {
        self.useful
            .get_or_init(|| self.automata().iter().map(Nfa::useful_states).collect())
    }

    /// Force every lazy artifact now (see [`DtdArtifacts::warm`]).
    pub fn warm(&self) {
        let _ = self.useful_vec();
        let _ = self.generator();
    }

    /// The pruned DTD (all element types terminating).
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// `|D|` of the pruned DTD (used by the small-model bounds).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The interner covering element types (dense prefix) and attribute names.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of element types.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The root element symbol.
    pub fn root(&self) -> Sym {
        self.root
    }

    /// The DTD graph with its precomputed reachability closure.
    pub fn graph(&self) -> &DtdGraph {
        &self.graph
    }

    /// The structural properties of the pruned DTD (computed eagerly at compile:
    /// every construction path — fresh build or store rehydration — goes through
    /// [`CompiledDtd::new`], so no store format change is needed).
    pub fn properties(&self) -> &DtdProperties {
        &self.props
    }

    /// The shared tree generator (minimal expansions, random sampling), built on first
    /// touch.  The generator reuses this compile's automata — cloned, not re-derived —
    /// so forcing it never runs the Glushkov construction twice.
    pub fn generator(&self) -> &TreeGenerator {
        self.generator.get_or_init(|| {
            // The generator's interner must cover every name it may resolve; hand it
            // this compile's table (elements in the dense prefix, attribute names
            // after) with `None` automata for the non-element tail.
            let automata: Vec<Option<SymNfa>> = self
                .automata()
                .iter()
                .cloned()
                .map(Some)
                .chain((self.num_elements..self.symbols.len()).map(|_| None))
                .collect();
            TreeGenerator::from_parts(&self.dtd, self.symbols.clone(), automata)
        })
    }

    /// The element symbol of `name`, if it is a declared element type.
    pub fn elem_sym(&self, name: &str) -> Option<Sym> {
        self.symbols
            .lookup(name)
            .filter(|s| s.index() < self.num_elements)
    }

    /// The name behind any interned symbol.
    pub fn name(&self, sym: Sym) -> &str {
        self.symbols.name(sym)
    }

    /// All element symbols in id order.
    pub fn elements(&self) -> impl Iterator<Item = Sym> {
        (0..self.num_elements).map(Sym::from_index)
    }

    /// The Glushkov automaton of `P(A)` for element symbol `A` (forces the lazy build
    /// on first touch).
    pub fn automaton(&self, elem: Sym) -> &SymNfa {
        &self.automata()[elem.index()]
    }

    /// The useful (on-some-accepting-run) states of `A`'s automaton (forces the lazy
    /// build on first touch).
    pub fn useful_states(&self, elem: Sym) -> &BitSet {
        &self.useful_vec()[elem.index()]
    }

    /// The declared attribute set `R(A)`.
    pub fn attributes(&self, elem: Sym) -> &BTreeSet<String> {
        &self.attrs[elem.index()]
    }

    /// Does element type `A` declare attribute `attr`?
    pub fn has_attribute(&self, elem: Sym, attr: &str) -> bool {
        self.attrs[elem.index()].contains(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dtd;

    #[test]
    fn artifacts_cover_all_terminating_types() {
        let dtd = parse_dtd(
            "r -> a*, b; a -> c | d; b -> #; c -> #; d -> #; dead -> dead; @a: id, name;",
        )
        .unwrap();
        let art = DtdArtifacts::build(&dtd);
        assert_eq!(art.dtd(), &dtd);
        assert!(!art.class().recursive || art.class().recursive); // classification present
        let compiled = art.compiled().unwrap();
        // `dead` is non-terminating and pruned away.
        assert_eq!(compiled.num_elements(), 5);
        assert!(compiled.elem_sym("dead").is_none());
        assert_eq!(art.automata_count(), 5);
        let a = compiled.elem_sym("a").unwrap();
        assert!(compiled.has_attribute(a, "id"));
        assert!(!compiled.has_attribute(a, "missing"));
        assert_eq!(compiled.name(compiled.root()), "r");
        // The automaton of `r` accepts `b` alone and `a a b`, in interned form.
        let b = compiled.elem_sym("b").unwrap();
        let nfa = compiled.automaton(compiled.root());
        assert!(nfa.accepts(&[b]));
        assert!(nfa.accepts(&[a, a, b]));
        assert!(!nfa.accepts(&[a]));
    }

    #[test]
    fn nonterminating_root_compiles_to_none() {
        let dtd = parse_dtd("r -> r;").unwrap();
        let art = DtdArtifacts::build(&dtd);
        assert!(art.compiled().is_none());
        assert_eq!(art.automata_count(), 0);
    }

    #[test]
    fn cached_automata_rebuild_matches_fresh_compile() {
        let dtd = parse_dtd("r -> a*, b; a -> c | d; b -> #; c -> #; d -> #; @a: id;").unwrap();
        let fresh = DtdArtifacts::build(&dtd);
        let compiled = fresh.compiled().unwrap();
        compiled.warm();
        let automata: Vec<SymNfa> = compiled
            .elements()
            .map(|e| compiled.automaton(e).clone())
            .collect();
        let useful: Vec<BitSet> = compiled
            .elements()
            .map(|e| compiled.useful_states(e).clone())
            .collect();
        let rebuilt = CompiledDtd::from_cached_automata(compiled.dtd().clone(), automata, useful);
        assert_eq!(rebuilt.num_elements(), compiled.num_elements());
        assert_eq!(rebuilt.root(), compiled.root());
        for sym in compiled.elements() {
            assert_eq!(rebuilt.name(sym), compiled.name(sym));
            let word = compiled.automaton(sym).shortest_word();
            assert_eq!(rebuilt.automaton(sym).shortest_word(), word);
            assert_eq!(
                rebuilt.useful_states(sym).iter().collect::<Vec<_>>(),
                compiled.useful_states(sym).iter().collect::<Vec<_>>()
            );
        }
        let cached = DtdArtifacts::from_cached_parts(dtd.clone(), fresh.class().clone(), None);
        assert_ne!(cached.uid(), fresh.uid());
        assert_eq!(fresh.clone().uid(), fresh.uid());
    }

    #[test]
    fn element_ids_agree_with_graph_ids() {
        let dtd = parse_dtd("r -> x, y; x -> #; y -> x?;").unwrap();
        let art = DtdArtifacts::build(&dtd);
        let compiled = art.compiled().unwrap();
        for sym in compiled.elements() {
            let name = compiled.name(sym).to_string();
            assert_eq!(compiled.graph().sym(&name), Some(sym));
            assert_eq!(compiled.elem_sym(&name), Some(sym));
        }
    }
}
