//! The normalisation `N(D)` of Proposition 3.3.
//!
//! A *normalized* DTD only has productions of the forms
//! `A → ε`, `A → B1,…,Bn`, `A → B1+…+Bn` or `A → B*`.  `N(D)` introduces one fresh
//! element type per internal node of each content model's parse tree and re-expresses
//! the original production through those fresh types.  The paper shows that `(p, D)` and
//! `(f(p), N(D))` are equi-satisfiable, where `f` is the query rewriting implemented in
//! `xpsat-core::transform` (it needs to know which types are fresh — that information is
//! returned here as part of [`Normalization`]).
//!
//! `N(D)` never introduces a construct (`+`, `,`, `*`) not already present in `D`, and
//! its size is linear in `|D|`.

use crate::dtd::Dtd;
use crate::ContentModel;
use std::collections::BTreeSet;
use xpsat_automata::Regex;

/// The result of normalising a DTD.
#[derive(Debug, Clone)]
pub struct Normalization {
    /// The normalized DTD `N(D)`.
    pub dtd: Dtd,
    /// The element types introduced by the normalisation (`Ele' \ Ele` in the paper).
    pub new_types: BTreeSet<String>,
}

impl Normalization {
    /// Is this element type one of the freshly introduced ones?
    pub fn is_new(&self, name: &str) -> bool {
        self.new_types.contains(name)
    }
}

/// Compute `N(D)`.
pub fn normalize(dtd: &Dtd) -> Normalization {
    let mut out = Dtd::new(dtd.root().to_string());
    let mut new_types = BTreeSet::new();
    let mut counter = 0usize;

    // Copy attribute declarations verbatim (Att' = Att, R' = R).
    for (name, decl) in dtd.elements() {
        out.declare_empty(name.clone());
        out.add_attributes(name.clone(), decl.attributes.iter().cloned());
    }

    for (name, decl) in dtd.elements() {
        let production = normalize_production(
            &decl.content,
            dtd,
            name,
            &mut out,
            &mut new_types,
            &mut counter,
        );
        out.define(name.clone(), production);
    }

    Normalization {
        dtd: out,
        new_types,
    }
}

/// Normalise the top of a content model, producing a normal-form production whose
/// non-trivial children are either original element types or freshly created ones.
fn normalize_production(
    re: &ContentModel,
    original: &Dtd,
    owner: &str,
    out: &mut Dtd,
    new_types: &mut BTreeSet<String>,
    counter: &mut usize,
) -> ContentModel {
    match re {
        Regex::Epsilon | Regex::Empty => Regex::Epsilon,
        Regex::Sym(s) => Regex::Sym(s.clone()),
        Regex::Concat(parts) => Regex::Concat(
            parts
                .iter()
                .map(|p| Regex::Sym(symbol_for(p, original, owner, out, new_types, counter)))
                .collect(),
        ),
        Regex::Alt(parts) => Regex::Alt(
            parts
                .iter()
                .map(|p| Regex::Sym(symbol_for(p, original, owner, out, new_types, counter)))
                .collect(),
        ),
        Regex::Star(inner) => Regex::Star(Box::new(Regex::Sym(symbol_for(
            inner, original, owner, out, new_types, counter,
        )))),
        // `x+` is `x, x*` and `x?` is `x + ε`; both rewritten through fresh types so the
        // result stays within the normal form.
        Regex::Plus(inner) => {
            let sym = symbol_for(inner, original, owner, out, new_types, counter);
            let star_sym = symbol_for(
                &Regex::Star(Box::new(Regex::Sym(sym.clone()))),
                original,
                owner,
                out,
                new_types,
                counter,
            );
            Regex::Concat(vec![Regex::Sym(sym), Regex::Sym(star_sym)])
        }
        Regex::Opt(inner) => {
            let sym = symbol_for(inner, original, owner, out, new_types, counter);
            let eps_sym = symbol_for(&Regex::Epsilon, original, owner, out, new_types, counter);
            Regex::Alt(vec![Regex::Sym(sym), Regex::Sym(eps_sym)])
        }
    }
}

/// The symbol standing for a sub-expression: the element type itself for leaves, a fresh
/// element type (with its own normalized production) otherwise.
fn symbol_for(
    re: &ContentModel,
    original: &Dtd,
    owner: &str,
    out: &mut Dtd,
    new_types: &mut BTreeSet<String>,
    counter: &mut usize,
) -> String {
    if let Regex::Sym(s) = re {
        return s.clone();
    }
    let fresh = fresh_name(original, owner, counter);
    out.declare_empty(fresh.clone());
    new_types.insert(fresh.clone());
    let production = normalize_production(re, original, owner, out, new_types, counter);
    out.define(fresh.clone(), production);
    fresh
}

fn fresh_name(original: &Dtd, owner: &str, counter: &mut usize) -> String {
    loop {
        let candidate = format!("_n{}_{owner}", *counter);
        *counter += 1;
        if !original.contains(&candidate) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::parse::parse_dtd;
    use xpsat_automata::{Dfa, Nfa};

    /// The word languages over the *original* alphabet must survive normalisation: the
    /// children of an original node in `N(D)` trees spell a word of the new production,
    /// and flattening the fresh types recovers the original language.  Here we check the
    /// weaker but structural property actually needed by Proposition 3.3: the normalized
    /// DTD is in normal form, its size is linearly bounded, and no construct appears
    /// that the original lacked.
    #[test]
    fn normalization_produces_normal_form() {
        let dtd = parse_dtd("r -> (a | b)*, c; a -> (c, c) | #; b -> c?; c -> #;").unwrap();
        let norm = normalize(&dtd);
        let class = classify(&norm.dtd);
        assert!(class.normalized, "N(D) must be normalized: {}", norm.dtd);
        // Linear size bound (generous constant).
        assert!(norm.dtd.size() <= 10 * dtd.size());
        // Fresh types are disjoint from original ones.
        for t in &norm.new_types {
            assert!(!dtd.contains(t));
        }
    }

    #[test]
    fn already_normalized_dtd_gets_no_new_types_for_simple_productions() {
        let dtd = parse_dtd("r -> a, b; a -> c | d; b -> e*; c -> #; d -> #; e -> #;").unwrap();
        let norm = normalize(&dtd);
        assert!(norm.new_types.is_empty(), "new types: {:?}", norm.new_types);
        assert_eq!(norm.dtd, dtd);
    }

    #[test]
    fn star_free_dtd_stays_star_free() {
        let dtd = parse_dtd("r -> (a, b) | (b, a); a -> #; b -> #;").unwrap();
        let norm = normalize(&dtd);
        assert!(!classify(&norm.dtd).has_star);
        assert!(classify(&norm.dtd).normalized);
    }

    /// Projecting the fresh types away from the normalized root production must give
    /// back the original root language.  We check it by substituting fresh types with
    /// their productions (they form a DAG) and comparing automata.
    #[test]
    fn flattening_fresh_types_recovers_the_original_language() {
        let dtd = parse_dtd("r -> (a | b)*, c, (a, c)?; a -> #; b -> #; c -> #;").unwrap();
        let norm = normalize(&dtd);

        fn flatten(re: &ContentModel, norm: &Normalization) -> ContentModel {
            match re {
                Regex::Sym(s) if norm.is_new(s) => {
                    let inner = norm.dtd.content(s).expect("declared").clone();
                    flatten(&inner, norm)
                }
                Regex::Sym(s) => Regex::Sym(s.clone()),
                Regex::Epsilon | Regex::Empty => re.clone(),
                Regex::Concat(parts) => {
                    Regex::concat(parts.iter().map(|p| flatten(p, norm)).collect())
                }
                Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| flatten(p, norm)).collect()),
                Regex::Star(inner) => Regex::star(flatten(inner, norm)),
                Regex::Plus(inner) => Regex::plus(flatten(inner, norm)),
                Regex::Opt(inner) => Regex::opt(flatten(inner, norm)),
            }
        }

        let flattened = flatten(norm.dtd.content("r").unwrap(), &norm);
        let original = dtd.content("r").unwrap();
        let d1 = Dfa::from_nfa(&Nfa::glushkov(&flattened));
        let d2 = Dfa::from_nfa(&Nfa::glushkov(original));
        assert!(d1.equivalent(&d2));
    }
}
