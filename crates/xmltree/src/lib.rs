//! Arena-based XML document trees.
//!
//! The paper models an XML document as a finite node-labelled *ordered* tree in which
//! every node additionally carries attribute values (Section 2.1).  This crate provides
//! exactly that model:
//!
//! * [`Document`] — an arena of nodes with a distinguished root, ordered children,
//!   string labels and string-valued attributes;
//! * traversal helpers (ancestors, descendants, siblings, pre-order) used by the XPath
//!   evaluator and by DTD validation;
//! * a small XML serialiser/parser for round-tripping documents in examples and tests;
//! * the streaming open/close-tag encoding (`stream`) that Section 7 uses to run word
//!   automata over documents.
//!
//! The crate deliberately has no dependencies: it is the lowest layer of the workspace.

pub mod document;
pub mod serialize;
pub mod stream;

pub use document::{Document, NodeId};
pub use stream::{stream, stream_selected, Tag};
