//! The streaming (open/close tag) encoding of documents.
//!
//! Section 7.3 of the paper proves its PSPACE upper bound by running two-way alternating
//! *word* automata over `stream(T)`, the sequence of opening and closing tags of a
//! document, and over `stream(T, m)`, the same sequence with one opening tag marked as
//! selected.  This module implements both encodings and the inverse mapping back to
//! positions, so the rest of the workspace (and its tests) can relate tree nodes to
//! stream positions exactly as the paper does.

use crate::document::{Document, NodeId};

/// One symbol of the streamed document alphabet `XML(Σ)` / `XMLsel(Σ)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tag {
    /// `〈A〉` — an opening tag; `selected` is the truth flag of the `XMLsel` alphabet
    /// (always `false` in plain `stream(T)` encodings).
    Open { label: String, selected: bool },
    /// `〈/A〉` — a closing tag.
    Close { label: String },
}

impl Tag {
    /// The element label carried by the tag.
    pub fn label(&self) -> &str {
        match self {
            Tag::Open { label, .. } | Tag::Close { label } => label,
        }
    }

    /// Is this an opening tag?
    pub fn is_open(&self) -> bool {
        matches!(self, Tag::Open { .. })
    }
}

/// `stream(T)`: the open/close tag sequence of the whole document.
pub fn stream(doc: &Document) -> Vec<Tag> {
    stream_with_selection(doc, None)
}

/// `stream(T, m)`: the tag sequence in which the opening tag of `selected` is marked.
pub fn stream_selected(doc: &Document, selected: NodeId) -> Vec<Tag> {
    stream_with_selection(doc, Some(selected))
}

fn stream_with_selection(doc: &Document, selected: Option<NodeId>) -> Vec<Tag> {
    let mut out = Vec::with_capacity(doc.len() * 2);
    emit(doc, doc.root(), selected, &mut out);
    out
}

fn emit(doc: &Document, node: NodeId, selected: Option<NodeId>, out: &mut Vec<Tag>) {
    out.push(Tag::Open {
        label: doc.label(node).to_string(),
        selected: selected == Some(node),
    });
    for &child in doc.children(node) {
        emit(doc, child, selected, out);
    }
    out.push(Tag::Close {
        label: doc.label(node).to_string(),
    });
}

/// The stream position `pos(n)` of the opening tag of each node, in node-id order.
///
/// This is the mapping the paper uses to start a word automaton "at" a tree node.
pub fn open_positions(doc: &Document) -> Vec<(NodeId, usize)> {
    let tags = stream(doc);
    let mut result = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_child_index: Vec<usize> = vec![0; doc.len()];
    for (pos, tag) in tags.iter().enumerate() {
        match tag {
            Tag::Open { .. } => {
                let node = match stack.last() {
                    None => doc.root(),
                    Some(&parent) => {
                        let idx = next_child_index[parent.0];
                        next_child_index[parent.0] += 1;
                        doc.children(parent)[idx]
                    }
                };
                result.push((node, pos));
                stack.push(node);
            }
            Tag::Close { .. } => {
                stack.pop();
            }
        }
    }
    result.sort();
    result
}

/// Rebuild a document from a well-formed tag stream.  Returns `None` when the stream is
/// not well nested or does not describe exactly one tree.
pub fn parse_stream(tags: &[Tag]) -> Option<Document> {
    let mut iter = tags.iter();
    let first = iter.next()?;
    let Tag::Open { label, .. } = first else {
        return None;
    };
    let mut doc = Document::new(label.clone());
    let mut stack = vec![doc.root()];
    for tag in iter {
        match tag {
            Tag::Open { label, .. } => {
                let parent = *stack.last()?;
                let id = doc.add_child(parent, label.clone());
                stack.push(id);
            }
            Tag::Close { label } => {
                let top = stack.pop()?;
                if doc.label(top) != label {
                    return None;
                }
                if stack.is_empty() {
                    // The root has been closed: nothing may follow (checked by caller
                    // position, since `iter` is consumed lazily we verify emptiness below).
                }
            }
        }
    }
    if stack.is_empty() {
        Some(doc)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut doc = Document::new("r");
        let a = doc.add_child(doc.root(), "a");
        doc.add_child(a, "b");
        doc.add_child(doc.root(), "c");
        doc
    }

    #[test]
    fn stream_is_well_nested() {
        let doc = sample();
        let tags = stream(&doc);
        let rendered: Vec<String> = tags
            .iter()
            .map(|t| match t {
                Tag::Open { label, .. } => format!("<{label}>"),
                Tag::Close { label } => format!("</{label}>"),
            })
            .collect();
        assert_eq!(rendered.join(""), "<r><a><b></b></a><c></c></r>");
    }

    #[test]
    fn selection_marks_exactly_one_open_tag() {
        let doc = sample();
        let target = doc.children(doc.root())[1]; // the c node
        let tags = stream_selected(&doc, target);
        let selected: Vec<&Tag> = tags
            .iter()
            .filter(|t| matches!(t, Tag::Open { selected: true, .. }))
            .collect();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].label(), "c");
    }

    #[test]
    fn open_positions_match_stream_order() {
        let doc = sample();
        let tags = stream(&doc);
        for (node, pos) in open_positions(&doc) {
            assert!(tags[pos].is_open());
            assert_eq!(tags[pos].label(), doc.label(node));
        }
    }

    #[test]
    fn parse_stream_round_trips() {
        let doc = sample();
        let tags = stream(&doc);
        let parsed = parse_stream(&tags).unwrap();
        assert_eq!(stream(&parsed), tags);
    }

    #[test]
    fn parse_stream_rejects_bad_nesting() {
        let tags = vec![
            Tag::Open {
                label: "a".into(),
                selected: false,
            },
            Tag::Close { label: "b".into() },
        ];
        assert!(parse_stream(&tags).is_none());
    }
}
