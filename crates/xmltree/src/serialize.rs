//! Serialisation of documents to a compact XML syntax, and parsing back.
//!
//! The syntax is the element-and-attribute subset of XML (no text nodes, no escaping of
//! exotic characters): exactly what the paper's data model contains.  It is used by the
//! examples, by `Display` for debugging witness trees, and round-trip tested.

use crate::document::{Document, NodeId};
use std::fmt;

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_xml(self))
    }
}

/// Serialise the document to a single-line XML string.
pub fn to_xml(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out);
    out
}

/// Serialise the document with two-space indentation, one element per line.
pub fn to_xml_pretty(doc: &Document) -> String {
    let mut out = String::new();
    write_node_pretty(doc, doc.root(), 0, &mut out);
    out
}

fn write_attrs(doc: &Document, node: NodeId, out: &mut String) {
    for (k, v) in doc.attrs(node) {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
}

fn write_node(doc: &Document, node: NodeId, out: &mut String) {
    let label = doc.label(node);
    out.push('<');
    out.push_str(label);
    write_attrs(doc, node, out);
    if doc.children(node).is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for &child in doc.children(node) {
        write_node(doc, child, out);
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

fn write_node_pretty(doc: &Document, node: NodeId, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let label = doc.label(node);
    out.push_str(&pad);
    out.push('<');
    out.push_str(label);
    write_attrs(doc, node, out);
    if doc.children(node).is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push_str(">\n");
    for &child in doc.children(node) {
        write_node_pretty(doc, child, indent + 1, out);
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(label);
    out.push_str(">\n");
}

/// Error raised by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse the element-and-attribute XML subset produced by [`to_xml`] / [`to_xml_pretty`].
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let doc = parser.parse_root()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing content after the root element"));
    }
    Ok(doc)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.pos < self.input.len() && self.input[self.pos] == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_root(&mut self) -> Result<Document, ParseError> {
        self.expect(b'<')?;
        let label = self.name()?;
        let mut doc = Document::new(label.clone());
        let root = doc.root();
        self.parse_attrs_and_children(&mut doc, root, &label)?;
        Ok(doc)
    }

    fn parse_attrs_and_children(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        label: &str,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Err(self.error("unexpected end of input in tag"));
            }
            match self.input[self.pos] {
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(());
                }
                b'>' => {
                    self.pos += 1;
                    return self.parse_children(doc, node, label);
                }
                _ => {
                    let attr = self.name()?;
                    self.expect(b'=')?;
                    self.expect(b'"')?;
                    let start = self.pos;
                    while self.pos < self.input.len() && self.input[self.pos] != b'"' {
                        self.pos += 1;
                    }
                    let value = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.expect(b'"')?;
                    doc.set_attr(node, attr, value);
                }
            }
        }
    }

    fn parse_children(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        label: &str,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            self.expect(b'<')?;
            if self.pos < self.input.len() && self.input[self.pos] == b'/' {
                self.pos += 1;
                let closing = self.name()?;
                if closing != label {
                    return Err(self.error(&format!(
                        "mismatched closing tag: expected </{label}>, found </{closing}>"
                    )));
                }
                self.expect(b'>')?;
                return Ok(());
            }
            let child_label = self.name()?;
            let child = doc.add_child(node, child_label.clone());
            self.parse_attrs_and_children(doc, child, &child_label)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_nested_elements_and_attributes() {
        let mut doc = Document::new("r");
        let a = doc.add_child(doc.root(), "a");
        doc.set_attr(a, "id", "1");
        doc.add_child(a, "b");
        doc.add_child(doc.root(), "c");
        assert_eq!(to_xml(&doc), "<r><a id=\"1\"><b/></a><c/></r>");
    }

    #[test]
    fn parse_round_trips() {
        let mut doc = Document::new("store");
        let book = doc.add_child(doc.root(), "book");
        doc.set_attr(book, "isbn", "12-34");
        doc.add_child(book, "title");
        let author = doc.add_child(book, "author");
        doc.set_attr(author, "born", "1906");
        doc.add_child(doc.root(), "magazine");

        let text = to_xml(&doc);
        let parsed = parse(&text).unwrap();
        assert_eq!(to_xml(&parsed), text);

        let pretty = to_xml_pretty(&doc);
        let parsed_pretty = parse(&pretty).unwrap();
        assert_eq!(to_xml(&parsed_pretty), text);
    }

    #[test]
    fn parse_rejects_mismatched_tags() {
        let err = parse("<a><b></a></a>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/> ").is_ok());
    }
}
