//! The document tree itself: an arena of labelled, attributed, ordered nodes.

use std::collections::BTreeMap;

/// Identifier of a node within its [`Document`] arena.
///
/// Node ids are never reused; removing subtrees is not supported (the satisfiability
/// engines only ever *grow* witness trees), which keeps ids stable for the lifetime of
/// the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

#[derive(Debug, Clone)]
struct NodeData {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    attrs: BTreeMap<String, String>,
}

/// A finite node-labelled ordered tree with attribute values, as in Section 2.1 of the
/// paper.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
}

impl Document {
    /// Create a document consisting of a single root node with the given label.
    pub fn new(root_label: impl Into<String>) -> Document {
        Document {
            nodes: vec![NodeData {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                attrs: BTreeMap::new(),
            }],
        }
    }

    /// The root node (always node 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Append a new child with the given label as the *last* child of `parent`.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            attrs: BTreeMap::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Set (or overwrite) an attribute value on a node.
    pub fn set_attr(&mut self, node: NodeId, name: impl Into<String>, value: impl Into<String>) {
        self.nodes[node.0].attrs.insert(name.into(), value.into());
    }

    /// The label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.0].label
    }

    /// The attribute map of a node.
    pub fn attrs(&self, node: NodeId) -> &BTreeMap<String, String> {
        &self.nodes[node.0].attrs
    }

    /// The value of one attribute, if present.
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&str> {
        self.nodes[node.0].attrs.get(name).map(String::as_str)
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0].parent
    }

    /// The ordered children of a node.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0].children
    }

    /// The labels of the ordered children of a node (the word that the DTD's content
    /// model constrains).
    pub fn child_labels(&self, node: NodeId) -> Vec<String> {
        self.children(node)
            .iter()
            .map(|&c| self.label(c).to_string())
            .collect()
    }

    /// Proper ancestors of a node, nearest first.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(node);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Descendants of a node in pre-order, *excluding* the node itself.
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(node).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().rev().copied());
        }
        out
    }

    /// All nodes in pre-order (root first).
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut out = vec![self.root()];
        out.extend(self.descendants(self.root()));
        out
    }

    /// The position of `node` among its siblings (0-based); `None` for the root.
    pub fn sibling_index(&self, node: NodeId) -> Option<usize> {
        let parent = self.parent(node)?;
        self.children(parent).iter().position(|&c| c == node)
    }

    /// The immediate right sibling, if any.
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        let parent = self.parent(node)?;
        let idx = self.sibling_index(node)?;
        self.children(parent).get(idx + 1).copied()
    }

    /// The immediate left sibling, if any.
    pub fn prev_sibling(&self, node: NodeId) -> Option<NodeId> {
        let parent = self.parent(node)?;
        let idx = self.sibling_index(node)?;
        if idx == 0 {
            None
        } else {
            Some(self.children(parent)[idx - 1])
        }
    }

    /// All right siblings in document order (nearest first), excluding the node.
    pub fn following_siblings(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.next_sibling(node);
        while let Some(n) = cur {
            out.push(n);
            cur = self.next_sibling(n);
        }
        out
    }

    /// All left siblings (nearest first), excluding the node.
    pub fn preceding_siblings(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.prev_sibling(node);
        while let Some(n) = cur {
            out.push(n);
            cur = self.prev_sibling(n);
        }
        out
    }

    /// Depth of a node: the root has depth 0.
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).len()
    }

    /// The maximum depth over all nodes.
    pub fn height(&self) -> usize {
        self.all_nodes()
            .into_iter()
            .map(|n| self.depth(n))
            .max()
            .unwrap_or(0)
    }

    /// The maximum number of children over all nodes (the tree's width / out-degree).
    pub fn max_out_degree(&self) -> usize {
        self.all_nodes()
            .into_iter()
            .map(|n| self.children(n).len())
            .max()
            .unwrap_or(0)
    }

    /// Is `anc` an ancestor of `node` or equal to it (the `ancestor-or-self` relation)?
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        if anc == node {
            return true;
        }
        self.ancestors(node).contains(&anc)
    }

    /// Graft a deep copy of `other`'s subtree rooted at `other_node` as the last child of
    /// `parent` in `self`.  Returns the id of the copied root.
    pub fn graft(&mut self, parent: NodeId, other: &Document, other_node: NodeId) -> NodeId {
        let new_root = self.add_child(parent, other.label(other_node));
        for (k, v) in other.attrs(other_node) {
            self.set_attr(new_root, k.clone(), v.clone());
        }
        for &child in other.children(other_node) {
            self.graft(new_root, other, child);
        }
        new_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId, NodeId) {
        // r -> a(b, c), d
        let mut doc = Document::new("r");
        let a = doc.add_child(doc.root(), "a");
        let b = doc.add_child(a, "b");
        let c = doc.add_child(a, "c");
        let d = doc.add_child(doc.root(), "d");
        (doc, a, b, c, d)
    }

    #[test]
    fn structure_queries() {
        let (doc, a, b, c, d) = sample();
        assert_eq!(doc.len(), 5);
        assert_eq!(doc.label(doc.root()), "r");
        assert_eq!(doc.children(doc.root()), &[a, d]);
        assert_eq!(doc.child_labels(a), vec!["b", "c"]);
        assert_eq!(doc.parent(b), Some(a));
        assert_eq!(doc.ancestors(b), vec![a, doc.root()]);
        assert_eq!(doc.descendants(doc.root()), vec![a, b, c, d]);
        assert_eq!(doc.depth(b), 2);
        assert_eq!(doc.height(), 2);
        assert_eq!(doc.max_out_degree(), 2);
    }

    #[test]
    fn sibling_navigation() {
        let (doc, a, b, c, d) = sample();
        assert_eq!(doc.next_sibling(a), Some(d));
        assert_eq!(doc.prev_sibling(d), Some(a));
        assert_eq!(doc.next_sibling(d), None);
        assert_eq!(doc.prev_sibling(a), None);
        assert_eq!(doc.following_siblings(b), vec![c]);
        assert_eq!(doc.preceding_siblings(c), vec![b]);
        assert_eq!(doc.sibling_index(d), Some(1));
        assert_eq!(doc.sibling_index(doc.root()), None);
    }

    #[test]
    fn attributes() {
        let (mut doc, a, ..) = sample();
        doc.set_attr(a, "id", "42");
        assert_eq!(doc.attr(a, "id"), Some("42"));
        assert_eq!(doc.attr(a, "missing"), None);
        doc.set_attr(a, "id", "43");
        assert_eq!(doc.attr(a, "id"), Some("43"));
    }

    #[test]
    fn ancestor_or_self() {
        let (doc, a, b, _, d) = sample();
        assert!(doc.is_ancestor_or_self(doc.root(), b));
        assert!(doc.is_ancestor_or_self(a, b));
        assert!(doc.is_ancestor_or_self(b, b));
        assert!(!doc.is_ancestor_or_self(d, b));
    }

    #[test]
    fn graft_copies_subtrees() {
        let (mut doc, _, _, _, d) = sample();
        let mut other = Document::new("x");
        let y = other.add_child(other.root(), "y");
        other.set_attr(y, "k", "v");
        let copied = doc.graft(d, &other, other.root());
        assert_eq!(doc.label(copied), "x");
        assert_eq!(doc.children(copied).len(), 1);
        let copied_y = doc.children(copied)[0];
        assert_eq!(doc.label(copied_y), "y");
        assert_eq!(doc.attr(copied_y, "k"), Some("v"));
    }
}

impl Document {
    /// Remove every node with id `>= keep`, restoring the document to an earlier state.
    ///
    /// Node ids are allocated sequentially and never reused, so a prefix of the arena is
    /// always a valid earlier snapshot; backtracking search engines (the NP witness
    /// search of Theorem 4.4) rely on this to undo speculative expansions cheaply.
    /// Panics if `keep` is zero (the root cannot be removed).
    pub fn truncate(&mut self, keep: usize) {
        assert!(keep >= 1, "cannot truncate away the root");
        if keep >= self.nodes.len() {
            return;
        }
        self.nodes.truncate(keep);
        for node in &mut self.nodes {
            node.children.retain(|c| c.0 < keep);
        }
    }

    /// The current number of allocated nodes; pass to [`Document::truncate`] to restore.
    pub fn snapshot(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod truncate_tests {
    use super::*;

    #[test]
    fn truncate_restores_snapshots() {
        let mut doc = Document::new("r");
        let a = doc.add_child(doc.root(), "a");
        let snap = doc.snapshot();
        let b = doc.add_child(doc.root(), "b");
        doc.add_child(b, "c");
        doc.set_attr(a, "x", "1");
        assert_eq!(doc.len(), 4);
        doc.truncate(snap);
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.children(doc.root()), &[a]);
        assert_eq!(doc.attr(a, "x"), Some("1"));
    }

    #[test]
    #[should_panic(expected = "cannot truncate away the root")]
    fn truncating_the_root_panics() {
        let mut doc = Document::new("r");
        doc.truncate(0);
    }
}
