//! The `inverse` transformation of Proposition 3.2 (after Marx & de Rijke 2005).
//!
//! For every path `p` and nodes `n, n'` of any tree `T`:
//! `T ⊨ p(n, n')` iff `T ⊨ inverse(p)(n', n)`.
//!
//! The paper uses it to reduce containment to (un)satisfiability for fragments that are
//! closed under inversion: `p1 ⊆ p2` under `D` iff `p1[¬(inverse(p2)[¬↑])]` is
//! unsatisfiable under `D` — the inner `[¬↑]` being the root test.  Both the inverse and
//! the containment query builder live here; the decision procedure that consumes them is
//! in `xpsat-core`.

use crate::ast::{Path, Qualifier};

/// `inverse(p)`: the converse relation of `p`, expressed in the same XPath class.
pub fn inverse(p: &Path) -> Path {
    match p {
        Path::Empty => Path::Empty,
        // (1) if p = l then inverse(p) = ε[lab() = l]/↑
        Path::Label(l) => Path::seq(
            Path::Empty.filter(Qualifier::LabelIs(l.clone())),
            Path::Parent,
        ),
        // (2)–(4) axis inversions
        Path::Wildcard => Path::Parent,
        Path::Parent => Path::Wildcard,
        Path::DescendantOrSelf => Path::AncestorOrSelf,
        Path::AncestorOrSelf => Path::DescendantOrSelf,
        Path::NextSibling => Path::PrevSibling,
        Path::PrevSibling => Path::NextSibling,
        Path::FollowingSiblingOrSelf => Path::PrecedingSiblingOrSelf,
        Path::PrecedingSiblingOrSelf => Path::FollowingSiblingOrSelf,
        // (5) inverse(p3/p4) = inverse(p4)/inverse(p3)
        Path::Seq(a, b) => Path::seq(inverse(b), inverse(a)),
        // (6) inverse(p3 ∪ p4) = inverse(p3) ∪ inverse(p4)
        Path::Union(a, b) => Path::union(inverse(a), inverse(b)),
        // (7) inverse(p3[q]) = ε[q]/inverse(p3)
        Path::Filter(a, q) => Path::seq(Path::Empty.filter((**q).clone()), inverse(a)),
    }
}

/// The root test `[¬↑]`: holds exactly at the root of a document.
pub fn root_test() -> Qualifier {
    Qualifier::not(Qualifier::path(Path::Parent))
}

/// The containment witness query of Proposition 3.2(3):
/// `p1[¬(inverse(p2)[¬↑])]` — satisfiable under `D` iff `p1 ⊄ p2` under `D`.
pub fn containment_witness_query(p1: &Path, p2: &Path) -> Path {
    let back = inverse(p2).filter(root_test());
    p1.clone().filter(Qualifier::not(Qualifier::path(back)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_from, selects};
    use crate::parse::parse_path;
    use xpsat_xmltree::Document;

    fn sample() -> Document {
        let mut doc = Document::new("r");
        let a = doc.add_child(doc.root(), "a");
        doc.add_child(a, "b");
        let c = doc.add_child(a, "c");
        doc.add_child(c, "b");
        doc.add_child(doc.root(), "c");
        doc
    }

    /// Check `T ⊨ p(n, n') ⇔ T ⊨ inverse(p)(n', n)` exhaustively over all node pairs.
    fn check_inverse_semantics(doc: &Document, p: &Path) {
        let inv = inverse(p);
        let nodes = doc.all_nodes();
        for &n in &nodes {
            let forward = eval_from(doc, n, p);
            for &m in &nodes {
                let forward_holds = forward.contains(&m);
                let backward_holds = eval_from(doc, m, &inv).contains(&n);
                assert_eq!(
                    forward_holds, backward_holds,
                    "p = {p}, inverse = {inv}, n = {n:?}, m = {m:?}"
                );
            }
        }
    }

    #[test]
    fn inverse_is_the_converse_relation() {
        let doc = sample();
        for q in [
            "a", "*", "**", "a/b", "a/c/b", "a[b]/c", "a | c", "**/b", "a/>", "a/>>",
        ] {
            check_inverse_semantics(&doc, &parse_path(q).unwrap());
        }
    }

    #[test]
    fn root_test_selects_only_the_root() {
        let doc = sample();
        let p = Path::DescendantOrSelf.filter(root_test());
        let result = selects(&doc, &p);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&doc.root()));
    }

    #[test]
    fn containment_witness_query_detects_non_containment() {
        use crate::eval::satisfies;
        let doc = sample();
        // a/b ⊆ a/* on this tree: the witness query must be unsatisfiable on it.
        let p1 = parse_path("a/b").unwrap();
        let p2 = parse_path("a/*").unwrap();
        assert!(!satisfies(&doc, &containment_witness_query(&p1, &p2)));
        // a/* ⊄ a/b on this tree (c is a witness): the witness query must be satisfiable.
        assert!(satisfies(&doc, &containment_witness_query(&p2, &p1)));
    }
}
