//! Abstract syntax of the XPath class studied in the paper.
//!
//! The class `X(↓, ↓*, ↑, ↑*, →, →*, ←, ←*, ∪, [], =, ¬)` is defined in Sections 2.2
//! and 7.1:
//!
//! ```text
//! p ::= ε | l | ↓ | ↓* | ↑ | ↑* | → | →* | ← | ←* | p/p | p ∪ p | p[q]
//! q ::= p | lab() = A | p/@a op 'c' | p/@a op p'/@b | q ∧ q | q ∨ q | ¬q
//! ```
//!
//! where `op ∈ {=, ≠}`.  Fragments are obtained by restricting the allowed operators;
//! see [`crate::features`].

use std::fmt;

/// Comparison operator on attribute values (`=` or `≠`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// Equality of data values.
    Eq,
    /// Disequality of data values.
    Ne,
}

impl CmpOp {
    /// Apply the comparison to two string values.
    pub fn eval(self, left: &str, right: &str) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
        }
    }

    /// The complementary operator.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => write!(f, "="),
            CmpOp::Ne => write!(f, "!="),
        }
    }
}

/// A path expression: a binary predicate over the nodes of a document.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Path {
    /// `ε` — the self axis (identity relation).
    Empty,
    /// `l` — move to a child labelled `l`.
    Label(String),
    /// `↓` — move to any child (the wildcard).
    Wildcard,
    /// `↓*` — the descendant-or-self axis.
    DescendantOrSelf,
    /// `↑` — move to the parent.
    Parent,
    /// `↑*` — the ancestor-or-self axis.
    AncestorOrSelf,
    /// `→` — move to the immediate right sibling.
    NextSibling,
    /// `→*` — the following-sibling-or-self axis.
    FollowingSiblingOrSelf,
    /// `←` — move to the immediate left sibling.
    PrevSibling,
    /// `←*` — the preceding-sibling-or-self axis.
    PrecedingSiblingOrSelf,
    /// `p1/p2` — relational composition.
    Seq(Box<Path>, Box<Path>),
    /// `p1 ∪ p2` — union.
    Union(Box<Path>, Box<Path>),
    /// `p[q]` — filter the targets of `p` by qualifier `q`.
    Filter(Box<Path>, Box<Qualifier>),
}

/// A qualifier: a unary predicate over the nodes of a document.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Qualifier {
    /// `p` — some node is reachable via `p`.
    Path(Path),
    /// `lab() = A` — the node is labelled `A`.
    LabelIs(String),
    /// `p/@a op 'c'` — some node reachable via `p` has attribute `a` standing in
    /// relation `op` to the constant `c`.
    AttrCmp {
        /// Navigation to the attribute-carrying node.
        path: Path,
        /// Attribute name.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Constant being compared against.
        value: String,
    },
    /// `p/@a op p'/@b` — a data-value join between two reachable nodes.
    AttrJoin {
        /// Navigation to the left node.
        left: Path,
        /// Left attribute name.
        left_attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Navigation to the right node.
        right: Path,
        /// Right attribute name.
        right_attr: String,
    },
    /// Conjunction.
    And(Box<Qualifier>, Box<Qualifier>),
    /// Disjunction.
    Or(Box<Qualifier>, Box<Qualifier>),
    /// Negation.
    Not(Box<Qualifier>),
}

impl Path {
    /// A child step with the given label.
    pub fn label(name: impl Into<String>) -> Path {
        Path::Label(name.into())
    }

    /// `p1/p2`, simplifying `ε` units away.
    pub fn seq(p1: Path, p2: Path) -> Path {
        match (p1, p2) {
            (Path::Empty, p) | (p, Path::Empty) => p,
            (a, b) => Path::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Compose a whole sequence of steps (right-associated).
    pub fn seq_all<I: IntoIterator<Item = Path>>(parts: I) -> Path {
        let mut parts: Vec<Path> = parts.into_iter().collect();
        if parts.is_empty() {
            return Path::Empty;
        }
        let mut acc = parts.pop().expect("nonempty");
        while let Some(p) = parts.pop() {
            acc = Path::seq(p, acc);
        }
        acc
    }

    /// `p1 ∪ p2`.
    pub fn union(p1: Path, p2: Path) -> Path {
        Path::Union(Box::new(p1), Box::new(p2))
    }

    /// Union of a nonempty sequence of alternatives (right-associated).
    pub fn union_all<I: IntoIterator<Item = Path>>(parts: I) -> Path {
        let mut parts: Vec<Path> = parts.into_iter().collect();
        let mut acc = parts
            .pop()
            .expect("union_all requires at least one alternative");
        while let Some(p) = parts.pop() {
            acc = Path::union(p, acc);
        }
        acc
    }

    /// `p[q]`.
    pub fn filter(self, q: Qualifier) -> Path {
        Path::Filter(Box::new(self), Box::new(q))
    }

    /// `↓^n` — the n-fold wildcard chain (`ε` when `n = 0`), as used throughout the
    /// paper's reductions (e.g. `↓2/C1/↑3/...` in Proposition 4.3).
    pub fn wildcard_chain(n: usize) -> Path {
        Path::seq_all(std::iter::repeat_n(Path::Wildcard, n))
    }

    /// `↑^n` — the n-fold parent chain.
    pub fn parent_chain(n: usize) -> Path {
        Path::seq_all(std::iter::repeat_n(Path::Parent, n))
    }

    /// An n-fold chain of child steps with the same label (`l/l/.../l`).
    pub fn label_chain(name: &str, n: usize) -> Path {
        Path::seq_all(std::iter::repeat_n(Path::label(name), n))
    }

    /// Number of AST nodes of the path (counting embedded qualifiers), the `|p|` of the
    /// paper's complexity statements.
    pub fn size(&self) -> usize {
        match self {
            Path::Empty
            | Path::Label(_)
            | Path::Wildcard
            | Path::DescendantOrSelf
            | Path::Parent
            | Path::AncestorOrSelf
            | Path::NextSibling
            | Path::FollowingSiblingOrSelf
            | Path::PrevSibling
            | Path::PrecedingSiblingOrSelf => 1,
            Path::Seq(a, b) | Path::Union(a, b) => 1 + a.size() + b.size(),
            Path::Filter(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// Is this one of the primitive (single-step) axes?
    pub fn is_step(&self) -> bool {
        !matches!(self, Path::Seq(..) | Path::Union(..) | Path::Filter(..))
    }

    /// Re-associate all `Seq` spines to the right: `(a/b)/c` becomes `a/(b/c)`.
    ///
    /// The satisfiability engines rely on right-nesting so that the "tail" of every
    /// composition is itself a sub-expression of the closure.
    pub fn right_assoc(&self) -> Path {
        match self {
            Path::Seq(a, b) => {
                let a = a.right_assoc();
                let b = b.right_assoc();
                match a {
                    Path::Seq(a1, a2) => {
                        Path::Seq(a1, Box::new(Path::Seq(a2, Box::new(b)).right_assoc()))
                    }
                    other => Path::Seq(Box::new(other), Box::new(b)),
                }
            }
            Path::Union(a, b) => Path::Union(Box::new(a.right_assoc()), Box::new(b.right_assoc())),
            Path::Filter(p, q) => {
                Path::Filter(Box::new(p.right_assoc()), Box::new(q.right_assoc()))
            }
            other => other.clone(),
        }
    }

    /// All labels mentioned anywhere in the path (child steps, label tests).
    pub fn mentioned_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_labels(&self, out: &mut Vec<String>) {
        match self {
            Path::Label(l) => out.push(l.clone()),
            Path::Seq(a, b) | Path::Union(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
            Path::Filter(p, q) => {
                p.collect_labels(out);
                q.collect_labels(out);
            }
            _ => {}
        }
    }

    /// All attribute names mentioned in qualifiers of the path.
    pub fn mentioned_attributes(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<String>) {
        match self {
            Path::Seq(a, b) | Path::Union(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Path::Filter(p, q) => {
                p.collect_attrs(out);
                q.collect_attrs(out);
            }
            _ => {}
        }
    }
}

impl Qualifier {
    /// Conjunction of a nonempty list of qualifiers (right-associated).
    pub fn and_all<I: IntoIterator<Item = Qualifier>>(parts: I) -> Qualifier {
        let mut parts: Vec<Qualifier> = parts.into_iter().collect();
        let mut acc = parts.pop().expect("and_all requires at least one conjunct");
        while let Some(q) = parts.pop() {
            acc = Qualifier::And(Box::new(q), Box::new(acc));
        }
        acc
    }

    /// Disjunction of a nonempty list of qualifiers (right-associated).
    pub fn or_all<I: IntoIterator<Item = Qualifier>>(parts: I) -> Qualifier {
        let mut parts: Vec<Qualifier> = parts.into_iter().collect();
        let mut acc = parts.pop().expect("or_all requires at least one disjunct");
        while let Some(q) = parts.pop() {
            acc = Qualifier::Or(Box::new(q), Box::new(acc));
        }
        acc
    }

    /// Negation.  (An associated constructor, not `std::ops::Not` — it consumes a
    /// qualifier and is called as `Qualifier::not(..)` throughout the workspace.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(q: Qualifier) -> Qualifier {
        Qualifier::Not(Box::new(q))
    }

    /// A path-existence qualifier.
    pub fn path(p: Path) -> Qualifier {
        Qualifier::Path(p)
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Qualifier::Path(p) => p.size(),
            Qualifier::LabelIs(_) => 1,
            Qualifier::AttrCmp { path, .. } => 1 + path.size(),
            Qualifier::AttrJoin { left, right, .. } => 1 + left.size() + right.size(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => 1 + a.size() + b.size(),
            Qualifier::Not(q) => 1 + q.size(),
        }
    }

    /// Re-associate every embedded `Seq` to the right (see [`Path::right_assoc`]).
    pub fn right_assoc(&self) -> Qualifier {
        match self {
            Qualifier::Path(p) => Qualifier::Path(p.right_assoc()),
            Qualifier::LabelIs(l) => Qualifier::LabelIs(l.clone()),
            Qualifier::AttrCmp {
                path,
                attr,
                op,
                value,
            } => Qualifier::AttrCmp {
                path: path.right_assoc(),
                attr: attr.clone(),
                op: *op,
                value: value.clone(),
            },
            Qualifier::AttrJoin {
                left,
                left_attr,
                op,
                right,
                right_attr,
            } => Qualifier::AttrJoin {
                left: left.right_assoc(),
                left_attr: left_attr.clone(),
                op: *op,
                right: right.right_assoc(),
                right_attr: right_attr.clone(),
            },
            Qualifier::And(a, b) => {
                Qualifier::And(Box::new(a.right_assoc()), Box::new(b.right_assoc()))
            }
            Qualifier::Or(a, b) => {
                Qualifier::Or(Box::new(a.right_assoc()), Box::new(b.right_assoc()))
            }
            Qualifier::Not(q) => Qualifier::Not(Box::new(q.right_assoc())),
        }
    }

    pub(crate) fn collect_labels(&self, out: &mut Vec<String>) {
        match self {
            Qualifier::Path(p) => p.collect_labels(out),
            Qualifier::LabelIs(l) => out.push(l.clone()),
            Qualifier::AttrCmp { path, .. } => path.collect_labels(out),
            Qualifier::AttrJoin { left, right, .. } => {
                left.collect_labels(out);
                right.collect_labels(out);
            }
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
            Qualifier::Not(q) => q.collect_labels(out),
        }
    }

    pub(crate) fn collect_attrs(&self, out: &mut Vec<String>) {
        match self {
            Qualifier::Path(p) => p.collect_attrs(out),
            Qualifier::LabelIs(_) => {}
            Qualifier::AttrCmp { path, attr, .. } => {
                path.collect_attrs(out);
                out.push(attr.clone());
            }
            Qualifier::AttrJoin {
                left,
                left_attr,
                right,
                right_attr,
                ..
            } => {
                left.collect_attrs(out);
                right.collect_attrs(out);
                out.push(left_attr.clone());
                out.push(right_attr.clone());
            }
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Qualifier::Not(q) => q.collect_attrs(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_simplifies_epsilon() {
        assert_eq!(Path::seq(Path::Empty, Path::label("a")), Path::label("a"));
        assert_eq!(Path::seq(Path::label("a"), Path::Empty), Path::label("a"));
        assert_eq!(Path::seq_all(vec![]), Path::Empty);
    }

    #[test]
    fn chains() {
        assert_eq!(Path::wildcard_chain(0), Path::Empty);
        assert_eq!(Path::wildcard_chain(1), Path::Wildcard);
        assert_eq!(Path::wildcard_chain(2).size(), 3);
        assert_eq!(Path::label_chain("X", 3).mentioned_labels(), vec!["X"]);
    }

    #[test]
    fn right_assoc_normalises_spines() {
        let left = Path::Seq(
            Box::new(Path::Seq(
                Box::new(Path::label("a")),
                Box::new(Path::label("b")),
            )),
            Box::new(Path::label("c")),
        );
        let right = left.right_assoc();
        match &right {
            Path::Seq(a, rest) => {
                assert_eq!(**a, Path::label("a"));
                match &**rest {
                    Path::Seq(b, c) => {
                        assert_eq!(**b, Path::label("b"));
                        assert_eq!(**c, Path::label("c"));
                    }
                    other => panic!("expected right nesting, got {other:?}"),
                }
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn size_counts_qualifiers() {
        let p = Path::label("a").filter(Qualifier::And(
            Box::new(Qualifier::path(Path::label("b"))),
            Box::new(Qualifier::LabelIs("a".into())),
        ));
        assert_eq!(p.size(), 1 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn mentioned_labels_and_attributes() {
        let p = Path::seq(
            Path::label("a"),
            Path::Wildcard.filter(Qualifier::AttrCmp {
                path: Path::label("b"),
                attr: "id".into(),
                op: CmpOp::Eq,
                value: "1".into(),
            }),
        );
        assert_eq!(p.mentioned_labels(), vec!["a", "b"]);
        assert_eq!(p.mentioned_attributes(), vec!["id"]);
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval("x", "x"));
        assert!(!CmpOp::Eq.eval("x", "y"));
        assert!(CmpOp::Ne.eval("x", "y"));
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
    }
}
