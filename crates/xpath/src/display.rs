//! Textual rendering of paths and qualifiers.
//!
//! The syntax is the ASCII form of the paper's notation, chosen so that the parser in
//! [`crate::parse`] can read back exactly what is printed:
//!
//! | paper | text  |            | paper        | text   |
//! |-------|-------|------------|--------------|--------|
//! | `ε`   | `.`   |            | `↑`          | `..`   |
//! | `l`   | `l`   |            | `↑*`         | `^*`   |
//! | `↓`   | `*`   |            | `→` / `→*`   | `>` / `>>` |
//! | `↓*`  | `**`  |            | `←` / `←*`   | `<` / `<<` |
//! | `p/p` | `p/p` |            | `p ∪ p`      | `p \| p` |
//! | `p[q]`| `p[q]`|            | `¬q`         | `not(q)` |
//! | `q∧q` | `q and q` |        | `q∨q`        | `q or q` |
//! | `lab() = A` | `lab() = A` | `p/@a = 'c'` | `p/@a = "c"` |

use crate::ast::{Path, Qualifier};
use std::fmt;

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Empty => write!(f, "."),
            Path::Label(l) => write!(f, "{l}"),
            Path::Wildcard => write!(f, "*"),
            Path::DescendantOrSelf => write!(f, "**"),
            Path::Parent => write!(f, ".."),
            Path::AncestorOrSelf => write!(f, "^*"),
            Path::NextSibling => write!(f, ">"),
            Path::FollowingSiblingOrSelf => write!(f, ">>"),
            Path::PrevSibling => write!(f, "<"),
            Path::PrecedingSiblingOrSelf => write!(f, "<<"),
            Path::Seq(a, b) => {
                write_seq_operand(f, a)?;
                write!(f, "/")?;
                write_seq_operand(f, b)
            }
            Path::Union(a, b) => write!(f, "{a} | {b}"),
            Path::Filter(p, q) => {
                if matches!(**p, Path::Seq(..) | Path::Union(..)) {
                    write!(f, "({p})[{q}]")
                } else {
                    write!(f, "{p}[{q}]")
                }
            }
        }
    }
}

fn write_seq_operand(f: &mut fmt::Formatter<'_>, p: &Path) -> fmt::Result {
    if matches!(p, Path::Union(..)) {
        write!(f, "({p})")
    } else {
        write!(f, "{p}")
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::Path(p) => write!(f, "{p}"),
            Qualifier::LabelIs(l) => write!(f, "lab() = {l}"),
            Qualifier::AttrCmp {
                path,
                attr,
                op,
                value,
            } => {
                write_attr_access(f, path, attr)?;
                write!(f, " {op} \"{value}\"")
            }
            Qualifier::AttrJoin {
                left,
                left_attr,
                op,
                right,
                right_attr,
            } => {
                write_attr_access(f, left, left_attr)?;
                write!(f, " {op} ")?;
                write_attr_access(f, right, right_attr)
            }
            Qualifier::And(a, b) => {
                write_bool_operand(f, a)?;
                write!(f, " and ")?;
                write_bool_operand(f, b)
            }
            Qualifier::Or(a, b) => {
                write_bool_operand(f, a)?;
                write!(f, " or ")?;
                write_bool_operand(f, b)
            }
            Qualifier::Not(q) => write!(f, "not({q})"),
        }
    }
}

fn write_attr_access(f: &mut fmt::Formatter<'_>, path: &Path, attr: &str) -> fmt::Result {
    match path {
        Path::Empty => write!(f, "@{attr}"),
        Path::Union(..) => write!(f, "({path})/@{attr}"),
        _ => write!(f, "{path}/@{attr}"),
    }
}

fn write_bool_operand(f: &mut fmt::Formatter<'_>, q: &Qualifier) -> fmt::Result {
    // `and`/`or` operands are parenthesised whenever they are themselves connectives,
    // which keeps the printed form unambiguous and structurally round-trippable.
    if matches!(q, Qualifier::And(..) | Qualifier::Or(..)) {
        write!(f, "({q})")
    } else {
        write!(f, "{q}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn renders_paper_notation() {
        let p = Path::seq(
            Path::label("a"),
            Path::seq(Path::DescendantOrSelf, Path::label("b")),
        );
        assert_eq!(p.to_string(), "a/**/b");

        let q = Path::Empty.filter(Qualifier::And(
            Box::new(Qualifier::path(Path::label("x"))),
            Box::new(Qualifier::not(Qualifier::LabelIs("y".into()))),
        ));
        assert_eq!(q.to_string(), ".[x and not(lab() = y)]");
    }

    #[test]
    fn renders_attribute_comparisons() {
        let q = Qualifier::AttrCmp {
            path: Path::Empty,
            attr: "s".into(),
            op: CmpOp::Eq,
            value: "0".into(),
        };
        assert_eq!(q.to_string(), "@s = \"0\"");

        let join = Qualifier::AttrJoin {
            left: Path::label("a"),
            left_attr: "id".into(),
            op: CmpOp::Ne,
            right: Path::seq(Path::Wildcard, Path::label("b")),
            right_attr: "id".into(),
        };
        assert_eq!(join.to_string(), "a/@id != */b/@id");
    }

    #[test]
    fn union_inside_sequence_is_parenthesised() {
        let p = Path::seq(
            Path::union(Path::label("a"), Path::label("b")),
            Path::label("c"),
        );
        assert_eq!(p.to_string(), "(a | b)/c");
    }

    #[test]
    fn filter_over_sequence_is_parenthesised() {
        let p =
            Path::seq(Path::label("a"), Path::label("b")).filter(Qualifier::path(Path::label("c")));
        assert_eq!(p.to_string(), "(a/b)[c]");
    }
}
