//! Parser for the textual query syntax described in [`crate::display`].
//!
//! The grammar (recursive descent, with backtracking only inside qualifiers):
//!
//! ```text
//! path      := sequence ("|" sequence)*
//! sequence  := step ("/" step)*
//! step      := primary ("[" qualifier "]")*
//! primary   := "." | ".." | "*" | "**" | "^*" | ">" | ">>" | "<" | "<<"
//!            | NAME | "(" path ")"
//! qualifier := conj ("or" conj)*
//! conj      := unary ("and" unary)*
//! unary     := "not" "(" qualifier ")" | "lab()" "=" NAME | comparison | path
//!            | "(" qualifier ")"
//! comparison:= attr-access ("=" | "!=") (STRING | attr-access)
//! attr-access := [path "/"] "@" NAME
//! ```
//!
//! `and`, `or` and `not` are reserved words and cannot be used as element-type names in
//! the textual syntax (the programmatic AST has no such restriction).

use crate::ast::{CmpOp, Path, Qualifier};
use std::fmt;

/// Error raised by [`parse_path`] / [`parse_qualifier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Offset (in tokens) at which the problem was found.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a path expression.
pub fn parse_path(input: &str) -> Result<Path, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let path = p.path()?;
    p.expect_end()?;
    Ok(path)
}

/// Parse a qualifier expression.
pub fn parse_qualifier(input: &str) -> Result<Qualifier, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.qualifier()?;
    p.expect_end()?;
    Ok(q)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Name(String),
    Str(String),
    Slash,
    Pipe,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Dot,
    DotDot,
    Star,
    StarStar,
    CaretStar,
    Gt,
    GtGt,
    Lt,
    LtLt,
    At,
    Eq,
    Neq,
    KwAnd,
    KwOr,
    KwNot,
    KwLab,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'|' => {
                out.push(Token::Pipe);
                i += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'@' => {
                out.push(Token::At);
                i += 1;
            }
            b'.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    out.push(Token::DotDot);
                    i += 2;
                } else {
                    out.push(Token::Dot);
                    i += 1;
                }
            }
            b'*' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    out.push(Token::StarStar);
                    i += 2;
                } else {
                    out.push(Token::Star);
                    i += 1;
                }
            }
            b'^' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    out.push(Token::CaretStar);
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected '*' after '^'".into(),
                        position: out.len(),
                    });
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::GtGt);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    out.push(Token::LtLt);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected '=' after '!'".into(),
                        position: out.len(),
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        position: out.len(),
                    });
                }
                out.push(Token::Str(
                    String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                ));
                i = j + 1;
            }
            _ if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b'.')
                {
                    // Stop a name before ".." so that `a..` tokenises as `a`, `..`.
                    if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                let name = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                let token = match name.as_str() {
                    "and" => Token::KwAnd,
                    "or" => Token::KwOr,
                    "not" => Token::KwNot,
                    "lab" => Token::KwLab,
                    _ => Token::Name(name),
                };
                out.push(token);
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character '{}'", b as char),
                    position: out.len(),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing token {:?}", self.peek())))
        }
    }

    fn path(&mut self) -> Result<Path, ParseError> {
        let mut alts = vec![self.sequence()?];
        while self.eat(&Token::Pipe) {
            alts.push(self.sequence()?);
        }
        Ok(Path::union_all(alts))
    }

    fn sequence(&mut self) -> Result<Path, ParseError> {
        let mut parts = vec![self.step()?];
        while self.eat(&Token::Slash) {
            parts.push(self.step()?);
        }
        // Preserve the structure exactly (no ε-simplification) so that parsing is the
        // inverse of Display even for explicit `.` steps... except that `seq` smart
        // constructors are used programmatically; here we right-associate verbatim.
        let mut acc = parts.pop().expect("at least one step");
        while let Some(p) = parts.pop() {
            acc = Path::Seq(Box::new(p), Box::new(acc));
        }
        Ok(acc)
    }

    fn step(&mut self) -> Result<Path, ParseError> {
        let mut base = self.primary()?;
        while self.eat(&Token::LBracket) {
            let q = self.qualifier()?;
            self.expect(Token::RBracket)?;
            base = Path::Filter(Box::new(base), Box::new(q));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Path, ParseError> {
        match self.bump() {
            Some(Token::Dot) => Ok(Path::Empty),
            Some(Token::DotDot) => Ok(Path::Parent),
            Some(Token::Star) => Ok(Path::Wildcard),
            Some(Token::StarStar) => Ok(Path::DescendantOrSelf),
            Some(Token::CaretStar) => Ok(Path::AncestorOrSelf),
            Some(Token::Gt) => Ok(Path::NextSibling),
            Some(Token::GtGt) => Ok(Path::FollowingSiblingOrSelf),
            Some(Token::Lt) => Ok(Path::PrevSibling),
            Some(Token::LtLt) => Ok(Path::PrecedingSiblingOrSelf),
            Some(Token::Name(n)) => Ok(Path::Label(n)),
            Some(Token::LParen) => {
                let p = self.path()?;
                self.expect(Token::RParen)?;
                Ok(p)
            }
            other => Err(self.error(format!("expected a path step, found {other:?}"))),
        }
    }

    fn qualifier(&mut self) -> Result<Qualifier, ParseError> {
        let mut disjuncts = vec![self.conjunction()?];
        while self.eat(&Token::KwOr) {
            disjuncts.push(self.conjunction()?);
        }
        let mut acc = disjuncts.pop().expect("nonempty");
        while let Some(q) = disjuncts.pop() {
            acc = Qualifier::Or(Box::new(q), Box::new(acc));
        }
        Ok(acc)
    }

    fn conjunction(&mut self) -> Result<Qualifier, ParseError> {
        let mut conjuncts = vec![self.qual_unary()?];
        while self.eat(&Token::KwAnd) {
            conjuncts.push(self.qual_unary()?);
        }
        let mut acc = conjuncts.pop().expect("nonempty");
        while let Some(q) = conjuncts.pop() {
            acc = Qualifier::And(Box::new(q), Box::new(acc));
        }
        Ok(acc)
    }

    fn qual_unary(&mut self) -> Result<Qualifier, ParseError> {
        match self.peek() {
            Some(Token::KwNot) => {
                self.bump();
                self.expect(Token::LParen)?;
                let q = self.qualifier()?;
                self.expect(Token::RParen)?;
                Ok(Qualifier::Not(Box::new(q)))
            }
            Some(Token::KwLab) => {
                self.bump();
                self.expect(Token::LParen)?;
                self.expect(Token::RParen)?;
                self.expect(Token::Eq)?;
                match self.bump() {
                    Some(Token::Name(n)) => Ok(Qualifier::LabelIs(n)),
                    other => {
                        Err(self.error(format!("expected a label after lab() =, found {other:?}")))
                    }
                }
            }
            Some(Token::LParen) => {
                // Could be a parenthesised qualifier or a parenthesised path: try the
                // path-shaped parse first, fall back to the qualifier-shaped one.
                let save = self.pos;
                match self.comparison_or_path() {
                    Ok(q) => Ok(q),
                    Err(_) => {
                        self.pos = save;
                        self.bump();
                        let q = self.qualifier()?;
                        self.expect(Token::RParen)?;
                        Ok(q)
                    }
                }
            }
            _ => self.comparison_or_path(),
        }
    }

    /// Parse `attr-access op (STRING | attr-access)`, a bare attribute existence-free
    /// path, or a path qualifier.
    fn comparison_or_path(&mut self) -> Result<Qualifier, ParseError> {
        let (path, attr) = self.attr_access_or_path()?;
        match attr {
            None => Ok(Qualifier::Path(path)),
            Some(attr) => {
                let op = match self.bump() {
                    Some(Token::Eq) => CmpOp::Eq,
                    Some(Token::Neq) => CmpOp::Ne,
                    other => {
                        return Err(self.error(format!(
                            "expected '=' or '!=' after attribute access, found {other:?}"
                        )))
                    }
                };
                match self.peek() {
                    Some(Token::Str(_)) => {
                        let Some(Token::Str(value)) = self.bump() else {
                            unreachable!()
                        };
                        Ok(Qualifier::AttrCmp {
                            path,
                            attr,
                            op,
                            value,
                        })
                    }
                    _ => {
                        let (right, right_attr) = self.attr_access_or_path()?;
                        let right_attr = right_attr.ok_or_else(|| {
                            self.error("right-hand side of a join must be an attribute access")
                        })?;
                        Ok(Qualifier::AttrJoin {
                            left: path,
                            left_attr: attr,
                            op,
                            right,
                            right_attr,
                        })
                    }
                }
            }
        }
    }

    /// Parse a path which may end in `/@name` (or be just `@name`, meaning the
    /// attribute of the context node).  Returns the path and the optional attribute.
    fn attr_access_or_path(&mut self) -> Result<(Path, Option<String>), ParseError> {
        if self.eat(&Token::At) {
            let name = self.attr_name()?;
            return Ok((Path::Empty, Some(name)));
        }
        let mut parts = vec![self.step()?];
        let mut attr = None;
        while self.eat(&Token::Slash) {
            if self.eat(&Token::At) {
                attr = Some(self.attr_name()?);
                break;
            }
            parts.push(self.step()?);
        }
        let mut acc = parts.pop().expect("at least one step");
        while let Some(p) = parts.pop() {
            acc = Path::Seq(Box::new(p), Box::new(acc));
        }
        // Union alternatives are part of the fragment's path grammar, so a path-shaped
        // qualifier like `a[b | c]` must parse (Display prints it without parentheses).
        // Attribute accesses distribute over unions only when parenthesised —
        // `(a | b)/@x` — so a union alternative here must be attribute-free.
        if attr.is_none() {
            let mut alts = vec![acc];
            while self.eat(&Token::Pipe) {
                alts.push(self.sequence()?);
            }
            acc = Path::union_all(alts);
        }
        Ok((acc, attr))
    }

    fn attr_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Name(n)) => Ok(n),
            other => Err(self.error(format!("expected an attribute name, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_axes_and_sequences() {
        assert_eq!(parse_path(".").unwrap(), Path::Empty);
        assert_eq!(parse_path("..").unwrap(), Path::Parent);
        assert_eq!(parse_path("^*").unwrap(), Path::AncestorOrSelf);
        assert_eq!(
            parse_path("a/*/b").unwrap(),
            Path::Seq(
                Box::new(Path::label("a")),
                Box::new(Path::Seq(
                    Box::new(Path::Wildcard),
                    Box::new(Path::label("b"))
                ))
            )
        );
        assert_eq!(parse_path(">>").unwrap(), Path::FollowingSiblingOrSelf);
    }

    #[test]
    fn parses_union_and_filters() {
        let p = parse_path("a | b/c").unwrap();
        assert!(matches!(p, Path::Union(..)));
        let p = parse_path("a[b and not(c)]").unwrap();
        match p {
            Path::Filter(base, q) => {
                assert_eq!(*base, Path::label("a"));
                assert!(matches!(*q, Qualifier::And(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unions_inside_qualifiers() {
        // Display prints a path-shaped qualifier's union without parentheses, so the
        // parser must accept it back (`a[b | c]` round-trips).
        let p = parse_path("a[b | c]").unwrap();
        match &p {
            Path::Filter(base, q) => {
                assert_eq!(**base, Path::label("a"));
                assert!(matches!(&**q, Qualifier::Path(Path::Union(..))));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_path(&p.to_string()).unwrap(), p);
        // Unions combine with connectives and nested filters.
        let q = parse_qualifier("b | c/d and not(e | f)").unwrap();
        assert!(matches!(q, Qualifier::And(..)));
        let deep = parse_path("a[b[c | d] | e]").unwrap();
        assert_eq!(parse_path(&deep.to_string()).unwrap(), deep);
    }

    #[test]
    fn parses_label_tests_and_attribute_comparisons() {
        let q = parse_qualifier("lab() = book").unwrap();
        assert_eq!(q, Qualifier::LabelIs("book".into()));
        let q = parse_qualifier("@s = \"0\"").unwrap();
        assert_eq!(
            q,
            Qualifier::AttrCmp {
                path: Path::Empty,
                attr: "s".into(),
                op: CmpOp::Eq,
                value: "0".into()
            }
        );
        let q = parse_qualifier("a/@id != */b/@id").unwrap();
        assert!(matches!(q, Qualifier::AttrJoin { op: CmpOp::Ne, .. }));
    }

    #[test]
    fn parses_parenthesised_qualifiers() {
        let q = parse_qualifier("(a or b) and c").unwrap();
        assert!(matches!(q, Qualifier::And(..)));
        let q = parse_qualifier("(a | b)/c").unwrap();
        assert!(matches!(q, Qualifier::Path(Path::Seq(..))));
    }

    #[test]
    fn display_then_parse_round_trips() {
        let cases = [
            "a/**/b",
            ".[x and not(lab() = y)]",
            "(a | b)/c",
            "(a/b)[c]",
            "a[@id = \"7\"]",
            "a[b/@x != c/@y]/d",
            "..[lab() = r]",
            "*[not(b) or c]",
            ">/a/<<",
        ];
        for case in cases {
            let parsed = parse_path(case).unwrap();
            let printed = parsed.to_string();
            let reparsed = parse_path(&printed).unwrap();
            assert_eq!(parsed, reparsed, "case {case}: {printed}");
        }
    }

    #[test]
    fn reports_errors_with_position() {
        assert!(parse_path("a//").is_err());
        assert!(parse_path("a[").is_err());
        assert!(parse_qualifier("@x >").is_err());
        assert!(parse_path("a ^ b").is_err());
    }
}
