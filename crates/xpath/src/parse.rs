//! Parser for the textual query syntax described in [`crate::display`].
//!
//! The grammar (recursive descent, with backtracking only inside qualifiers):
//!
//! ```text
//! path      := sequence ("|" sequence)*
//! sequence  := step ("/" step)*
//! step      := primary ("[" qualifier "]")*
//! primary   := "." | ".." | "*" | "**" | "^*" | ">" | ">>" | "<" | "<<"
//!            | NAME | "(" path ")"
//! qualifier := conj ("or" conj)*
//! conj      := unary ("and" unary)*
//! unary     := "not" "(" qualifier ")" | "lab()" "=" NAME | comparison | path
//!            | "(" qualifier ")"
//! comparison:= attr-access ("=" | "!=") (STRING | attr-access)
//! attr-access := [path "/"] "@" NAME
//! ```
//!
//! `and`, `or` and `not` are reserved words and cannot be used as element-type names in
//! the textual syntax (the programmatic AST has no such restriction).

use crate::ast::{CmpOp, Path, Qualifier};
use std::fmt;

/// A byte range into the source text an error refers to.
///
/// `len` may be zero (e.g. "unexpected end of input" points just past the last byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub offset: usize,
    /// Length in bytes of the offending region.
    pub len: usize,
}

impl Span {
    /// A span covering `len` bytes starting at `offset`.
    pub fn new(offset: usize, len: usize) -> Span {
        Span { offset, len }
    }
}

/// Error raised by [`parse_path`] / [`parse_qualifier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte range of the offending input.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at byte {}: {}",
            self.span.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Resource limits applied while parsing untrusted query text.
///
/// The parser is a recursive descent over the token stream, so unbounded nesting
/// would translate directly into unbounded native stack usage.  `max_depth` caps the
/// grammar nesting (filters, parentheses) well below stack exhaustion; `max_tokens`
/// caps the token stream; the fuel budget (derived from the token count) bounds total
/// parser work even through qualifier backtracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum grammar nesting depth (filters / parentheses / nested qualifiers).
    pub max_depth: usize,
    /// Maximum number of tokens accepted from one input.
    pub max_tokens: usize,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            max_depth: 128,
            max_tokens: 1 << 20,
        }
    }
}

/// Parse a path expression with default [`ParseLimits`].
pub fn parse_path(input: &str) -> Result<Path, ParseError> {
    parse_path_with_limits(input, &ParseLimits::default())
}

/// Parse a path expression under explicit resource limits.
pub fn parse_path_with_limits(input: &str, limits: &ParseLimits) -> Result<Path, ParseError> {
    let mut p = Parser::new(input, limits)?;
    let path = p.path()?;
    p.expect_end()?;
    Ok(path)
}

/// Parse a qualifier expression with default [`ParseLimits`].
pub fn parse_qualifier(input: &str) -> Result<Qualifier, ParseError> {
    parse_qualifier_with_limits(input, &ParseLimits::default())
}

/// Parse a qualifier expression under explicit resource limits.
pub fn parse_qualifier_with_limits(
    input: &str,
    limits: &ParseLimits,
) -> Result<Qualifier, ParseError> {
    let mut p = Parser::new(input, limits)?;
    let q = p.qualifier()?;
    p.expect_end()?;
    Ok(q)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Name(String),
    Str(String),
    Slash,
    Pipe,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Dot,
    DotDot,
    Star,
    StarStar,
    CaretStar,
    Gt,
    GtGt,
    Lt,
    LtLt,
    At,
    Eq,
    Neq,
    KwAnd,
    KwOr,
    KwNot,
    KwLab,
}

fn tokenize(input: &str, limits: &ParseLimits) -> Result<Vec<(Token, Span)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out: Vec<(Token, Span)> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if out.len() >= limits.max_tokens {
            return Err(ParseError {
                message: format!(
                    "query exceeds the token budget ({} tokens)",
                    limits.max_tokens
                ),
                span: Span::new(i, 1),
            });
        }
        let b = bytes[i];
        let start = i;
        let token = match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'/' => {
                i += 1;
                Token::Slash
            }
            b'|' => {
                i += 1;
                Token::Pipe
            }
            b'[' => {
                i += 1;
                Token::LBracket
            }
            b']' => {
                i += 1;
                Token::RBracket
            }
            b'(' => {
                i += 1;
                Token::LParen
            }
            b')' => {
                i += 1;
                Token::RParen
            }
            b'@' => {
                i += 1;
                Token::At
            }
            b'.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    i += 2;
                    Token::DotDot
                } else {
                    i += 1;
                    Token::Dot
                }
            }
            b'*' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    i += 2;
                    Token::StarStar
                } else {
                    i += 1;
                    Token::Star
                }
            }
            b'^' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    i += 2;
                    Token::CaretStar
                } else {
                    return Err(ParseError {
                        message: "expected '*' after '^'".into(),
                        span: Span::new(i, 1),
                    });
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 2;
                    Token::GtGt
                } else {
                    i += 1;
                    Token::Gt
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    i += 2;
                    Token::LtLt
                } else {
                    i += 1;
                    Token::Lt
                }
            }
            b'=' => {
                i += 1;
                Token::Eq
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    Token::Neq
                } else {
                    return Err(ParseError {
                        message: "expected '=' after '!'".into(),
                        span: Span::new(i, 1),
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let lit_start = i + 1;
                let mut j = lit_start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        span: Span::new(start, bytes.len() - start),
                    });
                }
                let value = String::from_utf8_lossy(&bytes[lit_start..j]).into_owned();
                i = j + 1;
                Token::Str(value)
            }
            _ if b.is_ascii_alphanumeric() || b == b'_' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b'.')
                {
                    // Stop a name before ".." so that `a..` tokenises as `a`, `..`.
                    if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                let name = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                match name.as_str() {
                    "and" => Token::KwAnd,
                    "or" => Token::KwOr,
                    "not" => Token::KwNot,
                    "lab" => Token::KwLab,
                    _ => Token::Name(name),
                }
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character '{}'", b as char),
                    span: Span::new(i, 1),
                })
            }
        };
        out.push((token, Span::new(start, i - start)));
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    spans: Vec<Span>,
    pos: usize,
    /// Current grammar nesting depth, capped by `max_depth`.
    depth: usize,
    max_depth: usize,
    /// Remaining work budget; every parser-function entry spends one unit, so even a
    /// pathological backtracking pattern terminates with a structured error.
    fuel: usize,
    /// Byte length of the input, for end-of-input spans.
    input_len: usize,
}

impl Parser {
    fn new(input: &str, limits: &ParseLimits) -> Result<Parser, ParseError> {
        let lexed = tokenize(input, limits)?;
        let (tokens, spans): (Vec<Token>, Vec<Span>) = lexed.into_iter().unzip();
        // Linear in the token count plus slack for backtracking; nesting is already
        // bounded by `max_depth`, so this only trips on non-progress bugs or inputs
        // engineered to thrash the qualifier backtracking.
        let fuel = 4096 + tokens.len().saturating_mul(64);
        Ok(Parser {
            tokens,
            spans,
            pos: 0,
            depth: 0,
            max_depth: limits.max_depth,
            fuel,
            input_len: input.len(),
        })
    }

    /// The span of the token at `pos`, or a zero-length span at end of input.
    fn span_at(&self, pos: usize) -> Span {
        self.spans
            .get(pos)
            .copied()
            .unwrap_or(Span::new(self.input_len, 0))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span_at(self.pos),
        }
    }

    /// An error raised just after a `bump`: points at the consumed token, or at end of
    /// input when `bump` returned `None`.
    fn error_after_bump(&self, consumed: &Option<Token>, message: impl Into<String>) -> ParseError {
        let at = if consumed.is_some() {
            self.pos.saturating_sub(1)
        } else {
            self.pos
        };
        ParseError {
            message: message.into(),
            span: self.span_at(at),
        }
    }

    /// Charge one unit of fuel and enter one nesting level.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.spend()?;
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.error(format!(
                "query nesting exceeds the depth limit ({})",
                self.max_depth
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Run `f` one nesting level deeper; the depth counter is restored even when `f`
    /// fails, so qualifier backtracking (which swallows errors) stays balanced.
    fn with_depth<T>(
        &mut self,
        f: impl FnOnce(&mut Parser) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        self.enter()?;
        let result = f(self);
        self.leave();
        result
    }

    fn spend(&mut self) -> Result<(), ParseError> {
        if self.fuel == 0 {
            return Err(self.error("query exceeds the parser work budget"));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing token {:?}", self.peek())))
        }
    }

    fn path(&mut self) -> Result<Path, ParseError> {
        self.with_depth(|p| {
            let mut alts = vec![p.sequence()?];
            while p.eat(&Token::Pipe) {
                alts.push(p.sequence()?);
            }
            Ok(Path::union_all(alts))
        })
    }

    fn sequence(&mut self) -> Result<Path, ParseError> {
        let mut parts = vec![self.step()?];
        while self.eat(&Token::Slash) {
            parts.push(self.step()?);
        }
        // Preserve the structure exactly (no ε-simplification) so that parsing is the
        // inverse of Display even for explicit `.` steps... except that `seq` smart
        // constructors are used programmatically; here we right-associate verbatim.
        let mut acc = parts.pop().expect("at least one step");
        while let Some(p) = parts.pop() {
            acc = Path::Seq(Box::new(p), Box::new(acc));
        }
        Ok(acc)
    }

    fn step(&mut self) -> Result<Path, ParseError> {
        let mut base = self.primary()?;
        while self.eat(&Token::LBracket) {
            let q = self.qualifier()?;
            self.expect(Token::RBracket)?;
            base = Path::Filter(Box::new(base), Box::new(q));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Path, ParseError> {
        match self.bump() {
            Some(Token::Dot) => Ok(Path::Empty),
            Some(Token::DotDot) => Ok(Path::Parent),
            Some(Token::Star) => Ok(Path::Wildcard),
            Some(Token::StarStar) => Ok(Path::DescendantOrSelf),
            Some(Token::CaretStar) => Ok(Path::AncestorOrSelf),
            Some(Token::Gt) => Ok(Path::NextSibling),
            Some(Token::GtGt) => Ok(Path::FollowingSiblingOrSelf),
            Some(Token::Lt) => Ok(Path::PrevSibling),
            Some(Token::LtLt) => Ok(Path::PrecedingSiblingOrSelf),
            Some(Token::Name(n)) => Ok(Path::Label(n)),
            Some(Token::LParen) => {
                let p = self.path()?;
                self.expect(Token::RParen)?;
                Ok(p)
            }
            other => {
                let msg = format!("expected a path step, found {other:?}");
                Err(self.error_after_bump(&other, msg))
            }
        }
    }

    fn qualifier(&mut self) -> Result<Qualifier, ParseError> {
        self.with_depth(|p| {
            let mut disjuncts = vec![p.conjunction()?];
            while p.eat(&Token::KwOr) {
                disjuncts.push(p.conjunction()?);
            }
            let mut acc = disjuncts.pop().expect("nonempty");
            while let Some(q) = disjuncts.pop() {
                acc = Qualifier::Or(Box::new(q), Box::new(acc));
            }
            Ok(acc)
        })
    }

    fn conjunction(&mut self) -> Result<Qualifier, ParseError> {
        let mut conjuncts = vec![self.qual_unary()?];
        while self.eat(&Token::KwAnd) {
            conjuncts.push(self.qual_unary()?);
        }
        let mut acc = conjuncts.pop().expect("nonempty");
        while let Some(q) = conjuncts.pop() {
            acc = Qualifier::And(Box::new(q), Box::new(acc));
        }
        Ok(acc)
    }

    fn qual_unary(&mut self) -> Result<Qualifier, ParseError> {
        match self.peek() {
            Some(Token::KwNot) => {
                self.bump();
                self.expect(Token::LParen)?;
                let q = self.qualifier()?;
                self.expect(Token::RParen)?;
                Ok(Qualifier::Not(Box::new(q)))
            }
            Some(Token::KwLab) => {
                self.bump();
                self.expect(Token::LParen)?;
                self.expect(Token::RParen)?;
                self.expect(Token::Eq)?;
                match self.bump() {
                    Some(Token::Name(n)) => Ok(Qualifier::LabelIs(n)),
                    other => {
                        let msg = format!("expected a label after lab() =, found {other:?}");
                        Err(self.error_after_bump(&other, msg))
                    }
                }
            }
            Some(Token::LParen) => {
                // Could be a parenthesised qualifier or a parenthesised path: try the
                // path-shaped parse first, fall back to the qualifier-shaped one.
                let save = self.pos;
                match self.comparison_or_path() {
                    Ok(q) => Ok(q),
                    Err(_) => {
                        self.pos = save;
                        self.bump();
                        let q = self.qualifier()?;
                        self.expect(Token::RParen)?;
                        Ok(q)
                    }
                }
            }
            _ => self.comparison_or_path(),
        }
    }

    /// Parse `attr-access op (STRING | attr-access)`, a bare attribute existence-free
    /// path, or a path qualifier.
    fn comparison_or_path(&mut self) -> Result<Qualifier, ParseError> {
        let (path, attr) = self.attr_access_or_path()?;
        match attr {
            None => Ok(Qualifier::Path(path)),
            Some(attr) => {
                let op = match self.bump() {
                    Some(Token::Eq) => CmpOp::Eq,
                    Some(Token::Neq) => CmpOp::Ne,
                    other => {
                        let msg =
                            format!("expected '=' or '!=' after attribute access, found {other:?}");
                        return Err(self.error_after_bump(&other, msg));
                    }
                };
                match self.peek() {
                    Some(Token::Str(_)) => {
                        let Some(Token::Str(value)) = self.bump() else {
                            unreachable!()
                        };
                        Ok(Qualifier::AttrCmp {
                            path,
                            attr,
                            op,
                            value,
                        })
                    }
                    _ => {
                        let (right, right_attr) = self.attr_access_or_path()?;
                        let right_attr = right_attr.ok_or_else(|| {
                            self.error("right-hand side of a join must be an attribute access")
                        })?;
                        Ok(Qualifier::AttrJoin {
                            left: path,
                            left_attr: attr,
                            op,
                            right,
                            right_attr,
                        })
                    }
                }
            }
        }
    }

    /// Parse a path which may end in `/@name` (or be just `@name`, meaning the
    /// attribute of the context node).  Returns the path and the optional attribute.
    fn attr_access_or_path(&mut self) -> Result<(Path, Option<String>), ParseError> {
        if self.eat(&Token::At) {
            let name = self.attr_name()?;
            return Ok((Path::Empty, Some(name)));
        }
        let mut parts = vec![self.step()?];
        let mut attr = None;
        while self.eat(&Token::Slash) {
            if self.eat(&Token::At) {
                attr = Some(self.attr_name()?);
                break;
            }
            parts.push(self.step()?);
        }
        let mut acc = parts.pop().expect("at least one step");
        while let Some(p) = parts.pop() {
            acc = Path::Seq(Box::new(p), Box::new(acc));
        }
        // Union alternatives are part of the fragment's path grammar, so a path-shaped
        // qualifier like `a[b | c]` must parse (Display prints it without parentheses).
        // Attribute accesses distribute over unions only when parenthesised —
        // `(a | b)/@x` — so a union alternative here must be attribute-free.
        if attr.is_none() {
            let mut alts = vec![acc];
            while self.eat(&Token::Pipe) {
                alts.push(self.sequence()?);
            }
            acc = Path::union_all(alts);
        }
        Ok((acc, attr))
    }

    fn attr_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Name(n)) => Ok(n),
            other => {
                let msg = format!("expected an attribute name, found {other:?}");
                Err(self.error_after_bump(&other, msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_axes_and_sequences() {
        assert_eq!(parse_path(".").unwrap(), Path::Empty);
        assert_eq!(parse_path("..").unwrap(), Path::Parent);
        assert_eq!(parse_path("^*").unwrap(), Path::AncestorOrSelf);
        assert_eq!(
            parse_path("a/*/b").unwrap(),
            Path::Seq(
                Box::new(Path::label("a")),
                Box::new(Path::Seq(
                    Box::new(Path::Wildcard),
                    Box::new(Path::label("b"))
                ))
            )
        );
        assert_eq!(parse_path(">>").unwrap(), Path::FollowingSiblingOrSelf);
    }

    #[test]
    fn parses_union_and_filters() {
        let p = parse_path("a | b/c").unwrap();
        assert!(matches!(p, Path::Union(..)));
        let p = parse_path("a[b and not(c)]").unwrap();
        match p {
            Path::Filter(base, q) => {
                assert_eq!(*base, Path::label("a"));
                assert!(matches!(*q, Qualifier::And(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unions_inside_qualifiers() {
        // Display prints a path-shaped qualifier's union without parentheses, so the
        // parser must accept it back (`a[b | c]` round-trips).
        let p = parse_path("a[b | c]").unwrap();
        match &p {
            Path::Filter(base, q) => {
                assert_eq!(**base, Path::label("a"));
                assert!(matches!(&**q, Qualifier::Path(Path::Union(..))));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_path(&p.to_string()).unwrap(), p);
        // Unions combine with connectives and nested filters.
        let q = parse_qualifier("b | c/d and not(e | f)").unwrap();
        assert!(matches!(q, Qualifier::And(..)));
        let deep = parse_path("a[b[c | d] | e]").unwrap();
        assert_eq!(parse_path(&deep.to_string()).unwrap(), deep);
    }

    #[test]
    fn parses_label_tests_and_attribute_comparisons() {
        let q = parse_qualifier("lab() = book").unwrap();
        assert_eq!(q, Qualifier::LabelIs("book".into()));
        let q = parse_qualifier("@s = \"0\"").unwrap();
        assert_eq!(
            q,
            Qualifier::AttrCmp {
                path: Path::Empty,
                attr: "s".into(),
                op: CmpOp::Eq,
                value: "0".into()
            }
        );
        let q = parse_qualifier("a/@id != */b/@id").unwrap();
        assert!(matches!(q, Qualifier::AttrJoin { op: CmpOp::Ne, .. }));
    }

    #[test]
    fn parses_parenthesised_qualifiers() {
        let q = parse_qualifier("(a or b) and c").unwrap();
        assert!(matches!(q, Qualifier::And(..)));
        let q = parse_qualifier("(a | b)/c").unwrap();
        assert!(matches!(q, Qualifier::Path(Path::Seq(..))));
    }

    #[test]
    fn display_then_parse_round_trips() {
        let cases = [
            "a/**/b",
            ".[x and not(lab() = y)]",
            "(a | b)/c",
            "(a/b)[c]",
            "a[@id = \"7\"]",
            "a[b/@x != c/@y]/d",
            "..[lab() = r]",
            "*[not(b) or c]",
            ">/a/<<",
        ];
        for case in cases {
            let parsed = parse_path(case).unwrap();
            let printed = parsed.to_string();
            let reparsed = parse_path(&printed).unwrap();
            assert_eq!(parsed, reparsed, "case {case}: {printed}");
        }
    }

    #[test]
    fn reports_errors_with_spans() {
        assert!(parse_path("a//").is_err());
        assert!(parse_path("a[").is_err());
        assert!(parse_qualifier("@x >").is_err());
        // Tokenizer errors point at the offending byte.
        let err = parse_path("a ^ b").unwrap_err();
        assert_eq!(err.span, Span::new(2, 1));
        // Parser errors point at the offending token's byte range.
        let err = parse_path("a/ |b").unwrap_err();
        assert_eq!(err.span, Span::new(3, 1));
        // End-of-input errors carry a zero-length span just past the input.
        let err = parse_path("a[b").unwrap_err();
        assert_eq!(err.span, Span::new(3, 0));
        let err = parse_path("a/").unwrap_err();
        assert_eq!(err.span, Span::new(2, 0));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 100k nested qualifiers: must come back as a structured depth error, never a
        // native stack overflow.
        let mut q = String::from("a");
        for _ in 0..100_000 {
            q.push_str("[a");
        }
        let err = parse_path(&q).unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");
        assert!(err.span.offset > 0);

        // Same for parenthesised paths.
        let deep = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
        let err = parse_path(&deep).unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");

        // A comfortably nested query still parses under the default limits.
        let mut ok = String::from("a");
        for _ in 0..60 {
            ok.push_str("[a");
        }
        ok.push_str(&"]".repeat(60));
        assert!(parse_path(&ok).is_ok());
    }

    #[test]
    fn token_budget_is_enforced() {
        let limits = ParseLimits {
            max_tokens: 8,
            ..ParseLimits::default()
        };
        let err = parse_path_with_limits("a/b/c/d/e/f", &limits).unwrap_err();
        assert!(err.message.contains("token budget"), "{err}");
        assert!(parse_path_with_limits("a/b/c", &limits).is_ok());
    }

    #[test]
    fn backtracking_keeps_depth_balanced() {
        // Parenthesised qualifiers force the try-path-then-qualifier backtrack at each
        // level; depth accounting must stay balanced or this errors spuriously.
        let nested = format!("a[{}b or c{}]", "(".repeat(40), ")".repeat(40));
        assert!(parse_path(&nested).is_ok());
    }
}
