//! Operator-usage analysis and the fragment lattice of Section 2.2.
//!
//! The paper denotes a fragment by listing its operators, e.g. `X(↓, [], ¬)` or
//! `X(↓, ↓*, ↑, ↑*, ∪, [], =)`.  [`Features`] records which operators a concrete query
//! uses; [`Fragment`] records which operators a fragment permits.  The solver façade in
//! `xpsat-core` uses both to pick a decision procedure and to report which complexity
//! regime an input falls into.

use crate::ast::{Path, Qualifier};
use std::fmt;

/// The set of XPath operators used by a query (or permitted by a fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Features {
    /// Child steps by label (`l`).
    pub label: bool,
    /// The wildcard child axis `↓`.
    pub wildcard: bool,
    /// The descendant-or-self axis `↓*`.
    pub descendant: bool,
    /// The parent axis `↑`.
    pub parent: bool,
    /// The ancestor-or-self axis `↑*`.
    pub ancestor: bool,
    /// Immediate sibling axes `→` / `←`.
    pub sibling: bool,
    /// Transitive sibling axes `→*` / `←*`.
    pub sibling_star: bool,
    /// Union `∪` or disjunction `∨` in qualifiers.
    pub union: bool,
    /// Qualifiers `[q]`.
    pub qualifier: bool,
    /// Label tests `lab() = A` inside qualifiers.
    pub label_test: bool,
    /// Data-value comparisons (`=` / `≠` against constants or joins).
    pub data_value: bool,
    /// Negation `¬` in qualifiers.
    pub negation: bool,
}

impl Features {
    /// The features used by a path expression.
    pub fn of_path(p: &Path) -> Features {
        let mut f = Features::default();
        f.scan_path(p);
        f
    }

    /// The features used by a qualifier.
    pub fn of_qualifier(q: &Qualifier) -> Features {
        let mut f = Features::default();
        f.scan_qualifier(q);
        f
    }

    fn scan_path(&mut self, p: &Path) {
        match p {
            Path::Empty => {}
            Path::Label(_) => self.label = true,
            Path::Wildcard => self.wildcard = true,
            Path::DescendantOrSelf => self.descendant = true,
            Path::Parent => self.parent = true,
            Path::AncestorOrSelf => self.ancestor = true,
            Path::NextSibling | Path::PrevSibling => self.sibling = true,
            Path::FollowingSiblingOrSelf | Path::PrecedingSiblingOrSelf => self.sibling_star = true,
            Path::Seq(a, b) => {
                self.scan_path(a);
                self.scan_path(b);
            }
            Path::Union(a, b) => {
                self.union = true;
                self.scan_path(a);
                self.scan_path(b);
            }
            Path::Filter(a, q) => {
                self.qualifier = true;
                self.scan_path(a);
                self.scan_qualifier(q);
            }
        }
    }

    fn scan_qualifier(&mut self, q: &Qualifier) {
        match q {
            Qualifier::Path(p) => self.scan_path(p),
            Qualifier::LabelIs(_) => self.label_test = true,
            Qualifier::AttrCmp { path, .. } => {
                self.data_value = true;
                self.scan_path(path);
            }
            Qualifier::AttrJoin { left, right, .. } => {
                self.data_value = true;
                self.scan_path(left);
                self.scan_path(right);
            }
            Qualifier::And(a, b) => {
                self.scan_qualifier(a);
                self.scan_qualifier(b);
            }
            Qualifier::Or(a, b) => {
                self.union = true;
                self.scan_qualifier(a);
                self.scan_qualifier(b);
            }
            Qualifier::Not(inner) => {
                self.negation = true;
                self.scan_qualifier(inner);
            }
        }
    }

    /// Does the query use any upward axis?
    pub fn has_upward(&self) -> bool {
        self.parent || self.ancestor
    }

    /// Does the query use any recursive (transitive) vertical axis?
    pub fn has_recursion(&self) -> bool {
        self.descendant || self.ancestor
    }

    /// Does the query use any sibling axis?
    pub fn has_sibling(&self) -> bool {
        self.sibling || self.sibling_star
    }

    /// Is every feature of `self` also present in `other`?
    pub fn subset_of(&self, other: &Features) -> bool {
        (!self.label || other.label)
            && (!self.wildcard || other.wildcard)
            && (!self.descendant || other.descendant)
            && (!self.parent || other.parent)
            && (!self.ancestor || other.ancestor)
            && (!self.sibling || other.sibling)
            && (!self.sibling_star || other.sibling_star)
            && (!self.union || other.union)
            && (!self.qualifier || other.qualifier)
            && (!self.label_test || other.label_test)
            && (!self.data_value || other.data_value)
            && (!self.negation || other.negation)
    }
}

/// A named fragment of the paper: a set of permitted operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// The operators the fragment permits.
    pub allowed: Features,
    /// A short, paper-style name such as `"X(dn, dn*, un)"`.
    pub name: &'static str,
}

impl Fragment {
    /// Does the fragment permit this query?
    pub fn permits_path(&self, p: &Path) -> bool {
        Features::of_path(p).subset_of(&self.allowed)
    }

    /// Does the fragment permit queries with these features?
    pub fn permits(&self, f: &Features) -> bool {
        f.subset_of(&self.allowed)
    }

    /// `X(↓, ↓*, ∪)` — downward, no qualifiers (Theorem 4.1, PTIME).
    pub fn downward_no_qualifiers() -> Fragment {
        Fragment {
            name: "X(child, desc, union)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                union: true,
                ..Features::default()
            },
        }
    }

    /// `X(↓, ↓*, ∪, [])` — downward tree patterns (Proposition 4.2, NP-complete).
    pub fn downward_positive() -> Fragment {
        Fragment {
            name: "X(child, desc, union, qualifiers)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                union: true,
                qualifier: true,
                label_test: true,
                ..Features::default()
            },
        }
    }

    /// `X(↓, ↓*, ↑, ↑*, ∪, [], =)` — the largest positive fragment (Theorem 4.4, NP).
    pub fn largest_positive() -> Fragment {
        Fragment {
            name: "X(child, desc, parent, anc, union, qualifiers, data)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                parent: true,
                ancestor: true,
                union: true,
                qualifier: true,
                label_test: true,
                data_value: true,
                ..Features::default()
            },
        }
    }

    /// `X(↓, [], ¬)` — the minimal fragment with negation (Proposition 5.1, PSPACE-hard).
    pub fn downward_negation_nonrecursive() -> Fragment {
        Fragment {
            name: "X(child, qualifiers, neg)",
            allowed: Features {
                label: true,
                wildcard: true,
                union: true,
                qualifier: true,
                label_test: true,
                negation: true,
                ..Features::default()
            },
        }
    }

    /// `X(↓, ↓*, ∪, [], ¬)` — downward recursion with negation (Theorem 5.3, EXPTIME).
    pub fn downward_negation() -> Fragment {
        Fragment {
            name: "X(child, desc, union, qualifiers, neg)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                union: true,
                qualifier: true,
                label_test: true,
                negation: true,
                ..Features::default()
            },
        }
    }

    /// `X(↓, ↓*, ↑, ↑*, ∪, [], ¬)` — all vertical axes with negation (Theorem 5.3).
    pub fn vertical_negation() -> Fragment {
        Fragment {
            name: "X(child, desc, parent, anc, union, qualifiers, neg)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                parent: true,
                ancestor: true,
                union: true,
                qualifier: true,
                label_test: true,
                negation: true,
                ..Features::default()
            },
        }
    }

    /// `X(↓, ↑, ↓*, ↑*, ∪, [], =, ¬)` — the full class (Theorem 5.4, undecidable).
    pub fn full() -> Fragment {
        Fragment {
            name: "X(all vertical, union, qualifiers, data, neg)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                parent: true,
                ancestor: true,
                union: true,
                qualifier: true,
                label_test: true,
                data_value: true,
                negation: true,
                ..Features::default()
            },
        }
    }

    /// `X(→, ←)` — immediate sibling axes without qualifiers (Theorem 7.1, PTIME).
    pub fn sibling_no_qualifiers() -> Fragment {
        Fragment {
            name: "X(label, next-sib, prev-sib)",
            allowed: Features {
                label: true,
                sibling: true,
                ..Features::default()
            },
        }
    }

    /// The full class including sibling axes (Section 7).
    pub fn full_with_siblings() -> Fragment {
        Fragment {
            name: "X(everything)",
            allowed: Features {
                label: true,
                wildcard: true,
                descendant: true,
                parent: true,
                ancestor: true,
                sibling: true,
                sibling_star: true,
                union: true,
                qualifier: true,
                label_test: true,
                data_value: true,
                negation: true,
            },
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn features_of_simple_paths() {
        let p = Path::seq(Path::label("a"), Path::DescendantOrSelf);
        let f = Features::of_path(&p);
        assert!(f.label && f.descendant);
        assert!(!f.negation && !f.qualifier && !f.has_upward());
        assert!(f.has_recursion());
    }

    #[test]
    fn negation_and_data_values_detected() {
        let q = Qualifier::not(Qualifier::AttrCmp {
            path: Path::Empty,
            attr: "a".into(),
            op: CmpOp::Eq,
            value: "c".into(),
        });
        let p = Path::label("x").filter(q);
        let f = Features::of_path(&p);
        assert!(f.negation && f.data_value && f.qualifier);
    }

    #[test]
    fn fragment_permission() {
        let positive = Fragment::downward_positive();
        let with_neg = Path::label("a").filter(Qualifier::not(Qualifier::path(Path::label("b"))));
        assert!(!positive.permits_path(&with_neg));
        assert!(Fragment::downward_negation().permits_path(&with_neg));
        let upward = Path::seq(Path::label("a"), Path::Parent);
        assert!(!positive.permits_path(&upward));
        assert!(Fragment::largest_positive().permits_path(&upward));
    }

    #[test]
    fn fragment_lattice_is_monotone() {
        // Everything permitted by the positive downward fragment is permitted by the
        // largest positive fragment and by the full fragment.
        let small = Fragment::downward_positive();
        let mid = Fragment::largest_positive();
        let full = Fragment::full();
        assert!(small.allowed.subset_of(&mid.allowed));
        assert!(mid.allowed.subset_of(&full.allowed));
    }

    #[test]
    fn or_in_qualifiers_counts_as_union() {
        let q = Qualifier::Or(
            Box::new(Qualifier::path(Path::label("a"))),
            Box::new(Qualifier::path(Path::label("b"))),
        );
        let p = Path::Empty.filter(q);
        assert!(Features::of_path(&p).union);
    }
}
