//! Sub-expression closures.
//!
//! The dynamic-programming algorithms of Theorems 4.1, 6.8 and 6.11 iterate over "the
//! list `L` of all subqueries of `p`, topologically ordered such that `p1` precedes `p2`
//! in `L` if `p1` is a subquery of `p2`".  This module computes those lists.  Because a
//! strict sub-expression always has strictly smaller size, ordering by size (breaking
//! ties arbitrarily but deterministically) is a valid topological order.

use crate::ast::{Path, Qualifier};

/// All path sub-expressions of `p` (including `p` itself and the paths nested inside
/// qualifiers), deduplicated and ordered so that sub-expressions precede the expressions
/// containing them.
pub fn sub_paths_ascending(p: &Path) -> Vec<Path> {
    let mut out = Vec::new();
    collect_paths(p, &mut out);
    sort_dedup_by_size(&mut out);
    out
}

/// All qualifier sub-expressions of `p`, in ascending (inside-out) order.
pub fn sub_qualifiers_ascending(p: &Path) -> Vec<Qualifier> {
    let mut out = Vec::new();
    collect_qualifiers_of_path(p, &mut out);
    let mut sized: Vec<(usize, Qualifier)> = out.into_iter().map(|q| (q.size(), q)).collect();
    sized.sort();
    sized.dedup();
    sized.into_iter().map(|(_, q)| q).collect()
}

fn sort_dedup_by_size(paths: &mut Vec<Path>) {
    let mut sized: Vec<(usize, Path)> = std::mem::take(paths)
        .into_iter()
        .map(|p| (p.size(), p))
        .collect();
    sized.sort();
    sized.dedup();
    *paths = sized.into_iter().map(|(_, p)| p).collect();
}

fn collect_paths(p: &Path, out: &mut Vec<Path>) {
    out.push(p.clone());
    match p {
        Path::Seq(a, b) | Path::Union(a, b) => {
            collect_paths(a, out);
            collect_paths(b, out);
        }
        Path::Filter(a, q) => {
            collect_paths(a, out);
            collect_paths_of_qualifier(q, out);
        }
        _ => {}
    }
}

fn collect_paths_of_qualifier(q: &Qualifier, out: &mut Vec<Path>) {
    match q {
        Qualifier::Path(p) => collect_paths(p, out),
        Qualifier::LabelIs(_) => {}
        Qualifier::AttrCmp { path, .. } => collect_paths(path, out),
        Qualifier::AttrJoin { left, right, .. } => {
            collect_paths(left, out);
            collect_paths(right, out);
        }
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            collect_paths_of_qualifier(a, out);
            collect_paths_of_qualifier(b, out);
        }
        Qualifier::Not(inner) => collect_paths_of_qualifier(inner, out),
    }
}

fn collect_qualifiers_of_path(p: &Path, out: &mut Vec<Qualifier>) {
    match p {
        Path::Seq(a, b) | Path::Union(a, b) => {
            collect_qualifiers_of_path(a, out);
            collect_qualifiers_of_path(b, out);
        }
        Path::Filter(a, q) => {
            collect_qualifiers_of_path(a, out);
            collect_qualifiers(q, out);
        }
        _ => {}
    }
}

fn collect_qualifiers(q: &Qualifier, out: &mut Vec<Qualifier>) {
    out.push(q.clone());
    match q {
        Qualifier::Path(p) => collect_qualifiers_of_path(p, out),
        Qualifier::LabelIs(_) => {}
        Qualifier::AttrCmp { path, .. } => collect_qualifiers_of_path(path, out),
        Qualifier::AttrJoin { left, right, .. } => {
            collect_qualifiers_of_path(left, out);
            collect_qualifiers_of_path(right, out);
        }
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            collect_qualifiers(a, out);
            collect_qualifiers(b, out);
        }
        Qualifier::Not(inner) => collect_qualifiers(inner, out),
    }
}

/// The number of `↓*` occurrences in the path (the `k` of Lemma 4.6, which bounds the
/// number of parts in the witness-path partition and hence the small-model depth).
pub fn count_descendant_steps(p: &Path) -> usize {
    match p {
        Path::DescendantOrSelf => 1,
        Path::Seq(a, b) | Path::Union(a, b) => {
            count_descendant_steps(a) + count_descendant_steps(b)
        }
        Path::Filter(a, q) => count_descendant_steps(a) + count_descendant_steps_qual(q),
        _ => 0,
    }
}

fn count_descendant_steps_qual(q: &Qualifier) -> usize {
    match q {
        Qualifier::Path(p) => count_descendant_steps(p),
        Qualifier::LabelIs(_) => 0,
        Qualifier::AttrCmp { path, .. } => count_descendant_steps(path),
        Qualifier::AttrJoin { left, right, .. } => {
            count_descendant_steps(left) + count_descendant_steps(right)
        }
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            count_descendant_steps_qual(a) + count_descendant_steps_qual(b)
        }
        Qualifier::Not(inner) => count_descendant_steps_qual(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_path;

    #[test]
    fn sub_paths_are_in_ascending_order() {
        let p = parse_path("a[b/c]/d").unwrap();
        let subs = sub_paths_ascending(&p);
        // Every sub-expression must appear after all of its own sub-expressions.
        for (i, sub) in subs.iter().enumerate() {
            for later in &subs[i + 1..] {
                assert!(later.size() >= sub.size());
            }
        }
        // The full path is last; single steps come first.
        assert_eq!(subs.last().unwrap(), &p);
        assert!(subs.contains(&parse_path("b/c").unwrap()));
        assert!(subs.contains(&parse_path("d").unwrap()));
    }

    #[test]
    fn sub_qualifiers_found_inside_nesting() {
        let p = parse_path("a[b and not(c[d])]").unwrap();
        let quals = sub_qualifiers_ascending(&p);
        assert!(quals.iter().any(|q| matches!(q, Qualifier::Not(_))));
        assert!(quals.iter().any(|q| matches!(q, Qualifier::And(..))));
        // the inner qualifier [d] of c[d] is present
        assert!(quals.contains(&Qualifier::path(parse_path("d").unwrap())));
    }

    #[test]
    fn descendant_count() {
        let p = parse_path("**/a[**/b]/c").unwrap();
        assert_eq!(count_descendant_steps(&p), 2);
        assert_eq!(count_descendant_steps(&parse_path("a/b").unwrap()), 0);
    }
}
