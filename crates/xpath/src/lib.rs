//! The XPath class `X(↓, ↓*, ↑, ↑*, →, →*, ←, ←*, ∪, [], =, ¬)` of Benedikt, Fan &
//! Geerts, with its fragment lattice, a textual syntax, the tree evaluator, and the
//! syntactic transformations the paper's reductions rely on.
//!
//! The crate is purely about *queries and their semantics on concrete trees*; deciding
//! satisfiability against a DTD is the business of `xpsat-core`.
//!
//! # Quick tour
//!
//! ```
//! use xpsat_xpath::{parse_path, eval, Fragment, Features};
//! use xpsat_xmltree::Document;
//!
//! // r -> a(b), c
//! let mut doc = Document::new("r");
//! let a = doc.add_child(doc.root(), "a");
//! doc.add_child(a, "b");
//! doc.add_child(doc.root(), "c");
//!
//! let query = parse_path("a[b and not(lab() = c)]").unwrap();
//! assert!(eval::satisfies(&doc, &query));
//! assert!(Fragment::downward_negation().permits_path(&query));
//! assert!(!Fragment::downward_positive().permits_path(&query));
//! assert!(Features::of_path(&query).negation);
//! ```

pub mod ast;
pub mod closure;
pub mod display;
pub mod eval;
pub mod features;
pub mod inverse;
pub mod parse;
pub mod rewrite;

pub use ast::{CmpOp, Path, Qualifier};
pub use features::{Features, Fragment};
pub use inverse::{containment_witness_query, inverse, root_test};
pub use parse::{
    parse_path, parse_path_with_limits, parse_qualifier, parse_qualifier_with_limits, ParseError,
    ParseLimits, Span,
};
