//! The evaluator: the denotational semantics of Section 2.2 (and 7.1) over document trees.
//!
//! A path `p` denotes a binary relation on nodes; `eval_from(doc, n, p)` returns
//! `n[[p]] = { n' | T ⊨ p(n, n') }`.  A qualifier denotes a unary predicate;
//! `holds(doc, n, q)` decides `T ⊨ q(n)`.  A document *satisfies* a query when the set
//! of nodes reachable from the root is nonempty (`satisfies`).
//!
//! The evaluator is the ground truth of the workspace: every satisfiability engine's
//! witness tree is re-checked against it, and the enumeration oracle used in property
//! tests is built directly on top of it.

use crate::ast::{Path, Qualifier};
use std::collections::BTreeSet;
use xpsat_xmltree::{Document, NodeId};

/// Evaluate a path starting from a set of context nodes: the union of `n[[p]]` over the
/// context set.
pub fn eval_set(doc: &Document, context: &BTreeSet<NodeId>, path: &Path) -> BTreeSet<NodeId> {
    match path {
        Path::Empty => context.clone(),
        Path::Label(l) => context
            .iter()
            .flat_map(|&n| doc.children(n).iter().copied())
            .filter(|&c| doc.label(c) == l)
            .collect(),
        Path::Wildcard => context
            .iter()
            .flat_map(|&n| doc.children(n).iter().copied())
            .collect(),
        Path::DescendantOrSelf => {
            let mut out = context.clone();
            for &n in context {
                out.extend(doc.descendants(n));
            }
            out
        }
        Path::Parent => context.iter().filter_map(|&n| doc.parent(n)).collect(),
        Path::AncestorOrSelf => {
            let mut out = context.clone();
            for &n in context {
                out.extend(doc.ancestors(n));
            }
            out
        }
        Path::NextSibling => context
            .iter()
            .filter_map(|&n| doc.next_sibling(n))
            .collect(),
        Path::FollowingSiblingOrSelf => {
            let mut out = context.clone();
            for &n in context {
                out.extend(doc.following_siblings(n));
            }
            out
        }
        Path::PrevSibling => context
            .iter()
            .filter_map(|&n| doc.prev_sibling(n))
            .collect(),
        Path::PrecedingSiblingOrSelf => {
            let mut out = context.clone();
            for &n in context {
                out.extend(doc.preceding_siblings(n));
            }
            out
        }
        Path::Seq(a, b) => {
            let mid = eval_set(doc, context, a);
            eval_set(doc, &mid, b)
        }
        Path::Union(a, b) => {
            let mut out = eval_set(doc, context, a);
            out.extend(eval_set(doc, context, b));
            out
        }
        Path::Filter(p, q) => eval_set(doc, context, p)
            .into_iter()
            .filter(|&n| holds(doc, n, q))
            .collect(),
    }
}

/// `n[[p]]`: the nodes reachable from `n` via `p`.
pub fn eval_from(doc: &Document, from: NodeId, path: &Path) -> BTreeSet<NodeId> {
    let context: BTreeSet<NodeId> = [from].into_iter().collect();
    eval_set(doc, &context, path)
}

/// `r[[p]]`: the nodes selected by `p` from the root.
pub fn selects(doc: &Document, path: &Path) -> BTreeSet<NodeId> {
    eval_from(doc, doc.root(), path)
}

/// `T ⊨ p`: the query selects at least one node from the root.
pub fn satisfies(doc: &Document, path: &Path) -> bool {
    !selects(doc, path).is_empty()
}

/// `T ⊨ q(r)`: the qualifier holds at the root.
pub fn satisfies_qualifier(doc: &Document, q: &Qualifier) -> bool {
    holds(doc, doc.root(), q)
}

/// `T ⊨ q(n)`: the qualifier holds at node `n`.
pub fn holds(doc: &Document, node: NodeId, q: &Qualifier) -> bool {
    match q {
        Qualifier::Path(p) => !eval_from(doc, node, p).is_empty(),
        Qualifier::LabelIs(l) => doc.label(node) == l,
        Qualifier::AttrCmp {
            path,
            attr,
            op,
            value,
        } => eval_from(doc, node, path)
            .into_iter()
            .any(|n| doc.attr(n, attr).is_some_and(|v| op.eval(v, value))),
        Qualifier::AttrJoin {
            left,
            left_attr,
            op,
            right,
            right_attr,
        } => {
            let left_nodes = eval_from(doc, node, left);
            let right_nodes = eval_from(doc, node, right);
            left_nodes.iter().any(|&l| {
                doc.attr(l, left_attr).is_some_and(|lv| {
                    right_nodes
                        .iter()
                        .any(|&r| doc.attr(r, right_attr).is_some_and(|rv| op.eval(lv, rv)))
                })
            })
        }
        Qualifier::And(a, b) => holds(doc, node, a) && holds(doc, node, b),
        Qualifier::Or(a, b) => holds(doc, node, a) || holds(doc, node, b),
        Qualifier::Not(inner) => !holds(doc, node, inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::parse::parse_path;

    /// r -> a(b, c[x=1]), a(c[x=2]), d
    fn sample() -> Document {
        let mut doc = Document::new("r");
        let a1 = doc.add_child(doc.root(), "a");
        doc.add_child(a1, "b");
        let c1 = doc.add_child(a1, "c");
        doc.set_attr(c1, "x", "1");
        let a2 = doc.add_child(doc.root(), "a");
        let c2 = doc.add_child(a2, "c");
        doc.set_attr(c2, "x", "2");
        doc.add_child(doc.root(), "d");
        doc
    }

    #[test]
    fn child_and_descendant_axes() {
        let doc = sample();
        assert_eq!(selects(&doc, &parse_path("a").unwrap()).len(), 2);
        assert_eq!(selects(&doc, &parse_path("a/b").unwrap()).len(), 1);
        assert_eq!(selects(&doc, &parse_path("**/c").unwrap()).len(), 2);
        assert_eq!(selects(&doc, &parse_path("**").unwrap()).len(), doc.len());
        assert!(!satisfies(&doc, &parse_path("z").unwrap()));
    }

    #[test]
    fn upward_axes() {
        let doc = sample();
        // Parents of c nodes are a nodes.
        let p = parse_path("a/c/..").unwrap();
        let result = selects(&doc, &p);
        assert_eq!(result.len(), 2);
        assert!(result.iter().all(|&n| doc.label(n) == "a"));
        // ancestor-or-self of b includes b, a and the root.
        let p = parse_path("a/b/^*").unwrap();
        assert_eq!(selects(&doc, &p).len(), 3);
    }

    #[test]
    fn sibling_axes() {
        let doc = sample();
        let next_of_first_a = parse_path("a/>").unwrap();
        let result = selects(&doc, &next_of_first_a);
        // siblings to the right of the two a nodes: the second a and d.
        assert_eq!(result.len(), 2);
        let all_following = parse_path("a/>>").unwrap();
        assert_eq!(selects(&doc, &all_following).len(), 3);
        let prev_of_d = parse_path("d/<").unwrap();
        assert!(selects(&doc, &prev_of_d)
            .iter()
            .all(|&n| doc.label(n) == "a"));
    }

    #[test]
    fn qualifiers_and_negation() {
        let doc = sample();
        assert_eq!(selects(&doc, &parse_path("a[b]").unwrap()).len(), 1);
        assert_eq!(selects(&doc, &parse_path("a[not(b)]").unwrap()).len(), 1);
        assert_eq!(selects(&doc, &parse_path("a[b or c]").unwrap()).len(), 2);
        assert_eq!(selects(&doc, &parse_path("a[b and c]").unwrap()).len(), 1);
        assert_eq!(
            selects(&doc, &parse_path(".[not(z)]").unwrap()).len(),
            1,
            "root satisfies the absence of a z child"
        );
    }

    #[test]
    fn label_tests() {
        let doc = sample();
        let p = parse_path("*[lab() = d]").unwrap();
        let result = selects(&doc, &p);
        assert_eq!(result.len(), 1);
        assert!(result.iter().all(|&n| doc.label(n) == "d"));
    }

    #[test]
    fn attribute_comparisons_and_joins() {
        let doc = sample();
        assert!(satisfies(&doc, &parse_path("a[c/@x = \"1\"]").unwrap()));
        assert!(!satisfies(&doc, &parse_path("a[c/@x = \"3\"]").unwrap()));
        assert!(satisfies(&doc, &parse_path("a[c/@x != \"1\"]").unwrap()));

        // Join: is there an a-node whose c child has the same x value as some
        // (possibly different) c grand-child of the root?  Trivially yes.
        let join = Qualifier::AttrJoin {
            left: Path::seq(Path::label("a"), Path::label("c")),
            left_attr: "x".into(),
            op: CmpOp::Eq,
            right: Path::seq(Path::label("a"), Path::label("c")),
            right_attr: "x".into(),
        };
        assert!(satisfies_qualifier(&doc, &join));
        // No two distinct-valued c nodes share a value, so an equality join across the
        // two different a subtrees fails.
        let disjoint_join = Qualifier::AttrJoin {
            left: Path::seq(
                Path::label("a").filter(Qualifier::path(Path::label("b"))),
                Path::label("c"),
            ),
            left_attr: "x".into(),
            op: CmpOp::Eq,
            right: Path::seq(
                Path::label("a").filter(Qualifier::not(Qualifier::path(Path::label("b")))),
                Path::label("c"),
            ),
            right_attr: "x".into(),
        };
        assert!(!satisfies_qualifier(&doc, &disjoint_join));
    }

    #[test]
    fn missing_attributes_never_compare() {
        let doc = sample();
        // b has no attribute x: neither = nor != may hold through it.
        assert!(!satisfies(&doc, &parse_path("a/b[@x = \"1\"]").unwrap()));
        assert!(!satisfies(&doc, &parse_path("a/b[@x != \"1\"]").unwrap()));
    }
}
