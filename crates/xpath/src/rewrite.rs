//! Query rewritings used by the paper's equivalences.
//!
//! * [`eliminate_recursion`] — Proposition 6.1: under a nonrecursive DTD whose trees
//!   have depth at most `k`, `↓*` can be replaced by `ε ∪ ↓ ∪ … ∪ ↓^k` (and `↑*` by the
//!   corresponding parent chains), collapsing e.g. the EXPTIME fragment of Theorem 5.3
//!   into the PSPACE fragment of Theorem 5.2.
//! * [`updown_to_qualifiers`] — the rewriting of Theorem 6.8(2): every `X(↓, ↑)` query
//!   is root-equivalent to an `X(↓, [])` query (or is trivially unsatisfiable because it
//!   climbs above the root).
//! * [`qualifiers_to_updown`] — the rewriting used in Theorem 6.6(3) (after Benedikt,
//!   Fan & Kuper 2005): an `X(↓, [])` query *without label tests* is equivalent to an
//!   `X(↓, ↑)` query.
//!
//! All three are pure syntactic transformations; their equivalence claims are
//! property-tested against the evaluator in this module and against the satisfiability
//! engines in `xpsat-core`.

use crate::ast::{Path, Qualifier};

/// Replace every `↓*` by `ε ∪ ↓ ∪ … ∪ ↓^k` and every `↑*` by `ε ∪ ↑ ∪ … ∪ ↑^k`.
///
/// On trees of depth at most `k` the result is equivalent to the input
/// (Proposition 6.1).  The rewriting multiplies the query size by `O(k²)`.
pub fn eliminate_recursion(p: &Path, k: usize) -> Path {
    match p {
        Path::DescendantOrSelf => bounded_chain(Path::Wildcard, k),
        Path::AncestorOrSelf => bounded_chain(Path::Parent, k),
        Path::Seq(a, b) => Path::seq(eliminate_recursion(a, k), eliminate_recursion(b, k)),
        Path::Union(a, b) => Path::union(eliminate_recursion(a, k), eliminate_recursion(b, k)),
        Path::Filter(a, q) => Path::Filter(
            Box::new(eliminate_recursion(a, k)),
            Box::new(eliminate_recursion_qual(q, k)),
        ),
        other => other.clone(),
    }
}

fn eliminate_recursion_qual(q: &Qualifier, k: usize) -> Qualifier {
    match q {
        Qualifier::Path(p) => Qualifier::Path(eliminate_recursion(p, k)),
        Qualifier::LabelIs(l) => Qualifier::LabelIs(l.clone()),
        Qualifier::AttrCmp {
            path,
            attr,
            op,
            value,
        } => Qualifier::AttrCmp {
            path: eliminate_recursion(path, k),
            attr: attr.clone(),
            op: *op,
            value: value.clone(),
        },
        Qualifier::AttrJoin {
            left,
            left_attr,
            op,
            right,
            right_attr,
        } => Qualifier::AttrJoin {
            left: eliminate_recursion(left, k),
            left_attr: left_attr.clone(),
            op: *op,
            right: eliminate_recursion(right, k),
            right_attr: right_attr.clone(),
        },
        Qualifier::And(a, b) => Qualifier::And(
            Box::new(eliminate_recursion_qual(a, k)),
            Box::new(eliminate_recursion_qual(b, k)),
        ),
        Qualifier::Or(a, b) => Qualifier::Or(
            Box::new(eliminate_recursion_qual(a, k)),
            Box::new(eliminate_recursion_qual(b, k)),
        ),
        Qualifier::Not(inner) => Qualifier::Not(Box::new(eliminate_recursion_qual(inner, k))),
    }
}

fn bounded_chain(step: Path, k: usize) -> Path {
    let mut alts = vec![Path::Empty];
    for i in 1..=k {
        alts.push(Path::seq_all(std::iter::repeat_n(step.clone(), i)));
    }
    Path::union_all(alts)
}

/// Rewrite an `X(↓, ↑)` query (steps `ε | l | ↓ | ↑` composed with `/`, no qualifiers,
/// no union) into a root-equivalent `X(↓, [])` query.
///
/// Returns `None` when the query climbs above its starting node; evaluated at the root
/// such a query is unsatisfiable on every tree (this is how Theorem 6.8(2) uses the
/// rewriting).  Returns an error-like `None` as well when the input is outside
/// `X(↓, ↑)`.
pub fn updown_to_qualifiers(p: &Path) -> Option<Path> {
    // Flatten the composition spine into primitive steps.
    let mut steps = Vec::new();
    if !flatten_updown(p, &mut steps) {
        return None;
    }
    // Each stack entry is a downward step (with any filters accumulated onto it); the
    // bottom entry collects filters that apply to the starting node itself.
    let mut stack: Vec<Path> = vec![Path::Empty];
    for step in steps {
        match step {
            Path::Empty => {}
            Path::Label(_) | Path::Wildcard => stack.push(step),
            Path::Parent => {
                if stack.len() == 1 {
                    // Climbing above the starting node: unsatisfiable at the root.
                    return None;
                }
                let sub = stack.pop().expect("len checked");
                let top = stack.last_mut().expect("nonempty stack");
                *top = top.clone().filter(Qualifier::path(sub));
            }
            _ => return None,
        }
    }
    Some(Path::seq_all(stack))
}

fn flatten_updown(p: &Path, out: &mut Vec<Path>) -> bool {
    match p {
        Path::Seq(a, b) => flatten_updown(a, out) && flatten_updown(b, out),
        Path::Empty | Path::Label(_) | Path::Wildcard | Path::Parent => {
            out.push(p.clone());
            true
        }
        _ => false,
    }
}

/// Rewrite an `X(↓, [])` query *without label tests, union, negation or data values*
/// into an equivalent `X(↓, ↑)` query (Theorem 6.6(3)).
///
/// Returns `None` when the query lies outside that fragment.
pub fn qualifiers_to_updown(p: &Path) -> Option<Path> {
    rewrite_path(p).map(|(path, _depth)| path)
}

/// Rewrites a path, additionally returning the number of downward steps it takes (so
/// that qualifier sub-rewrites know how far to climb back up).
fn rewrite_path(p: &Path) -> Option<(Path, usize)> {
    match p {
        Path::Empty => Some((Path::Empty, 0)),
        Path::Label(l) => Some((Path::label(l.clone()), 1)),
        Path::Wildcard => Some((Path::Wildcard, 1)),
        Path::Seq(a, b) => {
            let (ra, da) = rewrite_path(a)?;
            let (rb, db) = rewrite_path(b)?;
            Some((Path::seq(ra, rb), da + db))
        }
        Path::Filter(a, q) => {
            let (ra, da) = rewrite_path(a)?;
            let rq = rewrite_qualifier(q)?;
            Some((Path::seq(ra, rq), da))
        }
        _ => None,
    }
}

/// Rewrites a qualifier into a path that starts and ends at the same node.
fn rewrite_qualifier(q: &Qualifier) -> Option<Path> {
    match q {
        Qualifier::Path(p) => {
            let (rp, depth) = rewrite_path(p)?;
            Some(Path::seq(rp, Path::parent_chain(depth)))
        }
        Qualifier::And(a, b) => {
            let ra = rewrite_qualifier(a)?;
            let rb = rewrite_qualifier(b)?;
            Some(Path::seq(ra, rb))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{satisfies, selects};
    use crate::parse::parse_path;
    use xpsat_xmltree::Document;

    fn sample() -> Document {
        // r -> a(b(d), c), c
        let mut doc = Document::new("r");
        let a = doc.add_child(doc.root(), "a");
        let b = doc.add_child(a, "b");
        doc.add_child(b, "d");
        doc.add_child(a, "c");
        doc.add_child(doc.root(), "c");
        doc
    }

    #[test]
    fn recursion_elimination_is_equivalent_on_bounded_depth_trees() {
        let doc = sample();
        let depth = doc.height();
        for q in ["**/d", "a/**", "**/c", "**[d]", "a/**/d/^*", "^*"] {
            let p = parse_path(q).unwrap();
            let rewritten = eliminate_recursion(&p, depth);
            assert_eq!(
                selects(&doc, &p),
                selects(&doc, &rewritten),
                "query {q} vs {rewritten}"
            );
        }
    }

    #[test]
    fn updown_rewriting_preserves_root_satisfaction() {
        let doc = sample();
        for q in ["a/b/..", "a/b/../c", "a/*/../b/d", "a/b/../../c", "a/.."] {
            let p = parse_path(q).unwrap();
            match updown_to_qualifiers(&p) {
                Some(rw) => {
                    assert_eq!(
                        satisfies(&doc, &p),
                        satisfies(&doc, &rw),
                        "query {q} vs rewritten {rw}"
                    );
                    // the rewritten query must not use the parent axis
                    assert!(!crate::features::Features::of_path(&rw).has_upward());
                }
                None => {
                    // Climbing above the root: the original must be root-unsatisfiable.
                    assert!(!satisfies(&doc, &p), "query {q}");
                }
            }
        }
    }

    #[test]
    fn qualifier_rewriting_preserves_root_satisfaction() {
        let doc = sample();
        for q in [
            "a[b]",
            "a[b/d]/c",
            "a[b and c]",
            ".[a[b[d] and c]]",
            "a[b[d]]/c",
        ] {
            let p = parse_path(q).unwrap();
            let rw = qualifiers_to_updown(&p).expect("fragment accepted");
            assert_eq!(
                satisfies(&doc, &p),
                satisfies(&doc, &rw),
                "query {q} vs rewritten {rw}"
            );
            // the rewritten query must not use qualifiers
            assert!(!crate::features::Features::of_path(&rw).qualifier);
        }
    }

    #[test]
    fn qualifier_rewriting_rejects_label_tests() {
        let p = parse_path("a[lab() = a]").unwrap();
        assert!(qualifiers_to_updown(&p).is_none());
        let p = parse_path("a[not(b)]").unwrap();
        assert!(qualifiers_to_updown(&p).is_none());
    }
}
