//! The decision procedures, one per upper bound proved in the paper.
//!
//! | module | fragment | DTD class | paper result | complexity |
//! |---|---|---|---|---|
//! | [`downward`] | `X(↓, ↓*, ∪)` | any | Theorem 4.1 | PTIME |
//! | [`sibling`] | `X(→, ←)` (label steps + sibling hops) | any | Theorem 7.1 | PTIME |
//! | [`djfree`] | `X(↓, ↓*, ∪, [])` | disjunction-free | Theorem 6.8 | PTIME |
//! | [`nodtd`] | `X(↓, ↓*, ∪, [])` | none (absent DTD) | Theorem 6.11(1) | PTIME |
//! | [`positive`] | `X(↓, ↓*, ∪, [], =)` (+ label tests) | any | Theorem 4.4 | NP |
//! | [`negation`] | `X(↓, ↓*, ∪, [], ¬)` (+ label tests) | any | Theorems 5.2/5.3 | EXPTIME |
//! | [`enumeration`] | the full class incl. `↑`, data values, siblings | bounded / nonrecursive | Proposition 6.4, Theorem 5.5 | exponential |
//!
//! Upward axes are handled by the solver façade through the rewritings of
//! Proposition 6.1 and Theorems 6.6(3)/6.8(2) whenever those apply, and by
//! [`enumeration`] otherwise.

pub mod djfree;
pub mod downward;
pub mod enumeration;
pub mod negation;
pub mod nodtd;
pub mod positive;
pub mod sibling;
