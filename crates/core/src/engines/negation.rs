//! An EXPTIME decision procedure for downward fragments with negation, covering the
//! upper bounds of Theorems 5.2 and 5.3 restricted to `X(↓, ↓*, ∪, [], ¬)` (with label
//! tests, without data values, upward or sibling axes).
//!
//! The paper obtains its EXPTIME upper bound by translation to propositional dynamic
//! logic (Marx 2004); we use a self-contained *subtree-type fixpoint* in the same
//! complexity class.  For a downward query the truth of every relevant sub-path at a
//! node depends only on the node's label and on which (label, sub-path-truth) facts its
//! children provide.  The engine therefore:
//!
//! 1. computes the *suffix closure* `CL` of the query (every path whose truth at a node
//!    must be tracked) and the set `D` of *child demands* `(child-step, tail)` that the
//!    closure's head-normal forms mention;
//! 2. computes, per element type, the set of achievable *profiles* (subsets of `CL` true
//!    at the root of some conforming subtree) as a least fixpoint: a profile is
//!    achievable at `A` if some children word of `P(A)` can be assembled from children
//!    with already-achieved profiles, where the word's existence is decided by a product
//!    of the Glushkov automaton with the accumulated demand-union (this is where the
//!    exponential lives);
//! 3. declares the instance satisfiable iff some achievable profile of the root type
//!    makes the query true, and rebuilds a witness document from the recipes recorded
//!    during the fixpoint.
//!
//! Negation is handled exactly — profiles record both what holds and (by absence) what
//! does not — which is what distinguishes this engine from the positive one.
//!
//! Element types are interned [`Sym`]s throughout: the achieved-profile sets and recipe
//! words are indexed/keyed by symbol, label constraints on head-normal forms are
//! resolved against the symbol table once at analysis time, and every `Step` alternative
//! carries its precompiled demand index so the per-profile evaluation is a bitset-style
//! membership test instead of a linear scan over string-labelled demands.

use crate::budget::{BudgetMeter, Exhausted};
use crate::sat::{SatError, Satisfiability};
use crate::witness::fill_missing_attributes;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use xpsat_automata::BitSet;
use xpsat_dtd::{CompiledDtd, Dtd, DtdArtifacts, Sym};
use xpsat_xmltree::{Document, NodeId};
use xpsat_xpath::{Features, Path, Qualifier};

const ENGINE: &str = "negation fixpoint (Theorems 5.2/5.3)";

/// Does the query lie in `X(↓, ↓*, ∪, [], ¬)` with label tests (no data values, upward
/// or sibling axes)?
pub fn supports(query: &Path) -> bool {
    supports_features(&Features::of_path(query))
}

/// [`supports`] over precomputed features (the solver computes them once per dispatch).
pub fn supports_features(f: &Features) -> bool {
    !f.data_value && !f.has_upward() && !f.has_sibling()
}

/// A profile: the set of closure paths (by index) true at a node, as a bitset — profile
/// and demand-union manipulation inside the fixpoint is word-level block arithmetic.
type Profile = BitSet;

/// A child demand: "some child with this label constraint satisfies this closure path".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Demand {
    /// `None` = any label.
    label: Option<Sym>,
    tail: usize,
}

/// The label constraint of a compiled child step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LabelCk {
    /// Wildcard step.
    Any,
    /// A label step naming a declared element type.
    Is(Sym),
    /// A label step naming an undeclared type: never satisfiable.
    Never,
}

/// One alternative of a head-normal form.
#[derive(Debug, Clone)]
enum HeadAlt {
    /// The path may end at the current node provided the qualifiers hold there.
    Done(Vec<Qualifier>),
    /// After the qualifiers hold at the current node, the demand with the given index
    /// must be supplied by some child.  `usize::MAX` marks a dead step (undeclared
    /// label) that can never be supplied.
    Step(Vec<Qualifier>, usize),
    /// Construction-time only: the tail path is known but its closure index is not yet;
    /// patched into `Step` once the closure is saturated.
    StepPending(Vec<Qualifier>, LabelCk, Path, usize),
}

/// Decide `(query, dtd)`; complete for the fragment reported by [`supports`].
///
/// Convenience wrapper that compiles the artifacts for one call; batch callers should
/// build [`DtdArtifacts`] once and use [`decide_with`].
pub fn decide(dtd: &Dtd, query: &Path) -> Result<Satisfiability, SatError> {
    decide_with(&DtdArtifacts::build(dtd), query)
}

/// Decide `(query, dtd)` against precompiled artifacts.
pub fn decide_with(artifacts: &DtdArtifacts, query: &Path) -> Result<Satisfiability, SatError> {
    let Some(compiled) = artifacts.compiled() else {
        if !supports(query) {
            return Err(SatError::UnsupportedFragment {
                engine: ENGINE,
                detail: format!("query {query} uses data values, upward or sibling axes"),
            });
        }
        return Ok(Satisfiability::Unsatisfiable);
    };
    let prepared = prepare(compiled, query)?;
    Ok(decide_prepared(compiled, &prepared))
}

/// Build the reusable static analysis of `query` against `compiled`: the suffix
/// closure, the head-normal forms with precompiled demand indices and the per-element
/// applicable-demand index.  The result is owned (no borrow of the compile), so callers
/// serving repeated negation-heavy traffic can memoise it per `(artifact, query)` and
/// amortise the closure computation — which dominates when the same query is re-decided
/// after a decision-cache miss.
///
/// A [`PreparedQuery`] resolves element labels to this compile's [`Sym`]s; it must only
/// ever be replayed against the same compile (or a byte-identical one).
pub fn prepare(compiled: &CompiledDtd, query: &Path) -> Result<PreparedQuery, SatError> {
    if !supports(query) {
        return Err(SatError::UnsupportedFragment {
            engine: ENGINE,
            detail: format!("query {query} uses data values, upward or sibling axes"),
        });
    }
    PreparedQuery::build(compiled, query)
}

/// Run the fixpoint of a previously [`prepare`]d query against the same compile.
pub fn decide_prepared(compiled: &CompiledDtd, prepared: &PreparedQuery) -> Satisfiability {
    decide_prepared_budgeted(compiled, prepared, &BudgetMeter::unlimited())
        .expect("unlimited meter never exhausts")
}

/// Run the fixpoint under a step/deadline budget.  The EXPTIME lives in the product of
/// the Glushkov automata with the demand-bit unions; the meter is charged per product
/// state expanded, so exhaustion surfaces within a bounded amount of extra work.
pub fn decide_prepared_budgeted(
    compiled: &CompiledDtd,
    prepared: &PreparedQuery,
    meter: &BudgetMeter,
) -> Result<Satisfiability, Exhausted> {
    let query_index = prepared.query_index;
    let fixpoint = prepared.fixpoint(compiled, query_index, meter)?;
    let root = compiled.root();
    let winning = fixpoint.achieved[root.index()]
        .iter()
        .find(|profile| profile.contains(query_index));
    Ok(match winning {
        Some(profile) => {
            let mut doc = Document::new(compiled.name(root));
            let doc_root = doc.root();
            fixpoint.build_witness(compiled, &mut doc, doc_root, root, profile);
            fill_missing_attributes(&mut doc, compiled.dtd());
            Satisfiability::Satisfiable(doc)
        }
        None => Satisfiability::Unsatisfiable,
    })
}

/// The static analysis of the query against the DTD: the closure, the demands and the
/// head-normal forms.  Owned — see [`prepare`] for the memoisation contract.
#[derive(Debug)]
pub struct PreparedQuery {
    query: Path,
    /// Closure index of `query` itself.
    query_index: usize,
    closure: Vec<Path>,
    /// Closure indices sorted by structural size: evaluation order for `profile_of`.
    eval_order: Vec<usize>,
    hnf: Vec<Vec<HeadAlt>>,
    demands: Vec<Demand>,
    /// Per element symbol: the demands a child with that label can supply, as
    /// `(demand index, tail closure index)` pairs — the precompiled demand index that
    /// turns `bits` into a short indexed scan instead of a full-demand-list filter.
    applicable: Vec<Vec<(usize, usize)>>,
}

impl PreparedQuery {
    /// The right-associated form of the prepared query.
    pub fn query(&self) -> &Path {
        &self.query
    }

    /// Number of paths in the suffix closure (a size proxy for memo accounting).
    pub fn closure_len(&self) -> usize {
        self.closure.len()
    }

    fn build(compiled: &CompiledDtd, query: &Path) -> Result<PreparedQuery, SatError> {
        let query = query.right_assoc();
        let mut analysis = PreparedQuery {
            query: query.clone(),
            query_index: 0,
            closure: Vec::new(),
            eval_order: Vec::new(),
            hnf: Vec::new(),
            demands: Vec::new(),
            applicable: Vec::new(),
        };
        let resolve = |label: Option<String>| -> LabelCk {
            match label {
                None => LabelCk::Any,
                Some(l) => match compiled.elem_sym(&l) {
                    Some(sym) => LabelCk::Is(sym),
                    None => LabelCk::Never,
                },
            }
        };
        // Seed the closure with the query and every qualifier path, then saturate with
        // head-normal-form tails.
        let mut worklist: VecDeque<Path> = VecDeque::new();
        worklist.push_back(query.clone());
        for q in xpsat_xpath::closure::sub_qualifiers_ascending(&query) {
            if let Qualifier::Path(p) = q {
                worklist.push_back(p.right_assoc());
            }
        }
        while let Some(path) = worklist.pop_front() {
            if analysis.closure.contains(&path) {
                continue;
            }
            if analysis.closure.len() > 4_000 {
                return Err(SatError::BudgetExceeded { engine: ENGINE });
            }
            let index = analysis.closure.len();
            analysis.closure.push(path.clone());
            analysis.hnf.push(Vec::new()); // placeholder, filled below
            let alts = head_normal_form(&path);
            let mut compiled_alts = Vec::new();
            for alt in alts {
                match alt {
                    RawAlt::Done(quals) => {
                        for q in &quals {
                            for p in qualifier_paths(q) {
                                if !analysis.closure.contains(&p) && !worklist.contains(&p) {
                                    worklist.push_back(p);
                                }
                            }
                        }
                        compiled_alts.push(HeadAlt::Done(quals));
                    }
                    RawAlt::Step(quals, label, tail) => {
                        for q in &quals {
                            for p in qualifier_paths(q) {
                                if !analysis.closure.contains(&p) && !worklist.contains(&p) {
                                    worklist.push_back(p);
                                }
                            }
                        }
                        let tail_index = match analysis.closure.iter().position(|p| *p == tail) {
                            Some(i) => i,
                            None => {
                                // The tail will be processed later; reserve its slot by
                                // pushing it to the worklist and remembering the path.
                                if !worklist.contains(&tail) {
                                    worklist.push_back(tail.clone());
                                }
                                usize::MAX // patched below once every path has an index
                            }
                        };
                        compiled_alts.push(HeadAlt::StepPending(
                            quals,
                            resolve(label),
                            tail,
                            tail_index,
                        ));
                    }
                }
            }
            analysis.hnf[index] = compiled_alts;
        }
        // Resolve pending tail indices, collect the demand set and rewrite every Step
        // to carry its demand index directly.
        let closure = analysis.closure.clone();
        let mut demands: BTreeSet<Demand> = BTreeSet::new();
        let mut resolved_steps: Vec<(LabelCk, usize)> = Vec::new();
        for alts in &analysis.hnf {
            for alt in alts {
                if let HeadAlt::StepPending(_, label, tail, idx) = alt {
                    let resolved = if *idx != usize::MAX {
                        *idx
                    } else {
                        closure
                            .iter()
                            .position(|p| p == tail)
                            .expect("tail was pushed to the worklist")
                    };
                    resolved_steps.push((*label, resolved));
                    match label {
                        LabelCk::Any => {
                            demands.insert(Demand {
                                label: None,
                                tail: resolved,
                            });
                        }
                        LabelCk::Is(sym) => {
                            demands.insert(Demand {
                                label: Some(*sym),
                                tail: resolved,
                            });
                        }
                        LabelCk::Never => {}
                    }
                }
            }
        }
        analysis.demands = demands.into_iter().collect();
        let mut step_cursor = 0;
        for alts in &mut analysis.hnf {
            for alt in alts.iter_mut() {
                if let HeadAlt::StepPending(quals, label, _, _) = alt {
                    let (_, tail) = resolved_steps[step_cursor];
                    step_cursor += 1;
                    let demand_index = match label {
                        LabelCk::Never => usize::MAX,
                        LabelCk::Any => analysis
                            .demands
                            .binary_search(&Demand { label: None, tail })
                            .expect("demand was collected"),
                        LabelCk::Is(sym) => analysis
                            .demands
                            .binary_search(&Demand {
                                label: Some(*sym),
                                tail,
                            })
                            .expect("demand was collected"),
                    };
                    *alt = HeadAlt::Step(std::mem::take(quals), demand_index);
                }
            }
        }
        // Evaluation order: increasing structural size, so that qualifier paths
        // (proper sub-expressions) are available when needed.
        let mut order: Vec<usize> = (0..analysis.closure.len()).collect();
        order.sort_by_key(|&i| analysis.closure[i].size());
        analysis.eval_order = order;
        // Per-element applicable-demand index: wildcard demands apply to every label,
        // labelled demands to their own symbol only.
        analysis.applicable = (0..compiled.num_elements())
            .map(|elem_index| {
                let sym = Sym::from_index(elem_index);
                analysis
                    .demands
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.label.is_none_or(|l| l == sym))
                    .map(|(i, d)| (i, d.tail))
                    .collect()
            })
            .collect();
        analysis.query_index = analysis
            .closure
            .iter()
            .position(|p| *p == query)
            .expect("the query is seeded into the closure");
        Ok(analysis)
    }

    /// The demand bits provided by a child with the given label and profile: an
    /// indexed scan over the label's precompiled applicable demands.
    fn bits(&self, label: Sym, profile: &Profile) -> BitSet {
        let mut out = BitSet::new();
        for &(demand_index, tail) in &self.applicable[label.index()] {
            if profile.contains(tail) {
                out.insert(demand_index);
            }
        }
        out
    }

    /// Evaluate the profile of a node with the given label whose children provide the
    /// demand-bit union `supplied`.
    fn profile_of(&self, compiled: &CompiledDtd, label: Sym, supplied: &BitSet) -> Profile {
        let mut truth = vec![false; self.closure.len()];
        for &index in &self.eval_order {
            let value = self.hnf[index].iter().any(|alt| match alt {
                HeadAlt::Done(quals) => quals
                    .iter()
                    .all(|q| self.eval_qualifier(compiled, q, label, &truth)),
                HeadAlt::Step(quals, demand_index) => {
                    *demand_index != usize::MAX
                        && supplied.contains(*demand_index)
                        && quals
                            .iter()
                            .all(|q| self.eval_qualifier(compiled, q, label, &truth))
                }
                HeadAlt::StepPending(..) => unreachable!("patched during construction"),
            });
            truth[index] = value;
        }
        truth
            .into_iter()
            .enumerate()
            .filter_map(|(i, v)| v.then_some(i))
            .collect()
    }

    fn eval_qualifier(
        &self,
        compiled: &CompiledDtd,
        q: &Qualifier,
        label: Sym,
        truth: &[bool],
    ) -> bool {
        match q {
            Qualifier::Path(p) => {
                let normalized = p.right_assoc();
                let index = self
                    .closure
                    .iter()
                    .position(|c| *c == normalized)
                    .expect("qualifier paths are seeded into the closure");
                truth[index]
            }
            Qualifier::LabelIs(l) => compiled.elem_sym(l) == Some(label),
            Qualifier::And(a, b) => {
                self.eval_qualifier(compiled, a, label, truth)
                    && self.eval_qualifier(compiled, b, label, truth)
            }
            Qualifier::Or(a, b) => {
                self.eval_qualifier(compiled, a, label, truth)
                    || self.eval_qualifier(compiled, b, label, truth)
            }
            Qualifier::Not(inner) => !self.eval_qualifier(compiled, inner, label, truth),
            // Data values are rejected by `supports`.
            _ => false,
        }
    }

    /// Run the least fixpoint over achievable profiles, driven by a dirty worklist.
    ///
    /// An element type's achievable-profile set can only grow when a type mentioned in
    /// its content model gains a profile, so instead of re-scanning every element per
    /// round the worklist re-visits exactly the dirtied dependents (read off the
    /// precomputed DTD graph).  Each visit runs one forward product of the Glushkov
    /// automaton with the accumulated demand-bit union over a frozen view of the
    /// achieved sets; distinct demand-bit contributions per child symbol are computed
    /// once per visit (they are key-independent) and memoised across visits.
    ///
    /// Stops early as soon as the root type achieves a profile containing
    /// `query_index`: recipes are recorded the moment a profile is first achieved, so
    /// the witness for that profile is already fully expandable.
    fn fixpoint(
        &self,
        compiled: &CompiledDtd,
        query_index: usize,
        meter: &BudgetMeter,
    ) -> Result<Fixpoint, Exhausted> {
        let n = compiled.num_elements();
        let root = compiled.root();
        let mut achieved: Vec<BTreeSet<Profile>> = vec![BTreeSet::new(); n];
        let mut recipes: BTreeMap<(Sym, Profile), Recipe> = BTreeMap::new();
        // Reverse dependency index: `dependents[s]` lists the element types whose
        // content model mentions `s`.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for elem_index in 0..n {
            for s in compiled.graph().succ_syms(Sym::from_index(elem_index)) {
                dependents[s.index()].push(elem_index);
            }
        }
        // Demand bits per (child label, child profile), memoised across visits.
        let mut bits_cache: HashMap<(Sym, Profile), BitSet> = HashMap::new();

        let mut queued = vec![true; n];
        let mut worklist: VecDeque<usize> = (0..n).collect();
        while let Some(elem_index) = worklist.pop_front() {
            meter.spend(1)?;
            queued[elem_index] = false;
            let elem = Sym::from_index(elem_index);
            let nfa = compiled.automaton(elem);

            // Distinct demand-bit contributions per child symbol, over the achieved
            // sets as of this visit (the BFS below never consults them again).
            let mut contributions: HashMap<Sym, Vec<(BitSet, Profile)>> = HashMap::new();
            for &sym in compiled.graph().succ_syms(elem) {
                let child_options = &achieved[sym.index()];
                if child_options.is_empty() {
                    continue;
                }
                let mut distinct: BTreeMap<BitSet, Profile> = BTreeMap::new();
                for child_profile in child_options {
                    let bits = bits_cache
                        .entry((sym, child_profile.clone()))
                        .or_insert_with(|| self.bits(sym, child_profile));
                    if !distinct.contains_key(bits) {
                        distinct.insert(bits.clone(), child_profile.clone());
                    }
                }
                contributions.insert(sym, distinct.into_iter().collect());
            }

            // Forward product of the Glushkov automaton with the accumulated
            // demand-bit union; every accepting (state, union) yields a profile.
            type Key = (usize, BitSet);
            let mut seen: HashSet<Key> = HashSet::new();
            let mut back: HashMap<Key, (Key, Sym, Profile)> = HashMap::new();
            let start: Key = (nfa.start(), BitSet::new());
            seen.insert(start.clone());
            let mut queue = VecDeque::new();
            queue.push_back(start);
            let mut gained = false;
            while let Some(key) = queue.pop_front() {
                // One product state of the Glushkov automaton with the demand-bit
                // union: the unit the EXPTIME blow-up is made of.
                meter.spend(1)?;
                if nfa.is_accepting(key.0) {
                    let profile = self.profile_of(compiled, elem, &key.1);
                    let entry = &mut achieved[elem_index];
                    if !entry.contains(&profile) {
                        entry.insert(profile.clone());
                        gained = true;
                        // Record the recipe: trace the word and child profiles back.
                        let mut word = Vec::new();
                        let mut child_profiles = Vec::new();
                        let mut cursor = key.clone();
                        while let Some((prev, sym, child_profile)) = back.get(&cursor) {
                            word.push(*sym);
                            child_profiles.push(child_profile.clone());
                            cursor = prev.clone();
                        }
                        word.reverse();
                        child_profiles.reverse();
                        let winning = elem == root && profile.contains(query_index);
                        recipes.entry((elem, profile)).or_insert(Recipe {
                            word,
                            child_profiles,
                        });
                        if winning {
                            return Ok(Fixpoint { achieved, recipes });
                        }
                    }
                }
                for (sym, succs) in nfa.transitions_from(key.0) {
                    let Some(options) = contributions.get(sym) else {
                        continue;
                    };
                    for (bits, representative) in options {
                        let union = key.1.union(bits);
                        for &succ in succs {
                            let next: Key = (succ, union.clone());
                            if seen.insert(next.clone()) {
                                back.insert(
                                    next.clone(),
                                    (key.clone(), *sym, representative.clone()),
                                );
                                queue.push_back(next);
                            }
                        }
                    }
                }
            }
            if gained {
                for &parent in &dependents[elem_index] {
                    if !queued[parent] {
                        queued[parent] = true;
                        worklist.push_back(parent);
                    }
                }
            }
        }
        Ok(Fixpoint { achieved, recipes })
    }
}

/// How an achieved (type, profile) pair can be realised: a children word and the profile
/// each child must itself realise.
#[derive(Debug, Clone)]
struct Recipe {
    word: Vec<Sym>,
    child_profiles: Vec<Profile>,
}

struct Fixpoint {
    /// Achievable profiles indexed by element symbol.
    achieved: Vec<BTreeSet<Profile>>,
    recipes: BTreeMap<(Sym, Profile), Recipe>,
}

impl Fixpoint {
    /// Rebuild a witness subtree realising `profile` at a node of type `label`.
    fn build_witness(
        &self,
        compiled: &CompiledDtd,
        doc: &mut Document,
        node: NodeId,
        label: Sym,
        profile: &Profile,
    ) {
        let Some(recipe) = self.recipes.get(&(label, profile.clone())) else {
            return;
        };
        for (&sym, child_profile) in recipe.word.iter().zip(&recipe.child_profiles) {
            let child = doc.add_child(node, compiled.name(sym));
            self.build_witness(compiled, doc, child, sym, child_profile);
        }
    }
}

/// Raw head-normal-form alternatives (before tails are interned into the closure).
enum RawAlt {
    Done(Vec<Qualifier>),
    Step(Vec<Qualifier>, Option<String>, Path),
}

fn head_normal_form(path: &Path) -> Vec<RawAlt> {
    match path {
        Path::Empty => vec![RawAlt::Done(vec![])],
        Path::Label(l) => vec![RawAlt::Step(vec![], Some(l.clone()), Path::Empty)],
        Path::Wildcard => vec![RawAlt::Step(vec![], None, Path::Empty)],
        Path::DescendantOrSelf => vec![
            RawAlt::Done(vec![]),
            RawAlt::Step(vec![], None, Path::DescendantOrSelf),
        ],
        Path::Seq(a, b) => {
            let mut out = Vec::new();
            for alt in head_normal_form(a) {
                match alt {
                    RawAlt::Done(quals) => {
                        for alt_b in head_normal_form(b) {
                            out.push(match alt_b {
                                RawAlt::Done(mut qs) => {
                                    let mut combined = quals.clone();
                                    combined.append(&mut qs);
                                    RawAlt::Done(combined)
                                }
                                RawAlt::Step(mut qs, label, tail) => {
                                    let mut combined = quals.clone();
                                    combined.append(&mut qs);
                                    RawAlt::Step(combined, label, tail)
                                }
                            });
                        }
                    }
                    RawAlt::Step(quals, label, tail) => {
                        out.push(RawAlt::Step(
                            quals,
                            label,
                            Path::seq(tail, (**b).clone()).right_assoc(),
                        ));
                    }
                }
            }
            out
        }
        Path::Union(a, b) => {
            let mut out = head_normal_form(a);
            out.extend(head_normal_form(b));
            out
        }
        Path::Filter(a, q) => head_normal_form(a)
            .into_iter()
            .map(|alt| match alt {
                RawAlt::Done(mut quals) => {
                    quals.push((**q).clone());
                    RawAlt::Done(quals)
                }
                RawAlt::Step(quals, label, tail) => RawAlt::Step(
                    quals,
                    label,
                    Path::Filter(Box::new(tail), q.clone()).right_assoc(),
                ),
            })
            .collect(),
        // Upward and sibling axes are excluded by `supports`.
        _ => vec![],
    }
}

/// The paths occurring (positively or negatively) inside a qualifier.
fn qualifier_paths(q: &Qualifier) -> Vec<Path> {
    match q {
        Qualifier::Path(p) => vec![p.right_assoc()],
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            let mut out = qualifier_paths(a);
            out.extend(qualifier_paths(b));
            out
        }
        Qualifier::Not(inner) => qualifier_paths(inner),
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::verify_witness;
    use xpsat_dtd::parse_dtd;
    use xpsat_xpath::parse_path;

    fn check(dtd_text: &str, query_text: &str, expected: bool) {
        let dtd = parse_dtd(dtd_text).unwrap();
        let query = parse_path(query_text).unwrap();
        match decide(&dtd, &query).unwrap() {
            Satisfiability::Satisfiable(doc) => {
                assert!(
                    expected,
                    "{query_text} should be unsatisfiable under `{dtd_text}`\nwitness: {doc}"
                );
                verify_witness(&doc, &dtd, &query).unwrap();
            }
            Satisfiability::Unsatisfiable => assert!(
                !expected,
                "{query_text} should be satisfiable under `{dtd_text}`"
            ),
            Satisfiability::Unknown => panic!("negation engine must be definite"),
        }
    }

    #[test]
    fn plain_negation_at_the_root() {
        let dtd = "r -> a?, b?; a -> #; b -> #;";
        check(dtd, ".[not(a)]", true);
        check(dtd, ".[a and not(a)]", false);
        check(dtd, ".[not(a) and not(b)]", true);
        check(dtd, ".[not(a) and b]", true);
    }

    #[test]
    fn forced_children_cannot_be_negated_away() {
        let dtd = "r -> a, b?; a -> #; b -> #;";
        check(dtd, ".[not(a)]", false);
        check(dtd, ".[not(b)]", true);
    }

    #[test]
    fn negation_below_descendants() {
        let dtd = "r -> c; c -> (c | x); x -> #;";
        // some descendant c has an x child
        check(dtd, "**[lab() = c and x]", true);
        // some descendant c has no c child and no x child: impossible (content is c|x)
        check(dtd, "**[lab() = c and not(c) and not(x)]", false);
        // every branch eventually ends with x: a c node without x child exists iff the
        // chain continues with c, so this is satisfiable.
        check(dtd, "**[lab() = c and not(x)]", true);
    }

    #[test]
    fn universal_style_properties() {
        // Example in the spirit of Proposition 5.1: "no x1 branch chooses t" is
        // satisfiable because x1 can choose f.
        let dtd = "r -> x1, x2; x1 -> t | f; x2 -> t | f; t -> #; f -> #;";
        check(dtd, ".[not(x1/t)]", true);
        check(dtd, ".[not(x1/t) and not(x1/f)]", false);
        check(dtd, ".[not(x1/t) and x1/t]", false);
        check(dtd, ".[not(x1/t) and x2/t]", true);
    }

    #[test]
    fn disjunction_elimination_shape() {
        // Under a starred production negation can force the absence of a whole branch.
        let dtd = "r -> a*; a -> b | c; b -> #; c -> #;";
        check(dtd, ".[not(a)]", true);
        check(dtd, ".[a and not(a[b])]", true);
        check(dtd, ".[a[b] and not(a[b])]", false);
        check(dtd, ".[a and not(a[b]) and not(a[c])]", false);
    }

    #[test]
    fn undeclared_labels_interact_correctly_with_negation() {
        let dtd = "r -> a?; a -> #;";
        check(dtd, "ghost", false);
        check(dtd, ".[not(ghost)]", true);
        check(dtd, ".[a and not(ghost)]", true);
    }

    #[test]
    fn unsupported_fragments_are_rejected() {
        let dtd = parse_dtd("r -> a;").unwrap();
        assert!(decide(&dtd, &parse_path("a/..").unwrap()).is_err());
        assert!(decide(&dtd, &parse_path("a[@x = \"1\"]").unwrap()).is_err());
    }
}
