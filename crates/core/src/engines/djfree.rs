//! Theorem 6.8(1): under disjunction-free DTDs, `SAT(X(↓, ↓*, ∪, []))` is in PTIME.
//!
//! The key observation of the proof: when no content model contains disjunction, a
//! conjunction of qualifiers is satisfiable at an `A` element iff each conjunct is
//! satisfiable there *independently* — the single forced children word (up to star
//! repetitions, which only add material) can host all witnesses simultaneously.  The
//! algorithm therefore extends the reachability tables of Theorem 4.1 with a boolean
//! `sat(p', A)` table and decomposes conjunctions conjunct-by-conjunct.
//!
//! This engine only *decides*; when a witness is needed the solver façade re-runs the
//! (NP, but here equally complete) positive engine, which constructs one.

use crate::sat::{SatError, Satisfiability};
use std::collections::{BTreeMap, BTreeSet};
use xpsat_dtd::{classify, graph::prune_nonterminating, Dtd, DtdGraph};
use xpsat_xpath::{closure, Features, Path, Qualifier};

const ENGINE: &str = "disjunction-free (Theorem 6.8)";

/// Does the query lie in `X(↓, ↓*, ∪, [])` with label tests (no negation, data values,
/// upward or sibling axes)?
pub fn supports_query(query: &Path) -> bool {
    let f = Features::of_path(query);
    !f.negation && !f.data_value && !f.has_upward() && !f.has_sibling()
}

/// Is the DTD disjunction-free (the class this engine is complete for)?
pub fn supports_dtd(dtd: &Dtd) -> bool {
    classify(dtd).disjunction_free
}

/// Decide `(query, dtd)`.  Complete when [`supports_query`] and [`supports_dtd`] hold.
pub fn decide(dtd: &Dtd, query: &Path) -> Result<bool, SatError> {
    if !supports_query(query) {
        return Err(SatError::UnsupportedFragment {
            engine: ENGINE,
            detail: format!("query {query} uses negation, data values, upward or sibling axes"),
        });
    }
    if !supports_dtd(dtd) {
        return Err(SatError::UnsupportedDtd {
            engine: ENGINE,
            detail: "the DTD contains disjunction".to_string(),
        });
    }
    let Some(pruned) = prune_nonterminating(dtd) else {
        return Ok(false);
    };
    let tables = Tables::compute(&pruned, query);
    Ok(tables.sat_path(query, pruned.root()))
}

/// The `reach` / `sat` tables of the proof, memoised per (sub-expression, element type).
struct Tables<'a> {
    graph: DtdGraph,
    types: Vec<String>,
    reach: BTreeMap<(String, String), BTreeSet<String>>,
    sat_qual: BTreeMap<(String, String), bool>,
    dtd: &'a Dtd,
}

impl<'a> Tables<'a> {
    fn compute(dtd: &'a Dtd, query: &Path) -> Tables<'a> {
        let mut tables = Tables {
            graph: DtdGraph::new(dtd),
            types: dtd.element_names(),
            reach: BTreeMap::new(),
            sat_qual: BTreeMap::new(),
            dtd,
        };
        // Fill tables bottom-up over the sub-expression closure.
        let types = tables.types.clone();
        for sub in closure::sub_paths_ascending(query) {
            for a in &types {
                let set = tables.reach_of(&sub, a);
                tables.reach.insert((sub.to_string(), a.clone()), set);
            }
        }
        for qual in closure::sub_qualifiers_ascending(query) {
            for a in &types {
                let value = tables.sat_of_qual(&qual, a);
                tables.sat_qual.insert((qual.to_string(), a.clone()), value);
            }
        }
        tables
    }

    /// `sat(p', A)`: is `p'` satisfiable at an `A` element?
    fn sat_path(&self, p: &Path, a: &str) -> bool {
        !self.reach_of(p, a).is_empty()
    }

    /// `reach(p', A)`, recomputed from memoised sub-results.
    fn reach_of(&self, p: &Path, a: &str) -> BTreeSet<String> {
        if let Some(cached) = self.reach.get(&(p.to_string(), a.to_string())) {
            return cached.clone();
        }
        match p {
            Path::Empty => [a.to_string()].into_iter().collect(),
            Path::Label(l) => {
                if self.graph.successors(a).contains(l) {
                    [l.clone()].into_iter().collect()
                } else {
                    BTreeSet::new()
                }
            }
            Path::Wildcard => self.graph.successors(a),
            Path::DescendantOrSelf => {
                let mut s = self.graph.reachable_from(a);
                s.insert(a.to_string());
                s
            }
            Path::Union(p1, p2) => {
                let mut s = self.reach_of(p1, a);
                s.extend(self.reach_of(p2, a));
                s
            }
            Path::Seq(p1, p2) => {
                let mut s = BTreeSet::new();
                for b in self.reach_of(p1, a) {
                    s.extend(self.reach_of(p2, &b));
                }
                s
            }
            Path::Filter(p1, q) => self
                .reach_of(p1, a)
                .into_iter()
                .filter(|b| self.qual_holds(q, b))
                .collect(),
            _ => BTreeSet::new(),
        }
    }

    fn qual_holds(&self, q: &Qualifier, a: &str) -> bool {
        if let Some(&cached) = self.sat_qual.get(&(q.to_string(), a.to_string())) {
            return cached;
        }
        self.sat_of_qual(q, a)
    }

    /// `sat([q], A)`: under disjunction-free DTDs, conjunctions decompose independently.
    fn sat_of_qual(&self, q: &Qualifier, a: &str) -> bool {
        match q {
            Qualifier::Path(p) => self.sat_path(p, a),
            Qualifier::LabelIs(l) => l == a,
            Qualifier::And(q1, q2) => self.qual_holds(q1, a) && self.qual_holds(q2, a),
            Qualifier::Or(q1, q2) => self.qual_holds(q1, a) || self.qual_holds(q2, a),
            // Data values and negation are excluded by `supports_query`; treat
            // defensively as unsatisfiable.
            _ => {
                debug_assert!(false, "unsupported qualifier reached the djfree engine");
                let _ = self.dtd;
                false
            }
        }
    }
}

/// Convenience wrapper returning [`Satisfiability`] without a witness (the façade
/// supplies one through the positive engine when required).
pub fn decide_satisfiability(dtd: &Dtd, query: &Path) -> Result<Satisfiability, SatError> {
    decide(dtd, query).map(|sat| {
        if sat {
            // The caller is responsible for attaching a witness; return a placeholder
            // witnessing document via the positive engine.
            match crate::engines::positive::decide(dtd, query) {
                Ok(Satisfiability::Satisfiable(doc)) => Satisfiability::Satisfiable(doc),
                _ => Satisfiability::Unknown,
            }
        } else {
            Satisfiability::Unsatisfiable
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpsat_dtd::parse_dtd;
    use xpsat_xpath::parse_path;

    #[test]
    fn conjunctions_decompose_under_disjunction_free_dtds() {
        // Disjunction-free: every book has both a title and an author list.
        let dtd =
            parse_dtd("r -> book*; book -> title, author+; title -> #; author -> #;").unwrap();
        assert!(decide(&dtd, &parse_path("book[title and author]").unwrap()).unwrap());
        assert!(decide(&dtd, &parse_path("book[title][author]").unwrap()).unwrap());
        assert!(!decide(&dtd, &parse_path("book[title and price]").unwrap()).unwrap());
        assert!(!decide(&dtd, &parse_path("book/title/author").unwrap()).unwrap());
    }

    #[test]
    fn label_tests_and_descendants() {
        let dtd = parse_dtd("r -> a; a -> b*; b -> c; c -> #;").unwrap();
        assert!(decide(&dtd, &parse_path("**[lab() = c]").unwrap()).unwrap());
        assert!(!decide(&dtd, &parse_path("**[lab() = z]").unwrap()).unwrap());
        assert!(decide(&dtd, &parse_path("a[b/c]").unwrap()).unwrap());
    }

    #[test]
    fn dtds_with_disjunction_are_rejected() {
        let dtd = parse_dtd("r -> a | b; a -> #; b -> #;").unwrap();
        assert!(matches!(
            decide(&dtd, &parse_path("a[b]").unwrap()),
            Err(SatError::UnsupportedDtd { .. })
        ));
    }

    #[test]
    fn queries_with_negation_are_rejected() {
        let dtd = parse_dtd("r -> a; a -> #;").unwrap();
        assert!(matches!(
            decide(&dtd, &parse_path("a[not(b)]").unwrap()),
            Err(SatError::UnsupportedFragment { .. })
        ));
    }
}
