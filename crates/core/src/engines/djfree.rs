//! Theorem 6.8(1): under disjunction-free DTDs, `SAT(X(↓, ↓*, ∪, []))` is in PTIME.
//!
//! The key observation of the proof: when no content model contains disjunction, a
//! conjunction of qualifiers is satisfiable at an `A` element iff each conjunct is
//! satisfiable there *independently* — the single forced children word (up to star
//! repetitions, which only add material) can host all witnesses simultaneously.  The
//! algorithm therefore extends the reachability tables of Theorem 4.1 with a boolean
//! `sat(p', A)` table and decomposes conjunctions conjunct-by-conjunct.
//!
//! Both tables are dense: rows indexed by sub-expression position in the ascending
//! closure, columns by interned element [`Sym`]s, with bitset reach rows — the earlier
//! version keyed both tables by `(String, String)` pairs rebuilt with `to_string()` on
//! every lookup.
//!
//! This engine only *decides*; when a witness is needed the solver façade re-runs the
//! (NP, but here equally complete) positive engine, which constructs one.

use crate::sat::{SatError, Satisfiability};
use std::collections::BTreeMap;
use xpsat_automata::BitSet;
use xpsat_dtd::{classify, CompiledDtd, Dtd, DtdArtifacts, Sym};
use xpsat_xpath::{closure, Features, Path, Qualifier};

const ENGINE: &str = "disjunction-free (Theorem 6.8)";

/// Does the query lie in `X(↓, ↓*, ∪, [])` with label tests (no negation, data values,
/// upward or sibling axes)?
pub fn supports_query(query: &Path) -> bool {
    supports_query_features(&Features::of_path(query))
}

/// [`supports_query`] over precomputed features (the solver computes them once).
pub fn supports_query_features(f: &Features) -> bool {
    !f.negation && !f.data_value && !f.has_upward() && !f.has_sibling()
}

/// Is the DTD disjunction-free (the class this engine is complete for)?
pub fn supports_dtd(dtd: &Dtd) -> bool {
    classify(dtd).disjunction_free
}

/// Decide `(query, dtd)`.  Complete when [`supports_query`] and [`supports_dtd`] hold.
///
/// Convenience wrapper that compiles the artifacts for one call; batch callers should
/// build [`DtdArtifacts`] once and use [`decide_with`].
pub fn decide(dtd: &Dtd, query: &Path) -> Result<bool, SatError> {
    decide_with(&DtdArtifacts::build(dtd), query)
}

/// Decide `(query, dtd)` against precompiled artifacts.
pub fn decide_with(artifacts: &DtdArtifacts, query: &Path) -> Result<bool, SatError> {
    if !supports_query(query) {
        return Err(SatError::UnsupportedFragment {
            engine: ENGINE,
            detail: format!("query {query} uses negation, data values, upward or sibling axes"),
        });
    }
    if !artifacts.class().disjunction_free {
        return Err(SatError::UnsupportedDtd {
            engine: ENGINE,
            detail: "the DTD contains disjunction".to_string(),
        });
    }
    let Some(compiled) = artifacts.compiled() else {
        return Ok(false);
    };
    let tables = Tables::compute(compiled, query);
    Ok(tables.reach_nonempty(query, compiled.root()))
}

/// The `reach` / `sat` tables of the proof, dense over (sub-expression, element type).
struct Tables<'a> {
    compiled: &'a CompiledDtd,
    path_index: BTreeMap<Path, usize>,
    qual_index: BTreeMap<Qualifier, usize>,
    /// `reach[i][a]`: types reachable from `a` via the `i`-th closure sub-path.
    /// Rows are appended in ascending closure order, so sub-results exist when needed.
    reach: Vec<Vec<BitSet>>,
    /// `sat_qual[j][a]`: does the `j`-th closure sub-qualifier hold at an `a` node?
    sat_qual: Vec<Vec<bool>>,
}

impl<'a> Tables<'a> {
    fn compute(compiled: &'a CompiledDtd, query: &Path) -> Tables<'a> {
        let sub_paths = closure::sub_paths_ascending(query);
        let sub_quals = closure::sub_qualifiers_ascending(query);
        let mut tables = Tables {
            compiled,
            path_index: sub_paths
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i))
                .collect(),
            qual_index: sub_quals
                .iter()
                .enumerate()
                .map(|(j, q)| (q.clone(), j))
                .collect(),
            reach: Vec::with_capacity(sub_paths.len()),
            sat_qual: Vec::with_capacity(sub_quals.len()),
        };
        // Fill tables bottom-up over the sub-expression closure: ascending order
        // guarantees every proper sub-expression's row exists before it is consulted.
        let n = compiled.num_elements();
        for sub in &sub_paths {
            let row: Vec<BitSet> = (0..n)
                .map(|a| tables.compute_reach(sub, Sym::from_index(a)))
                .collect();
            tables.reach.push(row);
        }
        for qual in &sub_quals {
            let row: Vec<bool> = (0..n)
                .map(|a| tables.sat_of_qual(qual, Sym::from_index(a)))
                .collect();
            tables.sat_qual.push(row);
        }
        tables
    }

    /// `sat(p', A)`: is `p'` satisfiable at an `A` element?
    fn reach_nonempty(&self, p: &Path, a: Sym) -> bool {
        match self.path_index.get(p) {
            Some(&i) if i < self.reach.len() => !self.reach[i][a.index()].is_empty(),
            _ => !self.compute_reach(p, a).is_empty(),
        }
    }

    /// `reach(p', A)`, served from the dense table when the row is already filled.
    fn reach_of(&self, p: &Path, a: Sym) -> BitSet {
        match self.path_index.get(p) {
            Some(&i) if i < self.reach.len() => self.reach[i][a.index()].clone(),
            _ => self.compute_reach(p, a),
        }
    }

    fn compute_reach(&self, p: &Path, a: Sym) -> BitSet {
        let graph = self.compiled.graph();
        match p {
            Path::Empty => [a.index()].into_iter().collect(),
            Path::Label(l) => match self.compiled.elem_sym(l) {
                Some(target) if graph.has_edge(a, target) => [target.index()].into_iter().collect(),
                _ => BitSet::new(),
            },
            Path::Wildcard => graph.succ_bits(a).clone(),
            Path::DescendantOrSelf => {
                let mut s = graph.reach_bits(a).clone();
                s.insert(a.index());
                s
            }
            Path::Union(p1, p2) => {
                let mut s = self.reach_of(p1, a);
                s.union_with(&self.reach_of(p2, a));
                s
            }
            Path::Seq(p1, p2) => {
                let mut s = BitSet::new();
                for b in self.reach_of(p1, a).iter() {
                    s.union_with(&self.reach_of(p2, Sym::from_index(b)));
                }
                s
            }
            Path::Filter(p1, q) => self
                .reach_of(p1, a)
                .iter()
                .filter(|&b| self.qual_holds(q, Sym::from_index(b)))
                .collect(),
            _ => BitSet::new(),
        }
    }

    fn qual_holds(&self, q: &Qualifier, a: Sym) -> bool {
        match self.qual_index.get(q) {
            Some(&j) if j < self.sat_qual.len() => self.sat_qual[j][a.index()],
            _ => self.sat_of_qual(q, a),
        }
    }

    /// `sat([q], A)`: under disjunction-free DTDs, conjunctions decompose independently.
    fn sat_of_qual(&self, q: &Qualifier, a: Sym) -> bool {
        match q {
            Qualifier::Path(p) => self.reach_nonempty(p, a),
            Qualifier::LabelIs(l) => self.compiled.elem_sym(l) == Some(a),
            Qualifier::And(q1, q2) => self.qual_holds(q1, a) && self.qual_holds(q2, a),
            Qualifier::Or(q1, q2) => self.qual_holds(q1, a) || self.qual_holds(q2, a),
            // Data values and negation are excluded by `supports_query`; treat
            // defensively as unsatisfiable.
            _ => {
                debug_assert!(false, "unsupported qualifier reached the djfree engine");
                false
            }
        }
    }
}

/// Convenience wrapper returning [`Satisfiability`] without a witness (the façade
/// supplies one through the positive engine when required).
pub fn decide_satisfiability(dtd: &Dtd, query: &Path) -> Result<Satisfiability, SatError> {
    decide(dtd, query).map(|sat| {
        if sat {
            // The caller is responsible for attaching a witness; return a placeholder
            // witnessing document via the positive engine.
            match crate::engines::positive::decide(dtd, query) {
                Ok(Satisfiability::Satisfiable(doc)) => Satisfiability::Satisfiable(doc),
                _ => Satisfiability::Unknown,
            }
        } else {
            Satisfiability::Unsatisfiable
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpsat_dtd::parse_dtd;
    use xpsat_xpath::parse_path;

    #[test]
    fn conjunctions_decompose_under_disjunction_free_dtds() {
        // Disjunction-free: every book has both a title and an author list.
        let dtd =
            parse_dtd("r -> book*; book -> title, author+; title -> #; author -> #;").unwrap();
        assert!(decide(&dtd, &parse_path("book[title and author]").unwrap()).unwrap());
        assert!(decide(&dtd, &parse_path("book[title][author]").unwrap()).unwrap());
        assert!(!decide(&dtd, &parse_path("book[title and price]").unwrap()).unwrap());
        assert!(!decide(&dtd, &parse_path("book/title/author").unwrap()).unwrap());
    }

    #[test]
    fn label_tests_and_descendants() {
        let dtd = parse_dtd("r -> a; a -> b*; b -> c; c -> #;").unwrap();
        assert!(decide(&dtd, &parse_path("**[lab() = c]").unwrap()).unwrap());
        assert!(!decide(&dtd, &parse_path("**[lab() = z]").unwrap()).unwrap());
        assert!(decide(&dtd, &parse_path("a[b/c]").unwrap()).unwrap());
    }

    #[test]
    fn artifacts_can_be_reused_across_queries() {
        let dtd = parse_dtd("r -> a; a -> b*; b -> c; c -> #;").unwrap();
        let artifacts = DtdArtifacts::build(&dtd);
        assert!(decide_with(&artifacts, &parse_path("a[b/c]").unwrap()).unwrap());
        assert!(!decide_with(&artifacts, &parse_path("a[c]").unwrap()).unwrap());
    }

    #[test]
    fn dtds_with_disjunction_are_rejected() {
        let dtd = parse_dtd("r -> a | b; a -> #; b -> #;").unwrap();
        assert!(matches!(
            decide(&dtd, &parse_path("a[b]").unwrap()),
            Err(SatError::UnsupportedDtd { .. })
        ));
    }

    #[test]
    fn queries_with_negation_are_rejected() {
        let dtd = parse_dtd("r -> a; a -> #;").unwrap();
        assert!(matches!(
            decide(&dtd, &parse_path("a[not(b)]").unwrap()),
            Err(SatError::UnsupportedFragment { .. })
        ));
    }
}
