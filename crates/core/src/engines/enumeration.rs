//! Instance enumeration: the decision procedure of Proposition 6.4 and the bounded-model
//! oracle of the test suite.
//!
//! For a *nonrecursive, star-free* DTD the set of conforming documents is finite, and
//! satisfiability of **any** query — including upward axes, sibling axes, data values
//! and negation — can be decided by enumerating the documents and evaluating the query
//! on each (this is exactly how Proposition 6.4 obtains PTIME for fixed DTDs, and how
//! Theorem 5.5's NEXPTIME procedure guesses a small model).
//!
//! For general DTDs the same enumeration, truncated at a configurable depth, children
//! length and tree count, yields a *bounded-model search*: a found witness is always
//! genuine, exhausting the budget without finding one returns
//! [`Satisfiability::Unknown`] unless the search provably covered every conforming
//! document (no truncation happened), in which case `Unsatisfiable` is sound.
//!
//! The subtree memo is keyed by `(element Sym, depth)` and the children words come from
//! the precompiled content-model automata of the [`DtdArtifacts`] — the earlier version
//! keyed the memo by `String` label and rebuilt a Glushkov automaton per content model
//! per call.
//!
//! Attribute values are enumerated over the constants mentioned in the query plus
//! enough fresh values to realise every equality pattern among the document's attribute
//! slots; queries without data-value comparisons skip that enumeration entirely.

use crate::budget::{BudgetMeter, Exhausted};
use crate::sat::Satisfiability;
use std::collections::BTreeMap;
use xpsat_dtd::{CompiledDtd, Dtd, DtdArtifacts, DtdClass, Sym};
use xpsat_xmltree::{Document, NodeId};
use xpsat_xpath::{eval, Features, Path, Qualifier};

/// Budgets for the bounded search.
#[derive(Debug, Clone)]
pub struct EnumerationLimits {
    /// Maximum document depth explored (root has depth 0).
    pub max_depth: usize,
    /// Maximum length of any children word.
    pub max_word_len: usize,
    /// Maximum number of distinct subtrees kept per (element type, depth) pair.
    pub max_variants: usize,
    /// Maximum number of candidate documents evaluated.
    pub max_documents: usize,
    /// Maximum number of attribute-value assignments evaluated per document.
    pub max_valuations: usize,
}

impl Default for EnumerationLimits {
    fn default() -> Self {
        EnumerationLimits {
            max_depth: 6,
            max_word_len: 4,
            max_variants: 200,
            max_documents: 5_000,
            max_valuations: 2_000,
        }
    }
}

/// Decide `(query, dtd)` by bounded enumeration of conforming documents.
///
/// Convenience wrapper that compiles the artifacts for one call; batch callers should
/// build [`DtdArtifacts`] once and use [`decide_with`].
pub fn decide(dtd: &Dtd, query: &Path, limits: &EnumerationLimits) -> Satisfiability {
    decide_with(&DtdArtifacts::build(dtd), query, limits)
}

/// Decide `(query, dtd)` against precompiled artifacts.
pub fn decide_with(
    artifacts: &DtdArtifacts,
    query: &Path,
    limits: &EnumerationLimits,
) -> Satisfiability {
    decide_with_budget(artifacts, query, limits, &BudgetMeter::unlimited())
        .expect("unlimited meter never exhausts")
}

/// Decide `(query, dtd)` under a step/deadline budget.  The meter is charged per
/// subtree assembled and per candidate document evaluated; on exhaustion the search
/// stops where it stands and reports [`Exhausted`] (any witness found before that
/// point would already have been returned).
pub fn decide_with_budget(
    artifacts: &DtdArtifacts,
    query: &Path,
    limits: &EnumerationLimits,
    meter: &BudgetMeter,
) -> Result<Satisfiability, Exhausted> {
    let Some(compiled) = artifacts.compiled() else {
        // No conforming document exists at all.
        return Ok(Satisfiability::Unsatisfiable);
    };
    let original_dtd = artifacts.dtd();
    let mut enumerator = Enumerator {
        compiled,
        original_dtd,
        limits,
        meter,
        truncated: false,
        cache: BTreeMap::new(),
    };
    // For nonrecursive DTDs, raising the depth budget to the DTD's own depth bound makes
    // the enumeration exhaustive (when the other budgets suffice).
    let depth = match compiled.graph().depth_bound() {
        Some(bound) => bound.max(limits.max_depth).min(24),
        None => limits.max_depth,
    };
    let candidates = enumerator.subtrees(compiled.root(), depth)?;
    let needs_values = Features::of_path(query).data_value;
    let constants = query_constants(query);

    for (examined, candidate) in candidates.iter().enumerate() {
        if examined >= limits.max_documents {
            enumerator.truncated = true;
            break;
        }
        meter.spend(1)?;
        if needs_values {
            match try_valuations(candidate, original_dtd, query, &constants, limits, meter)? {
                ValuationOutcome::Found(doc) => return Ok(Satisfiability::Satisfiable(doc)),
                ValuationOutcome::Exhausted => {}
                ValuationOutcome::Truncated => enumerator.truncated = true,
            }
        } else if eval::satisfies(candidate, query) {
            return Ok(Satisfiability::Satisfiable(candidate.clone()));
        }
    }
    Ok(
        if enumerator.truncated || candidates.len() > limits.max_documents {
            Satisfiability::Unknown
        } else {
            Satisfiability::Unsatisfiable
        },
    )
}

/// Is the bounded search exhaustive for this DTD under the given limits (so that an
/// `Unsatisfiable` answer is definitive)?  This is a quick syntactic check used by the
/// solver façade to report completeness; [`decide`] itself tracks truncation exactly.
pub fn is_exhaustive_for(dtd: &Dtd, limits: &EnumerationLimits) -> bool {
    is_exhaustive_for_class(&xpsat_dtd::classify(dtd), limits)
}

/// [`is_exhaustive_for`] given an already-computed classification (from precomputed
/// [`DtdArtifacts`]), so batch callers do not re-classify per query.
pub fn is_exhaustive_for_class(class: &DtdClass, limits: &EnumerationLimits) -> bool {
    !class.recursive && !class.has_star && class.depth_bound.is_some_and(|d| d <= limits.max_depth)
}

struct Enumerator<'a> {
    compiled: &'a CompiledDtd,
    original_dtd: &'a Dtd,
    limits: &'a EnumerationLimits,
    meter: &'a BudgetMeter,
    truncated: bool,
    cache: BTreeMap<(Sym, usize), Vec<Document>>,
}

impl<'a> Enumerator<'a> {
    /// All conforming subtrees rooted at an element of type `label`, up to the depth and
    /// variant budgets.  Attribute slots are filled with the placeholder `"0"`.
    fn subtrees(&mut self, label: Sym, depth: usize) -> Result<Vec<Document>, Exhausted> {
        if let Some(cached) = self.cache.get(&(label, depth)) {
            return Ok(cached.clone());
        }
        let mut result = Vec::new();
        let label_name = self.compiled.name(label).to_string();
        let words = self.children_words(label)?;
        for word in words {
            if depth == 0 && !word.is_empty() {
                self.truncated = true;
                continue;
            }
            // Cartesian product of child subtree choices.
            let mut assemblies: Vec<Vec<Document>> = vec![Vec::new()];
            for &child_label in &word {
                let options = self.subtrees(child_label, depth.saturating_sub(1))?;
                if options.is_empty() {
                    assemblies.clear();
                    break;
                }
                let mut next = Vec::new();
                for assembly in &assemblies {
                    for option in &options {
                        // One partial assembly cloned: the unit the cartesian
                        // product's blow-up is made of.
                        self.meter.spend(1)?;
                        if next.len() + result.len() > self.limits.max_variants {
                            self.truncated = true;
                            break;
                        }
                        let mut extended = assembly.clone();
                        extended.push(option.clone());
                        next.push(extended);
                    }
                }
                assemblies = next;
            }
            for assembly in assemblies {
                self.meter.spend(1)?;
                if result.len() >= self.limits.max_variants {
                    self.truncated = true;
                    break;
                }
                let mut doc = Document::new(&label_name);
                for attr in &self.original_dtd.attributes(&label_name) {
                    doc.set_attr(doc.root(), attr.clone(), "0");
                }
                for subtree in &assembly {
                    doc.graft(doc.root(), subtree, subtree.root());
                }
                result.push(doc);
            }
        }
        self.cache.insert((label, depth), result.clone());
        Ok(result)
    }

    /// All words of the content language up to the length budget; sets the truncation
    /// flag when longer words exist.  The precompiled automaton is walked directly.
    fn children_words(&mut self, label: Sym) -> Result<Vec<Vec<Sym>>, Exhausted> {
        let nfa = self.compiled.automaton(label);
        let mut words = Vec::new();
        // BFS over (state, word) pairs up to the length budget.
        let mut frontier: Vec<(usize, Vec<Sym>)> = vec![(nfa.start(), Vec::new())];
        for len in 0..=self.limits.max_word_len {
            let mut next = Vec::new();
            for (state, word) in &frontier {
                self.meter.spend(1)?;
                if nfa.is_accepting(*state) {
                    words.push(word.clone());
                }
                if len == self.limits.max_word_len {
                    if nfa.transitions_from(*state).next().is_some() {
                        self.truncated = true;
                    }
                    continue;
                }
                for (sym, succs) in nfa.transitions_from(*state) {
                    for &succ in succs {
                        let mut extended = word.clone();
                        extended.push(*sym);
                        next.push((succ, extended));
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        words.sort();
        words.dedup();
        Ok(words)
    }
}

enum ValuationOutcome {
    Found(Document),
    Exhausted,
    Truncated,
}

/// Constants mentioned in attribute comparisons of the query.
fn query_constants(path: &Path) -> Vec<String> {
    fn walk_path(p: &Path, out: &mut Vec<String>) {
        match p {
            Path::Seq(a, b) | Path::Union(a, b) => {
                walk_path(a, out);
                walk_path(b, out);
            }
            Path::Filter(a, q) => {
                walk_path(a, out);
                walk_qual(q, out);
            }
            _ => {}
        }
    }
    fn walk_qual(q: &Qualifier, out: &mut Vec<String>) {
        match q {
            Qualifier::Path(p) => walk_path(p, out),
            Qualifier::LabelIs(_) => {}
            Qualifier::AttrCmp { path, value, .. } => {
                walk_path(path, out);
                out.push(value.clone());
            }
            Qualifier::AttrJoin { left, right, .. } => {
                walk_path(left, out);
                walk_path(right, out);
            }
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                walk_qual(a, out);
                walk_qual(b, out);
            }
            Qualifier::Not(inner) => walk_qual(inner, out),
        }
    }
    let mut out = Vec::new();
    walk_path(path, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Enumerate attribute valuations over the constants plus enough fresh values to realise
/// any equality pattern among the document's attribute slots.
fn try_valuations(
    doc: &Document,
    dtd: &Dtd,
    query: &Path,
    constants: &[String],
    limits: &EnumerationLimits,
    meter: &BudgetMeter,
) -> Result<ValuationOutcome, Exhausted> {
    // Collect attribute slots in a fixed order.
    let mut slots: Vec<(NodeId, String)> = Vec::new();
    for node in doc.all_nodes() {
        for attr in dtd.attributes(doc.label(node)) {
            slots.push((node, attr));
        }
    }
    if slots.is_empty() {
        return Ok(if eval::satisfies(doc, query) {
            ValuationOutcome::Found(doc.clone())
        } else {
            ValuationOutcome::Exhausted
        });
    }
    let mut domain: Vec<String> = constants.to_vec();
    for i in 0..slots.len() {
        domain.push(format!("_fresh{i}"));
    }
    let total: usize = domain
        .len()
        .checked_pow(slots.len() as u32)
        .unwrap_or(usize::MAX);
    let budget = total.min(limits.max_valuations);
    let truncated = total > limits.max_valuations;

    let mut counters = vec![0usize; slots.len()];
    for _ in 0..budget {
        meter.spend(1)?;
        let mut candidate = doc.clone();
        for (slot, &value_index) in slots.iter().zip(&counters) {
            candidate.set_attr(slot.0, slot.1.clone(), domain[value_index].clone());
        }
        if eval::satisfies(&candidate, query) {
            return Ok(ValuationOutcome::Found(candidate));
        }
        // Increment the mixed-radix counter.
        for digit in counters.iter_mut() {
            *digit += 1;
            if *digit < domain.len() {
                break;
            }
            *digit = 0;
        }
    }
    Ok(if truncated {
        ValuationOutcome::Truncated
    } else {
        ValuationOutcome::Exhausted
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::verify_witness;
    use xpsat_dtd::parse_dtd;
    use xpsat_xpath::parse_path;

    fn limits() -> EnumerationLimits {
        EnumerationLimits::default()
    }

    #[test]
    fn example_2_3_from_the_paper_is_not_satisfiable() {
        // D: r -> a*, query B: no tree of D satisfies B.  The starred content model
        // makes the bounded enumeration non-exhaustive, so the honest answers are
        // "unknown" here and "unsatisfiable" on the star-free variant.
        let dtd = parse_dtd("r -> a*; a -> #;").unwrap();
        let query = parse_path("b").unwrap();
        assert_ne!(decide(&dtd, &query, &limits()).is_satisfiable(), Some(true));
        let star_free = parse_dtd("r -> a?, a?; a -> #;").unwrap();
        assert!(matches!(
            decide(&star_free, &query, &limits()),
            Satisfiability::Unsatisfiable
        ));
    }

    #[test]
    fn simple_satisfiable_instance_returns_verified_witness() {
        let dtd = parse_dtd("r -> a*; a -> b?; b -> #;").unwrap();
        let query = parse_path("a[b]").unwrap();
        match decide(&dtd, &query, &limits()) {
            Satisfiability::Satisfiable(doc) => {
                verify_witness(&doc, &dtd, &query).unwrap();
            }
            other => panic!("expected satisfiable, got {other}"),
        }
    }

    #[test]
    fn negation_and_upward_axes_are_supported() {
        let dtd = parse_dtd("r -> a, b; a -> c?; b -> c?; c -> #;").unwrap();
        // an a with a c child whose parent has a sibling b without a c child
        let query = parse_path("a[c]/..[b[not(c)]]").unwrap();
        match decide(&dtd, &query, &limits()) {
            Satisfiability::Satisfiable(doc) => verify_witness(&doc, &dtd, &query).unwrap(),
            other => panic!("expected satisfiable, got {other}"),
        }
        // ... but requiring c under both while negating one is contradictory
        let bad = parse_path(".[a[c] and not(a[c])]").unwrap();
        assert!(matches!(
            decide(&dtd, &bad, &limits()),
            Satisfiability::Unsatisfiable
        ));
    }

    #[test]
    fn data_values_use_constants_and_fresh_values() {
        let dtd = parse_dtd("r -> a, a; a -> #; @a: id;").unwrap();
        let same = parse_path(".[a/@id = \"7\"]").unwrap();
        match decide(&dtd, &same, &limits()) {
            Satisfiability::Satisfiable(doc) => verify_witness(&doc, &dtd, &same).unwrap(),
            other => panic!("expected satisfiable, got {other}"),
        }
        // two a-children with different ids (a data-value join at the root)
        let diff = parse_path(".[a/@id != a/@id]").unwrap();
        match decide(&dtd, &diff, &limits()) {
            Satisfiability::Satisfiable(doc) => verify_witness(&doc, &dtd, &diff).unwrap(),
            other => panic!("expected satisfiable, got {other}"),
        }
    }

    #[test]
    fn sibling_axes_are_supported() {
        let dtd = parse_dtd("r -> a, b, c; a -> #; b -> #; c -> #;").unwrap();
        let query = parse_path("a/>[lab() = b]/>[lab() = c]").unwrap();
        assert!(matches!(
            decide(&dtd, &query, &limits()),
            Satisfiability::Satisfiable(_)
        ));
        let bad = parse_path("b/>[lab() = a]").unwrap();
        assert!(matches!(
            decide(&dtd, &bad, &limits()),
            Satisfiability::Unsatisfiable
        ));
    }

    #[test]
    fn recursive_dtd_with_tight_budget_reports_unknown_when_nothing_found() {
        let dtd = parse_dtd("r -> c; c -> (c, x) | #; x -> #;").unwrap();
        // Needs a chain of 10 c's: deeper than the budget below.
        let query = parse_path("c/".repeat(10).trim_end_matches('/')).unwrap();
        let tight = EnumerationLimits {
            max_depth: 3,
            ..EnumerationLimits::default()
        };
        assert!(matches!(
            decide(&dtd, &query, &tight),
            Satisfiability::Unknown
        ));
        // With a budget that is large enough the witness is found.
        let generous = EnumerationLimits {
            max_depth: 12,
            max_variants: 400,
            ..EnumerationLimits::default()
        };
        assert!(matches!(
            decide(&dtd, &query, &generous),
            Satisfiability::Satisfiable(_)
        ));
    }

    #[test]
    fn exhaustiveness_classification() {
        let finite = parse_dtd("r -> a, b?; a -> #; b -> #;").unwrap();
        assert!(is_exhaustive_for(&finite, &limits()));
        assert!(is_exhaustive_for_class(
            &xpsat_dtd::classify(&finite),
            &limits()
        ));
        let starred = parse_dtd("r -> a*; a -> #;").unwrap();
        assert!(!is_exhaustive_for(&starred, &limits()));
        let recursive = parse_dtd("r -> c; c -> c | #;").unwrap();
        assert!(!is_exhaustive_for(&recursive, &limits()));
    }
}
