//! Theorem 6.11(1): in the absence of DTDs, `SAT(X(↓, ↓*, ∪, []))` is in PTIME (and
//! every query of the fragment *without label tests* is satisfiable).
//!
//! The algorithm is the `sat`/`reach` dynamic program from the proof: the element-type
//! universe is the set of labels mentioned in the query plus one fresh label, every
//! label can have children of every label (no DTD constrains them), and the only way a
//! query can fail is through conflicting label tests.
//!
//! A witness is produced by delegating to the positive engine under the universal DTD of
//! Proposition 3.1, which is how the solver façade exposes the no-DTD problem anyway.

use crate::sat::{SatError, Satisfiability};
use std::collections::{BTreeMap, BTreeSet};
use xpsat_xpath::{closure, Features, Path, Qualifier};

const ENGINE: &str = "no-DTD (Theorem 6.11)";

/// Does the query lie in `X(↓, ↓*, ∪, [])` with label tests?
pub fn supports(query: &Path) -> bool {
    let f = Features::of_path(query);
    !f.negation && !f.data_value && !f.has_upward() && !f.has_sibling()
}

/// Decide satisfiability of `query` in the absence of any DTD.
pub fn decide(query: &Path) -> Result<bool, SatError> {
    if !supports(query) {
        return Err(SatError::UnsupportedFragment {
            engine: ENGINE,
            detail: format!("query {query} is outside X(child, desc, union, qualifiers)"),
        });
    }
    // The element-type universe: labels of the query plus a fresh one.
    let mut labels: BTreeSet<String> = query.mentioned_labels().into_iter().collect();
    labels.insert("_any".to_string());
    let labels: Vec<String> = labels.into_iter().collect();

    let mut tables = Tables {
        labels: labels.clone(),
        sat: BTreeMap::new(),
    };
    for sub in closure::sub_paths_ascending(query) {
        for a in &labels {
            let value = tables.sat_path(&sub, a);
            tables.sat.insert((sub.to_string(), a.clone()), value);
        }
    }
    Ok(labels.iter().any(|a| tables.sat_path(query, a)))
}

/// A convenience wrapper that also produces a witness (via the universal DTD of
/// Proposition 3.1 and the positive engine).
pub fn decide_with_witness(query: &Path) -> Result<Satisfiability, SatError> {
    if !decide(query)? {
        return Ok(Satisfiability::Unsatisfiable);
    }
    let (dtd, rooted_query) = crate::transform::no_dtd_instances(query)
        .into_iter()
        .find(|(dtd, q)| {
            matches!(
                crate::engines::positive::decide(dtd, q),
                Ok(Satisfiability::Satisfiable(_))
            )
        })
        .ok_or(SatError::BudgetExceeded { engine: ENGINE })?;
    crate::engines::positive::decide(&dtd, &rooted_query)
}

struct Tables {
    labels: Vec<String>,
    sat: BTreeMap<(String, String), bool>,
}

impl Tables {
    fn sat_path(&self, p: &Path, a: &str) -> bool {
        if let Some(&cached) = self.sat.get(&(p.to_string(), a.to_string())) {
            return cached;
        }
        match p {
            // Without a DTD every label can have children of every label.
            Path::Empty | Path::Label(_) | Path::Wildcard | Path::DescendantOrSelf => true,
            Path::Seq(p1, p2) => match &**p1 {
                // The label reached by the first step determines where the rest starts:
                // a label step fixes it, every other downward step leaves it free.
                Path::Label(l) => self.sat_path(p1, a) && self.sat_path(p2, l),
                Path::Filter(inner, q) => {
                    // (inner[q])/p2 : the qualifier and the continuation apply at the
                    // same node; decompose through the label the node may take.
                    self.labels.iter().any(|b| {
                        self.reaches_label(inner, a, b)
                            && self.sat_qual(q, b)
                            && self.sat_path(p2, b)
                    })
                }
                _ => {
                    self.sat_path(p1, a)
                        && self
                            .labels
                            .iter()
                            .any(|b| self.reaches_label(p1, a, b) && self.sat_path(p2, b))
                }
            },
            Path::Union(p1, p2) => self.sat_path(p1, a) || self.sat_path(p2, a),
            Path::Filter(p1, q) => self
                .labels
                .iter()
                .any(|b| self.reaches_label(p1, a, b) && self.sat_qual(q, b)),
            _ => false,
        }
    }

    /// Can `p` started at an `a`-labelled node end at a `b`-labelled node (in some tree)?
    fn reaches_label(&self, p: &Path, a: &str, b: &str) -> bool {
        match p {
            Path::Empty => a == b,
            Path::Label(l) => l == b,
            // ↓ reaches any label (a child may take any label without a DTD), and ↓*
            // reaches any label too (by descending) on top of staying at `a`.
            Path::Wildcard | Path::DescendantOrSelf => true,
            Path::Seq(p1, p2) => self
                .labels
                .iter()
                .any(|c| self.reaches_label(p1, a, c) && self.reaches_label(p2, c, b)),
            Path::Union(p1, p2) => self.reaches_label(p1, a, b) || self.reaches_label(p2, a, b),
            Path::Filter(p1, q) => self.reaches_label(p1, a, b) && self.sat_qual(q, b),
            _ => false,
        }
    }

    fn sat_qual(&self, q: &Qualifier, a: &str) -> bool {
        match q {
            Qualifier::Path(p) => self.sat_path(p, a),
            Qualifier::LabelIs(l) => l == a,
            Qualifier::And(q1, q2) => self.sat_qual(q1, a) && self.sat_qual(q2, a),
            Qualifier::Or(q1, q2) => self.sat_qual(q1, a) || self.sat_qual(q2, a),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpsat_xpath::parse_path;

    #[test]
    fn label_test_free_queries_are_always_satisfiable() {
        for q in ["a/b/c", "**/x[y and z]", "a[b]/c | d", "*/*[*/*]"] {
            assert!(decide(&parse_path(q).unwrap()).unwrap(), "query {q}");
        }
    }

    #[test]
    fn conflicting_label_tests_are_unsatisfiable() {
        assert!(!decide(&parse_path(".[lab() = a and lab() = b]").unwrap()).unwrap());
        assert!(!decide(&parse_path("x[lab() = y]").unwrap()).unwrap());
        assert!(decide(&parse_path("x[lab() = x]").unwrap()).unwrap());
        assert!(decide(&parse_path(".[lab() = a or lab() = b]").unwrap()).unwrap());
        assert!(!decide(&parse_path("a/.[lab() = a and lab() = b]/c").unwrap()).unwrap());
    }

    #[test]
    fn conjunction_of_compatible_branches_is_satisfiable() {
        assert!(decide(&parse_path(".[a[lab() = a] and b[lab() = b]]").unwrap()).unwrap());
        assert!(!decide(&parse_path("a[lab() = a and lab() = b]").unwrap()).unwrap());
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        assert!(decide(&parse_path("a[not(b)]").unwrap()).is_err());
        assert!(decide(&parse_path("a/..").unwrap()).is_err());
    }
}
