//! Theorem 7.1: `SAT(X(→, ←))` is in PTIME.
//!
//! Queries of this fragment have the shape `A1/η1/…/An/ηn`: a downward step to a child
//! with a given label, followed by a sequence of immediate-sibling hops, repeated.  The
//! paper decides satisfiability by walking over the Glushkov automata of the content
//! models: entering a level at some position whose symbol is `Ai`, a `→` hop follows a
//! forward transition between positions and a `←` hop a backward one, and a further
//! downward step descends into the content model of the position's symbol.
//!
//! The walk is implemented as a DFS over configurations `(parent type, position)` with
//! back-pointers, from which a witness document is reconstructed by laying out, per
//! level, one children word containing all visited positions.  The automata and their
//! useful-state masks come precomputed from [`DtdArtifacts`]; the walk itself only
//! touches interned [`Sym`]s and position indices.

use crate::sat::{SatError, Satisfiability};
use crate::witness::fill_missing_attributes;
use std::collections::BTreeMap;
use xpsat_dtd::{CompiledDtd, Dtd, DtdArtifacts, Sym, SymNfa};
use xpsat_xmltree::Document;
use xpsat_xpath::Path;

const ENGINE: &str = "sibling (Theorem 7.1)";

/// One primitive step of the fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Down(String),
    Right,
    Left,
}

/// Does the query lie in `X(→, ←)` (label steps and immediate-sibling hops only)?
pub fn supports(query: &Path) -> bool {
    flatten(query).is_some()
}

fn flatten(query: &Path) -> Option<Vec<Step>> {
    let mut steps = Vec::new();
    if collect(query, &mut steps) {
        Some(steps)
    } else {
        None
    }
}

fn collect(p: &Path, out: &mut Vec<Step>) -> bool {
    match p {
        Path::Seq(a, b) => collect(a, out) && collect(b, out),
        Path::Empty => true,
        Path::Label(l) => {
            out.push(Step::Down(l.clone()));
            true
        }
        Path::NextSibling => {
            out.push(Step::Right);
            true
        }
        Path::PrevSibling => {
            out.push(Step::Left);
            true
        }
        _ => false,
    }
}

/// A down-step with its label resolved against the symbol table (`None` when the label
/// is not a declared element type, which makes the step unsatisfiable).
#[derive(Debug, Clone, Copy)]
enum SymStep {
    Down(Option<Sym>),
    Right,
    Left,
}

/// Decide `(query, dtd)`; complete for the fragment reported by [`supports`].
///
/// Convenience wrapper that compiles the artifacts for one call; batch callers should
/// build [`DtdArtifacts`] once and use [`decide_with`].
pub fn decide(dtd: &Dtd, query: &Path) -> Result<Satisfiability, SatError> {
    decide_with(&DtdArtifacts::build(dtd), query)
}

/// Decide `(query, dtd)` against precompiled artifacts.
pub fn decide_with(artifacts: &DtdArtifacts, query: &Path) -> Result<Satisfiability, SatError> {
    let Some(steps) = flatten(query) else {
        return Err(SatError::UnsupportedFragment {
            engine: ENGINE,
            detail: format!("query {query} uses operators outside X(label, next-sib, prev-sib)"),
        });
    };
    let Some(compiled) = artifacts.compiled() else {
        return Ok(Satisfiability::Unsatisfiable);
    };
    // A query that starts with a sibling hop is unsatisfiable at the root (the root has
    // no siblings).
    if matches!(steps.first(), Some(Step::Right) | Some(Step::Left)) {
        return Ok(Satisfiability::Unsatisfiable);
    }
    let steps: Vec<SymStep> = steps
        .iter()
        .map(|s| match s {
            Step::Down(label) => SymStep::Down(compiled.elem_sym(label)),
            Step::Right => SymStep::Right,
            Step::Left => SymStep::Left,
        })
        .collect();

    // A level of the search: the parent element type and the walk over the positions of
    // its content model.  `laid` is the sequence of consecutive positions materialised
    // so far, `cursor` the index of the current node within it.
    #[derive(Debug, Clone)]
    struct Level {
        parent: Sym,
        laid: Vec<usize>,
        cursor: usize,
    }

    // Depth-first search over the steps; levels form a stack (outer levels are frozen
    // once we descend, because the fragment cannot go back up).
    fn search(
        steps: &[SymStep],
        compiled: &CompiledDtd,
        level: &mut Level,
    ) -> Option<Vec<(Sym, Vec<usize>, usize)>> {
        let Some(step) = steps.first() else {
            return Some(vec![(level.parent, level.laid.clone(), level.cursor)]);
        };
        let rest = &steps[1..];
        let nfa = compiled.automaton(level.parent);
        let useful = compiled.useful_states(level.parent);
        match step {
            SymStep::Down(label) => {
                let label = (*label)?;
                // Descend into the content model of the current position's symbol.
                let current_symbol = *nfa
                    .symbol_of(level.laid[level.cursor])
                    .expect("positions carry symbols");
                let child_nfa = compiled.automaton(current_symbol);
                let child_useful = compiled.useful_states(current_symbol);
                for position in 1..child_nfa.num_states() {
                    if !child_useful.contains(position)
                        || child_nfa.symbol_of(position) != Some(&label)
                    {
                        continue;
                    }
                    let mut child_level = Level {
                        parent: current_symbol,
                        laid: vec![position],
                        cursor: 0,
                    };
                    if let Some(mut tail) = search(rest, compiled, &mut child_level) {
                        let mut result = vec![(level.parent, level.laid.clone(), level.cursor)];
                        result.append(&mut tail);
                        return Some(result);
                    }
                }
                None
            }
            SymStep::Right => {
                if level.cursor + 1 < level.laid.len() {
                    level.cursor += 1;
                    let result = search(rest, compiled, level);
                    level.cursor -= 1;
                    return result;
                }
                // Extend the laid word to the right with any useful successor position.
                let last = *level.laid.last().expect("laid is nonempty");
                let successors: Vec<usize> = nfa
                    .transitions_from(last)
                    .flat_map(|(_, succs)| succs.iter().copied())
                    .filter(|s| useful.contains(*s))
                    .collect();
                for succ in successors {
                    level.laid.push(succ);
                    level.cursor += 1;
                    if let Some(result) = search(rest, compiled, level) {
                        return Some(result);
                    }
                    level.cursor -= 1;
                    level.laid.pop();
                }
                None
            }
            SymStep::Left => {
                if level.cursor > 0 {
                    level.cursor -= 1;
                    let result = search(rest, compiled, level);
                    level.cursor += 1;
                    return result;
                }
                // Prepend a useful predecessor position.
                let first = level.laid[0];
                let predecessors: Vec<usize> = (1..nfa.num_states())
                    .filter(|&q| {
                        useful.contains(q)
                            && nfa
                                .step(q, nfa.symbol_of(first).expect("position"))
                                .any(|t| t == first)
                    })
                    .collect();
                for pred in predecessors {
                    level.laid.insert(0, pred);
                    if let Some(result) = search(rest, compiled, level) {
                        return Some(result);
                    }
                    level.laid.remove(0);
                }
                None
            }
        }
    }

    // The first step must be a Down into the root's content model.
    let Some(SymStep::Down(first_label)) = steps.first().copied() else {
        // Empty query: trivially satisfiable by any conforming document.
        let doc = compiled
            .generator()
            .minimal_tree(compiled.name(compiled.root()))
            .map(|mut d| {
                fill_missing_attributes(&mut d, compiled.dtd());
                d
            })
            .ok_or(SatError::NonTerminatingRoot)?;
        return Ok(Satisfiability::Satisfiable(doc));
    };
    let Some(first_label) = first_label else {
        // The first label is not a declared element type.
        return Ok(Satisfiability::Unsatisfiable);
    };

    let root = compiled.root();
    let root_nfa = compiled.automaton(root);
    let root_useful = compiled.useful_states(root);
    for position in 1..root_nfa.num_states() {
        if !root_useful.contains(position) || root_nfa.symbol_of(position) != Some(&first_label) {
            continue;
        }
        let mut level = Level {
            parent: root,
            laid: vec![position],
            cursor: 0,
        };
        if let Some(levels) = search(&steps[1..], compiled, &mut level) {
            if let Some(doc) = build_witness(compiled, &levels) {
                return Ok(Satisfiability::Satisfiable(doc));
            }
        }
    }
    Ok(Satisfiability::Unsatisfiable)
}

/// Materialise the per-level laid positions into a conforming document.
fn build_witness(compiled: &CompiledDtd, levels: &[(Sym, Vec<usize>, usize)]) -> Option<Document> {
    let generator = compiled.generator();
    let mut doc = Document::new(compiled.name(compiled.root()));
    let mut current = doc.root();
    for (parent_type, laid, cursor) in levels {
        debug_assert_eq!(doc.label(current), compiled.name(*parent_type));
        let nfa = compiled.automaton(*parent_type);
        // Full children word: shortest prefix from the start state to laid[0] (the
        // prefix *ends* at laid[0]), the remaining laid positions, and a shortest
        // suffix to acceptance.
        let prefix = shortest_state_path(nfa, nfa.start(), laid[0])?;
        let cursor_index = prefix.len() - 1 + cursor;
        let mut word_positions: Vec<usize> = prefix;
        word_positions.extend(laid.iter().skip(1).copied());
        let suffix = shortest_suffix_to_acceptance(nfa, *word_positions.last()?)?;
        word_positions.extend(suffix);

        let mut next_current = None;
        for (i, position) in word_positions.iter().enumerate() {
            let label = compiled.name(*nfa.symbol_of(*position)?);
            let child = doc.add_child(current, label);
            if i == cursor_index {
                next_current = Some(child);
            }
        }
        // Expand all children except the one we descend into.
        let children: Vec<_> = doc.children(current).to_vec();
        let descend_into = next_current?;
        for child in children {
            if child != descend_into {
                generator.expand_minimal(&mut doc, child);
            }
        }
        current = descend_into;
    }
    generator.expand_minimal(&mut doc, current);
    fill_missing_attributes(&mut doc, compiled.dtd());
    Some(doc)
}

/// Shortest sequence of positions from `from` (exclusive) to `to` (inclusive) following
/// forward transitions; when `from == to`, returns just `[to]` if `to` is an entry
/// position... — for our use `from` is the initial state, so the result is the prefix of
/// a word ending at `to`.
fn shortest_state_path(nfa: &SymNfa, from: usize, to: usize) -> Option<Vec<usize>> {
    use std::collections::VecDeque;
    if from == to {
        return Some(vec![]);
    }
    let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(q) = queue.pop_front() {
        for (_, succs) in nfa.transitions_from(q) {
            for &next in succs {
                if next != from && !pred.contains_key(&next) {
                    pred.insert(next, q);
                    queue.push_back(next);
                }
            }
        }
        if pred.contains_key(&to) {
            break;
        }
    }
    if !pred.contains_key(&to) {
        return None;
    }
    let mut path = vec![to];
    let mut cur = to;
    while let Some(&prev) = pred.get(&cur) {
        if prev == from {
            break;
        }
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

/// Shortest sequence of positions continuing from `state` to an accepting state.
fn shortest_suffix_to_acceptance(nfa: &SymNfa, state: usize) -> Option<Vec<usize>> {
    use std::collections::VecDeque;
    if nfa.is_accepting(state) {
        return Some(vec![]);
    }
    let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(state);
    let mut goal = None;
    'outer: while let Some(q) = queue.pop_front() {
        for (_, succs) in nfa.transitions_from(q) {
            for &next in succs {
                if next != state && !pred.contains_key(&next) {
                    pred.insert(next, q);
                    if nfa.is_accepting(next) {
                        goal = Some(next);
                        break 'outer;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    let mut cur = goal?;
    let mut path = vec![cur];
    while let Some(&prev) = pred.get(&cur) {
        if prev == state {
            break;
        }
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::verify_witness;
    use xpsat_dtd::parse_dtd;
    use xpsat_xpath::parse_path;

    fn check(dtd_text: &str, query_text: &str, expected: bool) {
        let dtd = parse_dtd(dtd_text).unwrap();
        let query = parse_path(query_text).unwrap();
        match decide(&dtd, &query).unwrap() {
            Satisfiability::Satisfiable(doc) => {
                assert!(
                    expected,
                    "{query_text} should be unsatisfiable under `{dtd_text}`"
                );
                verify_witness(&doc, &dtd, &query).unwrap();
            }
            Satisfiability::Unsatisfiable => assert!(
                !expected,
                "{query_text} should be satisfiable under `{dtd_text}`"
            ),
            Satisfiability::Unknown => panic!("sibling engine must be definite"),
        }
    }

    #[test]
    fn sibling_order_is_respected() {
        let dtd = "r -> a, b, c; a -> #; b -> #; c -> #;";
        check(dtd, "a/>/>", true);
        check(dtd, "b/>", true);
        check(dtd, "c/>", false);
        check(dtd, "a/<", false);
        check(dtd, "c/</<", true);
        check(dtd, "b/</>", true);
    }

    #[test]
    fn descent_after_sibling_hops() {
        let dtd = "r -> a, b; a -> #; b -> x?; x -> #;";
        check(dtd, "a/>/x", true);
        check(dtd, "b/>/x", false);
        check(dtd, "a/x", false);
    }

    #[test]
    fn starred_content_models() {
        let dtd = "r -> (a | b)*; a -> #; b -> #;";
        check(dtd, "a/>", true);
        check(dtd, "a/>/>/>", true);
        check(dtd, "b/</>", true);
    }

    #[test]
    fn undeclared_labels_are_unsatisfiable() {
        let dtd = "r -> a; a -> #;";
        check(dtd, "ghost", false);
        check(dtd, "a/ghost", false);
    }

    #[test]
    fn queries_starting_with_sibling_hops_are_unsatisfiable() {
        let dtd = parse_dtd("r -> a; a -> #;").unwrap();
        let query = parse_path(">/a").unwrap();
        assert!(matches!(
            decide(&dtd, &query).unwrap(),
            Satisfiability::Unsatisfiable
        ));
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        let dtd = parse_dtd("r -> a; a -> #;").unwrap();
        assert!(decide(&dtd, &parse_path("a[b]").unwrap()).is_err());
        assert!(decide(&dtd, &parse_path("a/>>").unwrap()).is_err());
    }
}
